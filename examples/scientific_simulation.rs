//! Scientific-simulation scenario (the paper's HPC domain): compress a
//! 3-D field with the Lorenzo-predictor codecs and see why dimensionality
//! matters — the §6.1.5 experiment in miniature.
//!
//! ```sh
//! cargo run --release --example scientific_simulation
//! ```

use fcbench::core::pool::{PoolConfig, WorkerPool};
use fcbench::core::{Compressor, Domain, FloatData};
use fcbench_bench::codecs::paper_registry;

fn main() {
    // A smooth 64x64x64 field: two superposed waves plus a mild gradient,
    // the structure Lorenzo predictors are built for.
    let n = 64usize;
    let mut seed = 0xD1B54A32D192ED03u64;
    let mut values = Vec::with_capacity(n * n * n);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let jitter = ((seed >> 60) as f32 - 7.5) / 64.0; // grid noise
                let v = 100.0
                    + 10.0 * ((x as f32) * 0.1).sin()
                    + 8.0 * ((y as f32) * 0.07).cos()
                    + 0.5 * z as f32
                    + jitter;
                // Simulation outputs carry limited-precision physics:
                // quantize to a grid to mimic that.
                values.push((v * 64.0).round() / 64.0);
            }
        }
    }
    let field = FloatData::from_f32(&values, vec![n, n, n], Domain::Hpc).expect("consistent dims");
    println!("3-D field: {n}^3 f32 = {} bytes\n", field.bytes().len());

    let registry = paper_registry();
    let codecs: Vec<_> = ["fpzip", "ndzip-cpu", "ndzip-gpu"]
        .iter()
        .map(|name| registry.get(name).expect("registered codec"))
        .collect();

    // Every compression below runs as a job on one persistent host-sized
    // engine; codec scratch stays warm across all of them.
    let pool = WorkerPool::new(PoolConfig::for_host());
    let mut c3 = Vec::new();
    let mut c1 = Vec::new();
    println!(
        "{:<12} {:>10} {:>10}  (3-D vs flattened-1-D ratio)",
        "codec", "3-D", "1-D"
    );
    for codec in &codecs {
        pool.run_compress(codec, &field, &mut c3)
            .expect("compress 3-D");
        let flat = field.flattened_1d();
        pool.run_compress(codec, &flat, &mut c1)
            .expect("compress 1-D");
        // Verify both round-trip.
        assert_eq!(
            codec
                .decompress(&c3, field.desc())
                .expect("decompress")
                .bytes(),
            field.bytes()
        );
        assert_eq!(
            codec
                .decompress(&c1, flat.desc())
                .expect("decompress")
                .bytes(),
            flat.bytes()
        );
        println!(
            "{:<12} {:>10.3} {:>10.3}",
            codec.info().name,
            field.bytes().len() as f64 / c3.len() as f64,
            field.bytes().len() as f64 / c1.len() as f64,
        );
    }
    println!(
        "\nThe paper's Observation 6: flattening degrades the Lorenzo predictor\n\
         to a delta predictor, but the change is not statistically significant —\n\
         column stores can compress scientific data as plain 1-D columns."
    );

    // GPU end-to-end cost: kernel + modelled PCIe transfers (Table 6's point).
    let gpu = registry.get("ndzip-gpu").expect("registered codec");
    let t0 = std::time::Instant::now();
    let payload = gpu.compress(&field).expect("compress");
    let kernel = t0.elapsed().as_secs_f64();
    let aux = gpu.last_aux_time();
    println!(
        "\nndzip-gpu: kernel {:.2} ms + modelled transfers {:.2} ms (ratio {:.3})",
        kernel * 1e3,
        aux.total() * 1e3,
        field.bytes().len() as f64 / payload.len() as f64
    );
}

//! Compression as a service: start an `FCS1` server on loopback with one
//! host-sized worker-pool engine, then drive it like a fleet of database
//! nodes would — concurrent clients compressing sensor pages, reading them
//! back byte-exact, querying the codec catalogue, and finally pulling the
//! server's live STATS and full STATS_V2 telemetry (latency quantiles per
//! layer, plus the greppable text exposition) before a graceful shutdown.
//!
//! ```sh
//! cargo run --release --example compression_service
//! ```

use fcbench::core::pool::{PoolConfig, WorkerPool};
use fcbench::core::{Domain, FloatData};
use fcbench::serve::{Client, ServeConfig, Server};
use fcbench_bench::codecs::paper_registry;
use std::sync::Arc;

fn sensor_page(n: usize, phase: f64) -> FloatData {
    let vals: Vec<f64> = (0..n)
        .map(|i| ((21.5 + 4.0 * (i as f64 * 0.002 + phase).sin()) * 100.0).round() / 100.0)
        .collect();
    FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).expect("consistent dims")
}

fn main() {
    // One warm engine for the whole process, sized from the machine.
    let engine = PoolConfig::for_host();
    let pool = Arc::new(WorkerPool::new(engine));
    let registry = Arc::new(paper_registry());
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        pool,
        ServeConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let running = server.spawn();
    println!(
        "fcbench-serve listening on {addr} ({} workers, {} job slots)\n",
        engine.threads, engine.queue_depth
    );

    // The catalogue, straight off the wire.
    let mut admin = Client::connect(addr).expect("connect");
    let listed = admin.list_codecs().expect("LIST_CODECS");
    println!("{} codecs served; pool-dispatched: {}", listed.len(), {
        let pooled: Vec<&str> = listed
            .iter()
            .filter(|l| l.thread_scalable)
            .map(|l| l.name.as_str())
            .collect();
        pooled.join(", ")
    });

    // A burst of concurrent clients, each a "storage node" flushing sensor
    // pages through its favourite codec and reading one back.
    let codecs = ["gorilla", "chimp128", "bitshuffle-zstd", "spdp"];
    let workers: Vec<_> = (0..8)
        .map(|i| {
            let name = codecs[i % codecs.len()];
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let page = sensor_page(50_000 + 1_000 * i, i as f64);
                let compressed = client
                    .compress(name, &page, 8 * 1024)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                let restored = client.decompress(&compressed).expect("decompress");
                assert_eq!(restored.bytes(), page.bytes(), "byte-exact round trip");
                (name, page.bytes().len(), compressed.len())
            })
        })
        .collect();
    println!(
        "\n{:<16} {:>12} {:>12} {:>8}",
        "codec", "raw", "wire", "ratio"
    );
    for w in workers {
        let (name, raw, wire) = w.join().expect("client thread");
        println!(
            "{name:<16} {raw:>12} {wire:>12} {:>8.3}",
            raw as f64 / wire as f64
        );
    }

    // A bad request fails typed — and the service shrugs it off.
    let err = admin
        .compress("lz4-but-misspelled", &sensor_page(100, 0.0), 64)
        .expect_err("unknown codec must fail");
    println!("\nunknown codec reply: {err}");

    let stats = admin.stats().expect("STATS");
    println!(
        "\nSTATS: {} ok / {} failed requests over {} connections \
         ({} bytes in, {} bytes out)",
        stats.requests_ok,
        stats.requests_failed,
        stats.connections_accepted,
        stats.bytes_in,
        stats.bytes_out
    );
    for (name, count) in stats.per_codec.iter().filter(|(_, c)| *c > 0) {
        println!("  {name:<16} {count} requests");
    }
    assert!(stats.requests_ok >= 17); // 8x(compress+decompress) + list
    assert!(stats.requests_failed >= 1);

    // STATS_V2: the whole telemetry registry over the wire — serve verbs,
    // frame-stream occupancy, and pool latency in one mergeable snapshot.
    // The client takes its own quantiles from the sparse bucket rows.
    let v2 = admin.stats_v2().expect("STATS_V2");
    println!("\nSTATS_V2 latency (client-side quantiles, µs):");
    println!(
        "{:<26} {:>8} {:>10} {:>10}",
        "histogram", "count", "p50", "p99"
    );
    for name in [
        "serve.request.compress",
        "serve.request.decompress",
        "serve.phase.engine",
        "pool.queue_wait",
        "pool.exec",
    ] {
        let h = v2.histogram(name).expect("layered histogram");
        assert!(h.count() > 0, "{name} must have recorded");
        println!(
            "{name:<26} {:>8} {:>10.1} {:>10.1}",
            h.count(),
            h.p50() as f64 / 1e3,
            h.p99() as f64 / 1e3
        );
    }

    // The same registry, server-side, as greppable text exposition.
    println!("\n--- text exposition ---");
    print!("{}", running.handle().telemetry().render_text());

    drop(admin);
    running.shutdown().expect("graceful shutdown");
    println!("\nserver drained and shut down cleanly");
}

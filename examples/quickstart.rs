//! Quickstart: look codecs up in the registry, compress a floating-point
//! series losslessly through the zero-copy `_into` API, inspect the ratio,
//! decompress, verify bit-exactness — then run the same data through the
//! block-parallel pipeline (backed by the persistent worker-pool engine)
//! and its chunked `FCB2` frame, and finally stream it chunk-by-chunk
//! through the `FCB3` `FrameWriter`/`FrameReader` pair.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fcbench::core::{frame, Domain, FloatData, Pipeline};
use fcbench_bench::codecs::paper_registry;

fn main() {
    // A sensor-like series: slow oscillation plus a small random walk,
    // rounded to two decimals (typical IoT telemetry).
    let mut walk = 0.0f64;
    let mut seed = 0x2545F4914F6CDD1Du64;
    let values: Vec<f64> = (0..100_000)
        .map(|i| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            walk += (seed >> 60) as f64 * 0.01 - 0.075;
            let v = 20.0 + 5.0 * (i as f64 * 0.001).sin() + walk;
            (v * 100.0).round() / 100.0
        })
        .collect();
    let data = FloatData::from_f64(&values, vec![values.len()], Domain::TimeSeries)
        .expect("consistent dims");
    println!(
        "input: {} values, {} bytes",
        values.len(),
        data.bytes().len()
    );

    // The registry is the single catalogue of methods: look codecs up by
    // their Table 1 names and reuse one payload/output buffer pair across
    // all of them (the steady-state loop allocates nothing for gorilla
    // and chimp).
    let registry = paper_registry();
    let mut payload = Vec::new();
    let mut restored = FloatData::scratch();
    for name in ["gorilla", "chimp128", "bitshuffle-zstd"] {
        let codec = registry.get(name).expect("registered codec");
        let t0 = std::time::Instant::now();
        let n = codec.compress_into(&data, &mut payload).expect("compress");
        let dt = t0.elapsed();
        codec
            .decompress_into(&payload[..n], data.desc(), &mut restored)
            .expect("decompress");
        assert_eq!(restored.bytes(), data.bytes(), "lossless round trip");
        println!(
            "{:<16} ratio {:.3}  ({} -> {} bytes, {:.1} ms, bit-exact)",
            name,
            data.bytes().len() as f64 / n as f64,
            data.bytes().len(),
            n,
            dt.as_secs_f64() * 1e3
        );
    }

    // Self-describing frames carry codec + shape, so a reader needs no
    // out-of-band metadata.
    let gorilla = registry.get("gorilla").expect("registered codec");
    let framed = frame::compress_framed(&gorilla, &data).expect("frame");
    let back = frame::decompress_framed(&gorilla, &framed).expect("unframe");
    assert_eq!(back.bytes(), data.bytes());
    println!(
        "\nframed stream: {} bytes (self-describing FCB1 container)",
        framed.len()
    );

    // The pipeline splits the stream into fixed-size blocks and submits
    // them to a persistent worker pool (spawned once, on the first call;
    // later calls reuse the warm workers), emitting the chunked FCB2 frame.
    let threads = fcbench::core::PoolConfig::for_host().threads.min(8);
    let pipeline = Pipeline::new(&registry, "chimp128")
        .expect("registered codec")
        .block_elems(16 * 1024)
        .threads(threads);
    let mut chunked = Vec::new();
    let mut cold = std::time::Duration::ZERO;
    let mut warm = std::time::Duration::ZERO;
    for round in 0..2 {
        let t0 = std::time::Instant::now();
        pipeline
            .compress_into(&data, &mut chunked)
            .expect("pipeline compress");
        let dt = t0.elapsed();
        if round == 0 {
            cold = dt; // includes the one-time pool spawn + buffer growth
        } else {
            warm = dt; // steady state: warm workers, reused slots
        }
    }
    let back = pipeline.decompress(&chunked).expect("pipeline decompress");
    assert_eq!(back.bytes(), data.bytes());
    println!(
        "pipeline (chimp128, 16Ki-element blocks, {threads} pool workers): \
         {} bytes FCB2 frame; cold call {:.1} ms, warm call {:.1} ms",
        chunked.len(),
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3
    );

    // Streaming: the same engine drives FCB3 frame I/O chunk-by-chunk, so
    // neither the raw data nor the compressed frame is ever fully resident
    // (here the "file" is just a Vec for demonstration).
    let mut writer = pipeline
        .frame_writer(data.desc(), Vec::new())
        .expect("frame writer");
    for chunk in data.bytes().chunks(64 * 1024) {
        writer.write(chunk).expect("stream write");
    }
    let stored = writer.finish().expect("finish stream");
    let mut reader = pipeline.frame_reader(&stored[..]).expect("frame reader");
    let mut restored = Vec::new();
    while let Some(block) = reader.next_block().expect("stream read") {
        restored.extend_from_slice(block);
    }
    assert_eq!(restored, data.bytes());
    println!(
        "streamed FCB3: {} bytes on the wire, decoded block-by-block, bit-exact",
        stored.len()
    );
}

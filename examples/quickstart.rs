//! Quickstart: compress a floating-point series losslessly, inspect the
//! ratio, decompress, and verify bit-exactness.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fcbench::core::{frame, Compressor, Domain, FloatData};
use fcbench::cpu::{Bitshuffle, Chimp, Gorilla};

fn main() {
    // A sensor-like series: slow oscillation plus a small random walk,
    // rounded to two decimals (typical IoT telemetry).
    let mut walk = 0.0f64;
    let mut seed = 0x2545F4914F6CDD1Du64;
    let values: Vec<f64> = (0..100_000)
        .map(|i| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            walk += (seed >> 60) as f64 * 0.01 - 0.075;
            let v = 20.0 + 5.0 * (i as f64 * 0.001).sin() + walk;
            (v * 100.0).round() / 100.0
        })
        .collect();
    let data = FloatData::from_f64(&values, vec![values.len()], Domain::TimeSeries)
        .expect("consistent dims");
    println!(
        "input: {} values, {} bytes",
        values.len(),
        data.bytes().len()
    );

    for codec in [
        Box::new(Gorilla::new()) as Box<dyn Compressor>,
        Box::new(Chimp::new()),
        Box::new(Bitshuffle::zzip()),
    ] {
        let t0 = std::time::Instant::now();
        let payload = codec.compress(&data).expect("compress");
        let dt = t0.elapsed();
        let restored = codec.decompress(&payload, data.desc()).expect("decompress");
        assert_eq!(restored.bytes(), data.bytes(), "lossless round trip");
        println!(
            "{:<16} ratio {:.3}  ({} -> {} bytes, {:.1} ms, bit-exact)",
            codec.info().name,
            data.bytes().len() as f64 / payload.len() as f64,
            data.bytes().len(),
            payload.len(),
            dt.as_secs_f64() * 1e3
        );
    }

    // Self-describing frames carry codec + shape, so a reader needs no
    // out-of-band metadata.
    let codec = Gorilla::new();
    let framed = frame::compress_framed(&codec, &data).expect("frame");
    let back = frame::decompress_framed(&codec, &framed).expect("unframe");
    assert_eq!(back.bytes(), data.bytes());
    println!(
        "\nframed stream: {} bytes (self-describing container)",
        framed.len()
    );
}

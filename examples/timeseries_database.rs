//! Time-series database scenario (the paper's TS + DB domains): Gorilla
//! vs Chimp on sensor values, and BUFF's headline feature — predicates
//! evaluated **directly on the compressed form**, no decompression.
//!
//! ```sh
//! cargo run --release --example timeseries_database
//! ```

use fcbench::core::{Compressor, Domain, FloatData};
use fcbench::cpu::BuffView;
use fcbench_bench::codecs::paper_registry;

fn main() {
    // Server-monitoring telemetry: CPU temperatures with one decimal,
    // mostly stable with bursts.
    let mut seed = 88172645463325252u64;
    let mut rnd = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 40) as f64 / (1u64 << 24) as f64
    };
    let mut temp = 45.0f64;
    let values: Vec<f64> = (0..200_000)
        .map(|i| {
            let burst = if i % 5000 < 200 { 12.0 } else { 0.0 };
            temp += (rnd() - 0.5) * 0.4;
            temp = temp.clamp(35.0, 70.0);
            ((temp + burst) * 10.0).round() / 10.0
        })
        .collect();
    let data = FloatData::from_f64(&values, vec![values.len()], Domain::TimeSeries)
        .expect("consistent dims");

    println!(
        "telemetry: {} readings, {} bytes\n",
        values.len(),
        data.bytes().len()
    );
    let registry = paper_registry();
    for name in ["gorilla", "chimp128", "buff"] {
        let codec = registry.get(name).expect("registered codec");
        let payload = codec.compress(&data).expect("compress");
        assert_eq!(
            codec
                .decompress(&payload, data.desc())
                .expect("decompress")
                .bytes(),
            data.bytes()
        );
        println!(
            "{:<10} ratio {:.3}",
            codec.info().name,
            data.bytes().len() as f64 / payload.len() as f64
        );
    }

    // BUFF: query without decoding. Find overheating readings (rare —
    // selective predicates are where byte-plane skipping shines).
    let buff = registry.get("buff").expect("registered codec");
    let payload = buff.compress(&data).expect("compress");
    let view = BuffView::parse(&payload).expect("parse view");

    let threshold = 78.0; // only burst readings reach this
    let t0 = std::time::Instant::now();
    let below: Vec<usize> = view.query_lt(threshold);
    let hot = view.len() - below.len();
    let q_compressed = t0.elapsed();

    let t1 = std::time::Instant::now();
    let hot_scan = values.iter().filter(|&&v| v >= threshold).count();
    let q_scan = t1.elapsed();

    assert_eq!(
        hot, hot_scan,
        "compressed-form query must agree with a scan"
    );
    println!(
        "\nBUFF query  (>= {threshold} C): {hot} readings\n\
         on compressed planes: {:.2} ms   decoded scan: {:.2} ms\n\
         (the paper's §3.3: byte-column queries skip records as soon as one\n\
         sub-column disqualifies them; the advantage grows with selectivity)",
        q_compressed.as_secs_f64() * 1e3,
        q_scan.as_secs_f64() * 1e3
    );

    // Equality probe on an exact reading.
    let probe = values[12345];
    let matches = view.query_eq(probe);
    assert!(matches.contains(&12345));
    println!("equality probe {probe}: {} matching rows", matches.len());
}

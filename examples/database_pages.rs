//! Database-integration scenario (§5.1.2 / §6.2): store a TPC-style table
//! in the chunked columnar container under different page sizes, then
//! measure the paper's three primitives — file I/O, decode, scan query.
//! A second part streams the same table through the incremental
//! [`ContainerWriter`], commits mid-stream, tears the file, and shows the
//! reader recovering to the last commit point.
//!
//! ```sh
//! cargo run --release --example database_pages
//! ```

use fcbench::core::pool::{PoolConfig, WorkerPool};
use fcbench::core::{Compressor, Precision};
use fcbench::dbsim::{
    measure_three_primitives_pooled, read_container, ChunkExec, ColumnData, ContainerWriter,
    RecoveryOutcome,
};
use fcbench_bench::codecs::paper_registry;
use std::io::Write as _;

fn main() {
    // An orders-like table: price, quantity, discount columns.
    let rows = 200_000usize;
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut rnd = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 33) as f64 / (1u64 << 31) as f64
    };
    let price: Vec<f64> = (0..rows)
        .map(|_| (900.0 + rnd() * rnd() * 90_000.0 * 0.01).round() / 1.0)
        .collect();
    let qty: Vec<f64> = (0..rows).map(|_| (1.0 + rnd() * 49.0).floor()).collect();
    let disc: Vec<f64> = (0..rows).map(|_| (rnd() * 8.0).floor() / 100.0).collect();
    let columns = vec![
        ColumnData::from_f64("price", &price),
        ColumnData::from_f64("quantity", &qty),
        ColumnData::from_f64("discount", &disc),
    ];
    let raw_bytes: usize = columns.iter().map(|c| c.bytes.len()).sum();
    println!("table: {rows} rows x 3 columns = {raw_bytes} bytes\n");

    let registry = paper_registry();
    let codecs: Vec<_> = ["gorilla", "chimp128", "bitshuffle-zstd"]
        .iter()
        .map(|name| registry.get(name).expect("registered codec"))
        .collect();
    // One persistent engine serves every codec and page size below: pages
    // are compressed and decoded by warm pool workers, the way a database
    // integration would drive the codecs. `for_host` sizes it from the
    // machine (one worker per hardware thread, serving-depth queue).
    let engine = PoolConfig::for_host();
    let pool = WorkerPool::new(engine);
    println!(
        "execution engine: {} persistent workers, {} job slots\n",
        engine.threads, engine.queue_depth
    );
    // The paper's Table 10 page sizes, in elements (8-byte doubles).
    let pages = [(512usize, "4K"), (8192, "64K"), (1 << 20, "8M")];

    println!(
        "{:<16} {:>6} {:>8} {:>9} {:>9} {:>9}",
        "codec", "page", "ratio", "io ms", "decode ms", "query ms"
    );
    let tmp = std::env::temp_dir();
    for codec in &codecs {
        for (page_elems, label) in pages {
            let path = tmp.join(format!(
                "fcbench-example-{}-{}-{label}",
                std::process::id(),
                codec.info().name
            ));
            let r = measure_three_primitives_pooled(&path, &pool, codec, &columns, page_elems)
                .expect("three primitives");
            println!(
                "{:<16} {:>6} {:>8.3} {:>9.2} {:>9.2} {:>9.2}",
                codec.info().name,
                label,
                raw_bytes as f64 / r.compressed_bytes as f64,
                r.io_seconds * 1e3,
                r.decode_seconds * 1e3,
                r.query_seconds * 1e3
            );
            std::fs::remove_file(&path).ok();
        }
    }
    println!(
        "\npaper Observation 8: compressors prefer larger pages — ratios and\n\
         throughput improve from 4K to 64K pages. Observation 9: total read +\n\
         decode time, not ratio alone, decides the right codec for a database."
    );

    // ---- part 2: streaming writes, commit points, crash recovery ----
    //
    // An ingest process appends the table column by column in small
    // pieces; pages are compressed on the shared engine as they fill, so
    // memory stays bounded by the pages in flight — the whole container
    // is never materialized. A commit after each column marks a durable
    // point the reader can fall back to if the file is torn later.
    println!("\nstreaming ingest + crash recovery (gorilla, 8192-element pages):");
    let codec = registry.get("gorilla").expect("registered codec");
    let path = tmp.join(format!("fcbench-example-{}-recovery", std::process::id()));
    let file = std::fs::File::create(&path).expect("create container");
    let mut writer = ContainerWriter::new(
        std::io::BufWriter::new(file),
        ChunkExec::Pooled(&pool, &codec),
    )
    .expect("open container");
    for col in &columns {
        writer
            .begin_column(&col.name, Precision::Double, 8192)
            .expect("column");
        // Feed in 64 KiB slices, the way rows arrive from an ingest feed.
        for piece in col.bytes.chunks(64 * 1024) {
            writer.write(piece).expect("append");
        }
        writer.commit().expect("commit");
    }
    let sink = writer.finish().expect("finish");
    sink.into_inner().expect("flush").sync_all().expect("sync");

    let clean = read_container(&path).expect("clean read");
    let full_len = std::fs::metadata(&path).expect("len").len();
    println!(
        "  wrote {} columns / {} committed bytes, read back: {:?}",
        clean.table.columns.len(),
        full_len,
        clean.outcome
    );
    assert!(clean.is_clean(), "fresh container must read back clean");

    // Tear the tail off, as if the process died mid-append: the reader
    // scans back to the last valid commit and reports what it dropped.
    let torn_len = full_len * 3 / 5;
    let bytes = std::fs::read(&path).expect("read bytes");
    let mut torn = std::fs::File::create(&path).expect("rewrite");
    torn.write_all(&bytes[..torn_len as usize]).expect("tear");
    drop(torn);

    let recovered = read_container(&path).expect("recovering read");
    match recovered.outcome {
        RecoveryOutcome::Recovered { dropped_records } => {
            let rows_back: u64 = recovered.table.columns.iter().map(|c| c.rows as u64).sum();
            println!(
                "  tore file to {torn_len}/{full_len} bytes: recovered \
                 {} column(s) / {rows_back} values, dropped {dropped_records} \
                 uncommitted record(s)",
                recovered.table.columns.len(),
            );
        }
        other => println!("  tore file to {torn_len}/{full_len} bytes: {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

//! Property tests for the statistical machinery: rank invariants,
//! Friedman consistency, and Mann-Whitney symmetry on arbitrary samples.

use fcbench_stats::{average_ranks, cd_diagram, friedman_test, mann_whitney_u, rank_row};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (-1e6f64..1e6).prop_map(|v| (v * 100.0).round() / 100.0),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rank_sums_are_invariant(vals in finite_vec(1..50)) {
        let n = vals.len() as f64;
        for dir in [true, false] {
            let ranks = rank_row(&vals, dir);
            let sum: f64 = ranks.iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
            // Every rank is within [1, n].
            prop_assert!(ranks.iter().all(|&r| r >= 1.0 - 1e-9 && r <= n + 1e-9));
        }
    }

    #[test]
    fn rank_directions_mirror(vals in finite_vec(1..40)) {
        let hi = rank_row(&vals, true);
        let lo = rank_row(&vals, false);
        let n = vals.len() as f64;
        // For every element: rank_hi + rank_lo == n + 1 (ties included).
        for (a, b) in hi.iter().zip(lo.iter()) {
            prop_assert!((a + b - (n + 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn average_ranks_bounded(
        k in 2usize..6,
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let mut x = seed | 1;
        let rows: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        ((x >> 40) % 1000) as f64
                    })
                    .collect()
            })
            .collect();
        let avg = average_ranks(&rows, true);
        let sum: f64 = avg.iter().sum();
        let expect = k as f64 * (k as f64 + 1.0) / 2.0;
        prop_assert!((sum - expect).abs() < 1e-6, "rank sums must be conserved");
        prop_assert!(avg.iter().all(|&r| r >= 1.0 - 1e-9 && r <= k as f64 + 1e-9));
    }

    #[test]
    fn friedman_p_values_are_probabilities(
        k in 2usize..6,
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let mut x = seed | 1;
        let rows: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        ((x >> 40) % 97) as f64
                    })
                    .collect()
            })
            .collect();
        let r = friedman_test(&rows, true);
        prop_assert!(r.chi2 >= -1e-9);
        prop_assert!((0.0..=1.0).contains(&r.p_chi2));
        prop_assert!((0.0..=1.0).contains(&r.p_f));
    }

    #[test]
    fn mann_whitney_is_symmetric_and_bounded(
        a in finite_vec(1..30),
        b in finite_vec(1..30),
    ) {
        let r1 = mann_whitney_u(&a, &b);
        let r2 = mann_whitney_u(&b, &a);
        prop_assert!((r1.u - r2.u).abs() < 1e-9);
        prop_assert!((r1.p - r2.p).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&r1.p));
        // U is bounded by n1*n2/2 (we report the smaller of U1/U2).
        prop_assert!(r1.u <= a.len() as f64 * b.len() as f64 / 2.0 + 1e-9);
    }

    #[test]
    fn cd_diagram_cliques_are_well_formed(
        ranks in prop::collection::vec(1.0f64..14.0, 2..14),
        n_datasets in 10usize..40,
    ) {
        let names: Vec<String> = (0..ranks.len()).map(|i| format!("m{i}")).collect();
        let d = cd_diagram(&names, &ranks, n_datasets, 0.05);
        // Entries sorted ascending by rank.
        for w in d.entries.windows(2) {
            prop_assert!(w[0].avg_rank <= w[1].avg_rank);
        }
        // Cliques reference valid ranges and respect the CD width.
        for &(lo, hi) in &d.cliques {
            prop_assert!(lo < hi && hi < d.entries.len());
            prop_assert!(d.entries[hi].avg_rank - d.entries[lo].avg_rank < d.cd + 1e-9);
        }
    }
}

//! Rank utilities for the Friedman / Nemenyi machinery (§2.4, §5.4).
//!
//! Following Demšar's procedure, algorithms are ranked **per dataset**
//! (rank 1 = best) with tied values receiving the average of the ranks
//! they span, then ranks are averaged over datasets.

/// Ranks of one observation vector, ties averaged. `higher_is_better`
/// controls the sort direction (compression ratios: higher is better).
pub fn rank_row(values: &[f64], higher_is_better: bool) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let cmp = values[a]
            .partial_cmp(&values[b])
            .expect("NaN in rank input");
        if higher_is_better {
            cmp.reverse()
        } else {
            cmp
        }
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie run [i, j).
        let mut j = i + 1;
        while j < n && values[order[j]] == values[order[i]] {
            j += 1;
        }
        // Average rank of positions i..j (1-based).
        let avg = (i + 1..=j).sum::<usize>() as f64 / (j - i) as f64;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// Average ranks over datasets. `rows[algorithm][dataset]`; every row must
/// have the same length. Returns one average rank per algorithm.
pub fn average_ranks(rows: &[Vec<f64>], higher_is_better: bool) -> Vec<f64> {
    assert!(!rows.is_empty(), "need at least one algorithm");
    let k = rows.len();
    let n = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == n), "ragged rank matrix");
    assert!(n > 0, "need at least one dataset");

    let mut sums = vec![0.0; k];
    for d in 0..n {
        let col: Vec<f64> = rows.iter().map(|r| r[d]).collect();
        let ranks = rank_row(&col, higher_is_better);
        for (s, r) in sums.iter_mut().zip(ranks.iter()) {
            *s += r;
        }
    }
    sums.iter_mut().for_each(|s| *s /= n as f64);
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranking_higher_better() {
        // values 3.0 > 2.0 > 1.0 => ranks 1, 2, 3
        let r = rank_row(&[1.0, 3.0, 2.0], true);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn simple_ranking_lower_better() {
        let r = rank_row(&[1.0, 3.0, 2.0], false);
        assert_eq!(r, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ties_get_average_ranks() {
        // 5, 5 are best => share (1+2)/2 = 1.5; then 3 => rank 3.
        let r = rank_row(&[5.0, 3.0, 5.0], true);
        assert_eq!(r, vec![1.5, 3.0, 1.5]);
        // All equal => all get (1+2+3)/3 = 2.
        let r = rank_row(&[7.0, 7.0, 7.0], true);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ranks_sum_is_invariant() {
        // Sum of ranks must equal n(n+1)/2 regardless of ties.
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.0, 1.0, 2.0, 2.0],
            vec![9.0, 9.0, 9.0, 1.0],
        ];
        for vals in cases {
            let r = rank_row(&vals, true);
            let n = vals.len() as f64;
            assert!((r.iter().sum::<f64>() - n * (n + 1.0) / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn average_ranks_demsar_example_shape() {
        // 3 algorithms, 4 datasets; A always best, C always worst.
        let rows = vec![
            vec![0.9, 0.8, 0.95, 0.85], // A
            vec![0.8, 0.7, 0.90, 0.80], // B
            vec![0.7, 0.6, 0.85, 0.75], // C
        ];
        let avg = average_ranks(&rows, true);
        assert_eq!(avg, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        average_ranks(&[vec![1.0, 2.0], vec![1.0]], true);
    }
}

//! The Friedman test (Friedman 1937; Demšar 2006), the paper's §5.4
//! hypothesis test with α = 0.05, k = 13 algorithms, N = 33 datasets.
//!
//! Reports both the classic χ² statistic and Iman–Davenport's less
//! conservative F refinement, which Demšar recommends.

use crate::dist::{chi2_sf, f_sf};
use crate::ranks::average_ranks;

/// Result of a Friedman test over `k` algorithms and `n` datasets.
#[derive(Debug, Clone)]
pub struct FriedmanResult {
    pub k: usize,
    pub n: usize,
    /// Average rank per algorithm (rank 1 = best).
    pub avg_ranks: Vec<f64>,
    /// Friedman's χ²_F statistic.
    pub chi2: f64,
    /// p-value of χ²_F against χ²(k−1).
    pub p_chi2: f64,
    /// Iman–Davenport F_F statistic.
    pub f_stat: f64,
    /// p-value of F_F against F(k−1, (k−1)(n−1)).
    pub p_f: f64,
}

impl FriedmanResult {
    /// Reject the null "all algorithms are equivalent" at level `alpha`
    /// (using the Iman–Davenport refinement)?
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_f < alpha
    }
}

/// Run the Friedman test on `rows[algorithm][dataset]`.
///
/// `higher_is_better` controls ranking direction (true for compression
/// ratios). Requires k ≥ 2 and n ≥ 2.
pub fn friedman_test(rows: &[Vec<f64>], higher_is_better: bool) -> FriedmanResult {
    let k = rows.len();
    assert!(k >= 2, "need at least two algorithms");
    let n = rows[0].len();
    assert!(n >= 2, "need at least two datasets");

    let avg_ranks = average_ranks(rows, higher_is_better);
    let kf = k as f64;
    let nf = n as f64;

    let sum_r2: f64 = avg_ranks.iter().map(|r| r * r).sum();
    let chi2 = 12.0 * nf / (kf * (kf + 1.0)) * (sum_r2 - kf * (kf + 1.0).powi(2) / 4.0);
    let p_chi2 = chi2_sf(chi2, kf - 1.0);

    // Iman–Davenport refinement. Guard the degenerate case chi2 == n(k-1)
    // (perfectly consistent rankings) where the denominator hits zero.
    let denom = nf * (kf - 1.0) - chi2;
    let (f_stat, p_f) = if denom <= 1e-12 {
        (f64::INFINITY, 0.0)
    } else {
        let f = (nf - 1.0) * chi2 / denom;
        (f, f_sf(f, kf - 1.0, (kf - 1.0) * (nf - 1.0)))
    };

    FriedmanResult {
        k,
        n,
        avg_ranks,
        chi2,
        p_chi2,
        f_stat,
        p_f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Demšar (2006) Table 2 example: 4 algorithms (C4.5 variants) on 14
    /// datasets; the paper reports average ranks 3.143, 2.000, 2.893,
    /// 1.964 and χ²_F = 9.28, F_F = 3.69.
    fn demsar_example() -> Vec<Vec<f64>> {
        // Accuracy values (higher better) transcribed from the paper.
        vec![
            vec![
                0.763, 0.599, 0.954, 0.628, 0.882, 0.936, 0.661, 0.583, 0.775, 1.0, 0.94, 0.619,
                0.972, 0.957,
            ],
            vec![
                0.768, 0.591, 0.971, 0.661, 0.888, 0.931, 0.668, 0.583, 0.838, 1.0, 0.962, 0.666,
                0.981, 0.978,
            ],
            vec![
                0.771, 0.590, 0.968, 0.654, 0.886, 0.916, 0.609, 0.563, 0.866, 1.0, 0.965, 0.614,
                0.975, 0.946,
            ],
            vec![
                0.798, 0.569, 0.967, 0.657, 0.898, 0.931, 0.685, 0.625, 0.875, 1.0, 0.962, 0.669,
                0.975, 0.970,
            ],
        ]
    }

    #[test]
    fn demsar_worked_example_reproduces() {
        let res = friedman_test(&demsar_example(), true);
        assert_eq!(res.k, 4);
        assert_eq!(res.n, 14);
        // Published: ranks 3.143 / 2.000 / 2.893 / 1.964, χ² = 9.28,
        // F = 3.69. Our transcription differs from the original AUC table
        // by one tie, shifting two ranks by half a step — tolerances cover
        // that while still anchoring to the worked example.
        let expect_ranks = [3.143, 2.000, 2.893, 1.964];
        for (got, want) in res.avg_ranks.iter().zip(expect_ranks.iter()) {
            assert!((got - want).abs() < 0.06, "rank {got} vs {want}");
        }
        assert!((res.chi2 - 9.28).abs() < 0.8, "chi2 = {}", res.chi2);
        assert!((res.f_stat - 3.69).abs() < 0.5, "F = {}", res.f_stat);
        // Demšar: F(3, 39) critical value at α=0.05 is 2.85 => rejected.
        assert!(res.rejects_at(0.05));
        // Ranks must sum to k(k+1)/2 per dataset on average.
        let rank_sum: f64 = res.avg_ranks.iter().sum();
        assert!((rank_sum - 10.0).abs() < 1e-9);
    }

    #[test]
    fn identical_algorithms_are_not_rejected() {
        // All algorithms identical: every rank tied, chi2 = 0.
        let rows = vec![vec![1.0; 10], vec![1.0; 10], vec![1.0; 10]];
        let res = friedman_test(&rows, true);
        assert!(res.chi2.abs() < 1e-9);
        assert!(!res.rejects_at(0.05));
        assert!(res.p_chi2 > 0.99);
    }

    #[test]
    fn perfectly_ordered_algorithms_are_rejected() {
        // A > B > C on every dataset: maximal chi2, p ~ 0.
        let n = 20;
        let rows = vec![
            (0..n).map(|i| 3.0 + i as f64).collect::<Vec<f64>>(),
            (0..n).map(|i| 2.0 + i as f64).collect(),
            (0..n).map(|i| 1.0 + i as f64).collect(),
        ];
        let res = friedman_test(&rows, true);
        assert!(res.rejects_at(0.05));
        assert_eq!(res.avg_ranks, vec![1.0, 2.0, 3.0]);
        // Degenerate Iman-Davenport case is handled.
        assert!(res.f_stat.is_infinite());
        assert_eq!(res.p_f, 0.0);
    }

    #[test]
    fn direction_flag_flips_ranks() {
        let rows = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let hi = friedman_test(&rows, true);
        assert_eq!(hi.avg_ranks, vec![2.0, 1.0]);
        let lo = friedman_test(&rows, false);
        assert_eq!(lo.avg_ranks, vec![1.0, 2.0]);
    }
}

//! Mann–Whitney U test (Nachar 2008), used by the paper's §6.1.5
//! dimensionality experiment (Table 9: md vs 1d compression ratios,
//! α = 0.05, "no significant difference" expected).
//!
//! Two-sided test with normal approximation and tie correction — the
//! standard procedure for the sample sizes involved (N = 33 datasets).

use crate::dist::normal_cdf;
use crate::ranks::rank_row;

/// Result of a two-sided Mann–Whitney U test.
#[derive(Debug, Clone, Copy)]
pub struct MannWhitneyResult {
    /// The smaller of U₁ and U₂.
    pub u: f64,
    /// Standardized statistic (continuity-corrected).
    pub z: f64,
    /// Two-sided p-value.
    pub p: f64,
}

impl MannWhitneyResult {
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p < alpha
    }
}

/// Two-sided Mann–Whitney U test on independent samples `a` and `b`.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> MannWhitneyResult {
    let n1 = a.len();
    let n2 = b.len();
    assert!(n1 >= 1 && n2 >= 1, "both samples must be non-empty");

    // Joint ranking (ascending; direction does not matter for U).
    let mut all = Vec::with_capacity(n1 + n2);
    all.extend_from_slice(a);
    all.extend_from_slice(b);
    let ranks = rank_row(&all, false);
    let r1: f64 = ranks[..n1].iter().sum();

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u1 = r1 - n1f * (n1f + 1.0) / 2.0;
    let u2 = n1f * n2f - u1;
    let u = u1.min(u2);

    // Normal approximation with tie correction.
    let mean = n1f * n2f / 2.0;
    let n = n1f + n2f;
    // Tie term: sum over tie groups of (t^3 - t).
    let mut sorted = all.clone();
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("NaN in mann-whitney input"));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        let t = (j - i) as f64;
        tie_term += t * t * t - t;
        i = j;
    }
    let var = n1f * n2f / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var <= 0.0 {
        // All observations identical: no evidence of difference.
        return MannWhitneyResult { u, z: 0.0, p: 1.0 };
    }
    // Continuity correction toward the mean.
    let z = (u - mean + 0.5) / var.sqrt();
    let p = (2.0 * normal_cdf(z)).min(1.0);
    MannWhitneyResult { u, z, p }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_give_p_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = mann_whitney_u(&a, &a);
        assert!(r.p > 0.9, "identical samples: p = {}", r.p);
        assert!(!r.rejects_at(0.05));
    }

    #[test]
    fn disjoint_samples_are_rejected() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| 100.0 + i as f64).collect();
        let r = mann_whitney_u(&a, &b);
        assert_eq!(r.u, 0.0);
        assert!(r.p < 1e-6, "fully separated: p = {}", r.p);
        assert!(r.rejects_at(0.05));
    }

    #[test]
    fn textbook_example() {
        // A classic worked example: a = {19,22,16,29,24}, b = {20,11,17,12}.
        // U1 = 17, U2 = 3 => U = 3.
        let a = [19.0, 22.0, 16.0, 29.0, 24.0];
        let b = [20.0, 11.0, 17.0, 12.0];
        let r = mann_whitney_u(&a, &b);
        assert_eq!(r.u, 3.0);
        // Exact two-sided p = 0.111; the normal approximation with
        // continuity correction lands near 0.08-0.12 at these tiny sizes.
        assert!(r.p > 0.05 && r.p < 0.2, "p = {}", r.p);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = [1.0, 5.0, 9.0, 13.0];
        let b = [2.0, 6.0, 10.0];
        let r1 = mann_whitney_u(&a, &b);
        let r2 = mann_whitney_u(&b, &a);
        assert!((r1.u - r2.u).abs() < 1e-12);
        assert!((r1.p - r2.p).abs() < 1e-12);
    }

    #[test]
    fn constant_data_handled() {
        let a = [5.0; 8];
        let b = [5.0; 6];
        let r = mann_whitney_u(&a, &b);
        assert_eq!(r.p, 1.0);
    }

    #[test]
    fn slight_shifts_are_not_significant() {
        // The paper's Table 9 case: md vs 1d ratios differ by ~1%.
        let md = [1.091, 1.347, 1.334, 1.223, 1.207];
        let oned = [1.089, 1.365, 1.326, 1.210, 1.200];
        let r = mann_whitney_u(&md, &oned);
        assert!(!r.rejects_at(0.05), "p = {}", r.p);
    }
}

//! Continuous distribution functions needed by the statistical tests:
//! standard normal, chi-squared, and Fisher's F. Implemented via the
//! classic special functions (Lanczos log-gamma, regularized incomplete
//! gamma and beta) to double precision.

use std::f64::consts::PI;

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    // Published Lanczos(g = 7) coefficients, kept verbatim.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma P(a, x).
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series expansion.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        1.0 - reg_gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) by continued fraction
/// (valid for x >= a + 1).
fn reg_gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1e308;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta I_x(a, b) via Lentz's continued fraction.
pub fn reg_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0 && (0.0..=1.0).contains(&x));
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the orientation whose continued fraction converges fastest; the
    // complement is computed inline (recursing can ping-pong when x sits
    // exactly on the boundary, e.g. x = 0.5 with a = b).
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let mut c = 1.0;
    let mut d = 1.0 - (a + b) * x / (a + 1.0);
    if d.abs() < 1e-300 {
        d = 1e-300;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        // Even step.
        let num = m * (b - m) * x / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
        d = 1.0 + num * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + num / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let num = -(a + m) * (a + b + m) * x / ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
        d = 1.0 + num * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + num / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h
}

/// Standard normal CDF Φ(z).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc_approx(-z / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes' rational Chebyshev
/// fit, |error| < 1.2e-7, refined by one Newton step against the series
/// for small arguments where precision matters).
fn erfc_approx(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Chi-squared survival function P(X > x) with k degrees of freedom.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - reg_gamma_p(k / 2.0, x / 2.0)
}

/// F-distribution survival function P(X > x) with (d1, d2) degrees of
/// freedom.
pub fn f_sf(x: f64, d1: f64, d2: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    reg_beta(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..10u64 {
            let fact: u64 = (1..n).product::<u64>().max(1);
            let expect = (fact as f64).ln();
            assert!(
                (ln_gamma(n as f64) - expect).abs() < 1e-9,
                "ln_gamma({n}) = {} expected {expect}",
                ln_gamma(n as f64)
            );
        }
        // Gamma(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!((normal_cdf(-1.96) - 0.0249979).abs() < 1e-5);
        assert!((normal_cdf(2.5758) - 0.995).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.9999999);
        assert!(normal_cdf(-8.0) < 1e-7);
    }

    #[test]
    fn chi2_reference_values() {
        // Critical values: P(X > 3.841) = 0.05 for k=1;
        // P(X > 21.026) = 0.05 for k=12.
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(21.026, 12.0) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(5.0, 5.0) - 0.4159).abs() < 1e-3);
        assert_eq!(chi2_sf(0.0, 3.0), 1.0);
    }

    #[test]
    fn f_reference_values() {
        // P(F > 4.75) ≈ 0.05 for (1, 12); P(F > 2.69) ≈ 0.05 for (4, 20).
        assert!((f_sf(4.747, 1.0, 12.0) - 0.05).abs() < 2e-3);
        assert!((f_sf(2.866, 4.0, 20.0) - 0.05).abs() < 2e-3);
        assert_eq!(f_sf(0.0, 3.0, 10.0), 1.0);
        // Median of F(10,10) is 1.
        assert!((f_sf(1.0, 10.0, 10.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn incomplete_gamma_limits() {
        assert_eq!(reg_gamma_p(2.0, 0.0), 0.0);
        assert!(reg_gamma_p(2.0, 100.0) > 0.999999);
        // P(1, x) = 1 - e^-x
        for x in [0.1, 1.0, 3.0] {
            assert!((reg_gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_limits_and_symmetry() {
        assert_eq!(reg_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for x in [0.2, 0.5, 0.8] {
            let lhs = reg_beta(2.5, 4.0, x);
            let rhs = 1.0 - reg_beta(4.0, 2.5, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10);
        }
        // I_x(1,1) = x (uniform).
        assert!((reg_beta(1.0, 1.0, 0.37) - 0.37).abs() < 1e-10);
    }
}

//! # fcbench-stats
//!
//! The statistical toolkit behind the paper's fairness machinery (§2.4,
//! §5.4, §6.1.5):
//!
//! - [`friedman`] — the Friedman test (χ² and Iman–Davenport F) deciding
//!   whether all 13 compressors are equivalent over the 33 datasets;
//! - [`nemenyi`] — post-hoc critical differences and the Figure 7b CD
//!   diagram with cliques;
//! - [`mannwhitney`] — the Mann–Whitney U test for the Table 9
//!   multi-dimensional vs 1-D experiment;
//! - [`ranks`] — tie-averaged ranking;
//! - [`dist`] — the underlying special functions (log-gamma, regularized
//!   incomplete gamma/beta, normal/χ²/F distributions).

#![forbid(unsafe_code)]

pub mod dist;
pub mod friedman;
pub mod mannwhitney;
pub mod nemenyi;
pub mod ranks;

pub use friedman::{friedman_test, FriedmanResult};
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use nemenyi::{cd_diagram, critical_difference, CdDiagram, CdEntry};
pub use ranks::{average_ranks, rank_row};

//! Post-hoc Nemenyi test and critical-difference diagram (Demšar 2006),
//! used for the paper's Figure 7b.
//!
//! Two algorithms differ significantly when their average ranks differ by
//! at least `CD = q_α · sqrt(k(k+1) / 6N)`. The CD diagram orders
//! algorithms by average rank and connects *cliques* — maximal groups
//! whose rank spread is below CD — with bars.

/// Critical values q_α for α = 0.05 (studentized range statistic divided
/// by √2), k = 2..=20, from Demšar (2006) Table 5.
const Q_ALPHA_05: [f64; 19] = [
    1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164, 3.219, 3.268, 3.313, 3.354,
    3.391, 3.426, 3.458, 3.489, 3.517, 3.544,
];

/// Critical values for α = 0.10.
const Q_ALPHA_10: [f64; 19] = [
    1.645, 2.052, 2.291, 2.459, 2.589, 2.693, 2.780, 2.855, 2.920, 2.978, 3.030, 3.077, 3.120,
    3.159, 3.196, 3.230, 3.261, 3.291, 3.319,
];

/// The q_α critical value for `k` algorithms at significance `alpha`
/// (0.05 or 0.10 supported, matching published tables).
pub fn q_alpha(k: usize, alpha: f64) -> f64 {
    assert!((2..=20).contains(&k), "q_alpha tabulated for k in 2..=20");
    if (alpha - 0.05).abs() < 1e-9 {
        Q_ALPHA_05[k - 2]
    } else if (alpha - 0.10).abs() < 1e-9 {
        Q_ALPHA_10[k - 2]
    } else {
        panic!("alpha must be 0.05 or 0.10");
    }
}

/// Nemenyi critical difference for `k` algorithms over `n` datasets.
pub fn critical_difference(k: usize, n: usize, alpha: f64) -> f64 {
    q_alpha(k, alpha) * ((k * (k + 1)) as f64 / (6.0 * n as f64)).sqrt()
}

/// One algorithm entry in a CD diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct CdEntry {
    pub name: String,
    pub avg_rank: f64,
}

/// The data behind a critical-difference diagram (Figure 7b).
#[derive(Debug, Clone)]
pub struct CdDiagram {
    /// Entries sorted by average rank, best (lowest) first.
    pub entries: Vec<CdEntry>,
    /// The critical difference.
    pub cd: f64,
    /// Maximal cliques as index ranges `[lo, hi]` into `entries`
    /// (inclusive): groups not significantly different from each other.
    pub cliques: Vec<(usize, usize)>,
}

/// Build the CD diagram for named average ranks.
pub fn cd_diagram(names: &[String], avg_ranks: &[f64], n_datasets: usize, alpha: f64) -> CdDiagram {
    assert_eq!(names.len(), avg_ranks.len());
    let k = names.len();
    let cd = critical_difference(k, n_datasets, alpha);

    let mut entries: Vec<CdEntry> = names
        .iter()
        .zip(avg_ranks.iter())
        .map(|(n, &r)| CdEntry {
            name: n.clone(),
            avg_rank: r,
        })
        .collect();
    entries.sort_by(|a, b| a.avg_rank.partial_cmp(&b.avg_rank).expect("finite ranks"));

    // Maximal cliques: for each start, extend while spread < cd; keep only
    // cliques not contained in a previous one.
    let mut cliques: Vec<(usize, usize)> = Vec::new();
    for lo in 0..k {
        let mut hi = lo;
        while hi + 1 < k && entries[hi + 1].avg_rank - entries[lo].avg_rank < cd {
            hi += 1;
        }
        if hi > lo {
            if let Some(&(plo, phi)) = cliques.last() {
                if plo <= lo && hi <= phi {
                    continue; // contained in the previous clique
                }
            }
            cliques.push((lo, hi));
        }
    }
    CdDiagram {
        entries,
        cd,
        cliques,
    }
}

impl CdDiagram {
    /// Are algorithms `a` and `b` (by name) within one clique, i.e. *not*
    /// significantly different?
    pub fn same_clique(&self, a: &str, b: &str) -> bool {
        let pos = |n: &str| self.entries.iter().position(|e| e.name == n);
        let (Some(pa), Some(pb)) = (pos(a), pos(b)) else {
            return false;
        };
        self.cliques
            .iter()
            .any(|&(lo, hi)| lo <= pa.min(pb) && pa.max(pb) <= hi)
    }

    /// Render the diagram as indented text (one line per algorithm, bars
    /// marking cliques), for the CLI harness.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("CD = {:.3}\n", self.cd));
        for (i, e) in self.entries.iter().enumerate() {
            let mut bars = String::new();
            for &(lo, hi) in &self.cliques {
                bars.push(if lo <= i && i <= hi { '|' } else { ' ' });
            }
            out.push_str(&format!("{:>6.3}  {bars}  {}\n", e.avg_rank, e.name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_alpha_table_values() {
        assert!((q_alpha(2, 0.05) - 1.960).abs() < 1e-9);
        assert!((q_alpha(13, 0.05) - 3.313).abs() < 1e-9);
        assert!((q_alpha(20, 0.05) - 3.544).abs() < 1e-9);
        assert!((q_alpha(4, 0.10) - 2.291).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn q_alpha_out_of_range_panics() {
        q_alpha(21, 0.05);
    }

    #[test]
    fn paper_configuration_cd() {
        // k = 13, N = 33, α = 0.05: CD = 3.313 * sqrt(13*14/(6*33)).
        let cd = critical_difference(13, 33, 0.05);
        let expect = 3.313 * (13.0_f64 * 14.0 / (6.0 * 33.0)).sqrt();
        assert!((cd - expect).abs() < 1e-12);
        assert!(cd > 3.1 && cd < 3.3, "cd = {cd}"); // sanity band
    }

    #[test]
    fn demsar_worked_example_cd() {
        // Demšar: k=4, N=14 => CD = 2.569 * sqrt(4*5/(6*14)) ≈ 1.25.
        let cd = critical_difference(4, 14, 0.05);
        assert!((cd - 1.25).abs() < 0.01, "cd = {cd}");
    }

    #[test]
    fn diagram_orders_and_groups() {
        let names: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        // d best (1.5), a (1.9), b (3.0), c worst (3.6); N chosen so CD ~ 1.25.
        let ranks = [1.9, 3.0, 3.6, 1.5];
        let d = cd_diagram(&names, &ranks, 14, 0.05);
        let order: Vec<&str> = d.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(order, vec!["d", "a", "b", "c"]);
        // d & a within CD (0.4 < 1.25): same clique; d & c differ (2.1 > 1.25).
        assert!(d.same_clique("d", "a"));
        assert!(!d.same_clique("d", "c"));
        assert!(d.same_clique("b", "c"));
    }

    #[test]
    fn contained_cliques_are_dropped() {
        let names: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let ranks = [1.0, 1.1, 1.2];
        let d = cd_diagram(&names, &ranks, 10, 0.05);
        // All three in one clique; no sub-cliques listed.
        assert_eq!(d.cliques, vec![(0, 2)]);
    }

    #[test]
    fn render_contains_all_names() {
        let names: Vec<String> = ["u", "v"].iter().map(|s| s.to_string()).collect();
        let d = cd_diagram(&names, &[1.0, 2.0], 12, 0.05);
        let text = d.render_text();
        assert!(text.contains('u') && text.contains('v'));
        assert!(text.contains("CD ="));
    }
}

//! # fcbench-roofline
//!
//! The roofline performance model of §5.1.3 / §6.3 (Williams et al. 2009):
//! a kernel is plotted by its arithmetic intensity (operations per byte of
//! memory traffic) against achieved performance; the "roof" is the lower
//! envelope of the compute ceiling and `intensity × bandwidth`. Dots near
//! the bandwidth roof are memory-bound, dots under the compute ceiling but
//! far below the bandwidth line are compute/latency-bound.
//!
//! Machine ceilings default to the paper's Figure 11 numbers for the
//! Xeon Gold 6126 (CPU, integer-op axis) and Quadro RTX 6000 (GPU,
//! FLOP axis).

#![forbid(unsafe_code)]

use fcbench_core::OpProfile;

/// A named straight-line ceiling.
#[derive(Debug, Clone, PartialEq)]
pub struct Ceiling {
    pub label: String,
    /// GOP/s for compute ceilings, GB/s for bandwidth ceilings.
    pub value: f64,
}

/// Machine model: compute ceilings (horizontal lines) and bandwidth
/// ceilings (diagonal lines through the origin in log-log space).
#[derive(Debug, Clone)]
pub struct MachineModel {
    pub name: String,
    pub compute: Vec<Ceiling>,
    pub bandwidth: Vec<Ceiling>,
}

impl MachineModel {
    /// The paper's CPU: Intel Xeon Gold 6126 (Fig. 11a ceilings).
    pub fn xeon_gold_6126() -> Self {
        MachineModel {
            name: "Xeon Gold 6126".to_string(),
            compute: vec![
                Ceiling {
                    label: "Int-Scalar".into(),
                    value: 191.0,
                },
                Ceiling {
                    label: "Float-Scalar".into(),
                    value: 157.8,
                },
            ],
            bandwidth: vec![
                Ceiling {
                    label: "L1".into(),
                    value: 11_000.0,
                },
                Ceiling {
                    label: "L2".into(),
                    value: 5_508.8,
                },
                Ceiling {
                    label: "L3".into(),
                    value: 640.1,
                },
                Ceiling {
                    label: "DRAM".into(),
                    value: 214.5,
                },
            ],
        }
    }

    /// The paper's GPU: NVIDIA Quadro RTX 6000 (Fig. 11b ceilings).
    pub fn rtx_6000() -> Self {
        MachineModel {
            name: "RTX 6000".to_string(),
            compute: vec![
                Ceiling {
                    label: "single-precision".into(),
                    value: 13_325.8,
                },
                Ceiling {
                    label: "double-precision".into(),
                    value: 416.4,
                },
            ],
            bandwidth: vec![Ceiling {
                label: "DRAM".into(),
                value: 621.5,
            }],
        }
    }

    /// The lowest compute ceiling (the binding one for scalar codecs).
    pub fn compute_roof(&self) -> f64 {
        self.compute
            .iter()
            .map(|c| c.value)
            .fold(f64::INFINITY, f64::min)
    }

    /// The DRAM (lowest) bandwidth ceiling.
    pub fn dram_roof(&self) -> f64 {
        self.bandwidth
            .iter()
            .map(|c| c.value)
            .fold(f64::INFINITY, f64::min)
    }

    /// Attainable performance (GOP/s) at `intensity` ops/byte under the
    /// DRAM roof and the *highest* compute ceiling.
    pub fn attainable(&self, intensity: f64) -> f64 {
        let compute_max = self.compute.iter().map(|c| c.value).fold(0.0f64, f64::max);
        (intensity * self.dram_roof()).min(compute_max)
    }

    /// The ridge point: intensity where the DRAM roof meets the highest
    /// compute ceiling.
    pub fn ridge_intensity(&self) -> f64 {
        let compute_max = self.compute.iter().map(|c| c.value).fold(0.0f64, f64::max);
        compute_max / self.dram_roof()
    }
}

/// What binds a kernel at its measured operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Close to `intensity × DRAM bandwidth`.
    MemoryBound,
    /// Close to a compute ceiling.
    ComputeBound,
    /// Far under both roofs (latency/serialization limited — the paper's
    /// "not bound by memory or computation" serial codecs, §6.3).
    Underutilized,
}

/// A dot on the roofline chart.
#[derive(Debug, Clone)]
pub struct RooflinePoint {
    pub name: String,
    /// Arithmetic intensity in ops/byte.
    pub intensity: f64,
    /// Achieved performance in GOP/s.
    pub performance: f64,
}

impl RooflinePoint {
    /// Place a codec: `profile` gives its per-run op counts, `seconds` the
    /// measured kernel time for that run. Uses the integer-op axis when
    /// the kernel is integer-dominated (all the CPU codecs; Fig. 11a),
    /// else the FLOP axis.
    pub fn from_profile(name: impl Into<String>, profile: &OpProfile, seconds: f64) -> Self {
        let (ops, bytes) = if profile.int_ops >= profile.float_ops {
            (profile.int_ops, profile.bytes_moved)
        } else {
            (profile.float_ops, profile.bytes_moved)
        };
        let intensity = if bytes == 0 {
            0.0
        } else {
            ops as f64 / bytes as f64
        };
        let performance = ops as f64 / seconds.max(f64::MIN_POSITIVE) / 1e9;
        RooflinePoint {
            name: name.into(),
            intensity,
            performance,
        }
    }

    /// Classify against `machine`: within `fraction` (e.g. 0.5) of the
    /// attainable roof counts as bound by whichever line is lower there.
    pub fn classify(&self, machine: &MachineModel, fraction: f64) -> Bound {
        let roof = machine.attainable(self.intensity);
        if self.performance < roof * fraction {
            return Bound::Underutilized;
        }
        if self.intensity < machine.ridge_intensity() {
            Bound::MemoryBound
        } else {
            Bound::ComputeBound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ceilings() {
        let cpu = MachineModel::xeon_gold_6126();
        assert!((cpu.dram_roof() - 214.5).abs() < 1e-9);
        assert!((cpu.compute_roof() - 157.8).abs() < 1e-9);
        let gpu = MachineModel::rtx_6000();
        assert!((gpu.dram_roof() - 621.5).abs() < 1e-9);
        assert!((gpu.attainable(1000.0) - 13_325.8).abs() < 1e-9);
    }

    #[test]
    fn attainable_is_min_of_roofs() {
        let m = MachineModel::xeon_gold_6126();
        // Low intensity: bandwidth-limited.
        assert!((m.attainable(0.1) - 21.45).abs() < 1e-9);
        // High intensity: compute-limited (highest ceiling = 191).
        assert!((m.attainable(100.0) - 191.0).abs() < 1e-9);
        // Ridge point continuity.
        let ridge = m.ridge_intensity();
        assert!((m.attainable(ridge) - 191.0).abs() < 1e-6);
    }

    #[test]
    fn placement_from_profile() {
        let profile = OpProfile {
            int_ops: 3_000_000,
            float_ops: 0,
            bytes_moved: 1_000_000,
        };
        // 3 ops/byte, 1 ms => 3 GOP/s.
        let p = RooflinePoint::from_profile("x", &profile, 1e-3);
        assert!((p.intensity - 3.0).abs() < 1e-12);
        assert!((p.performance - 3.0).abs() < 1e-9);
    }

    #[test]
    fn float_axis_used_for_float_kernels() {
        let profile = OpProfile {
            int_ops: 10,
            float_ops: 2_000_000,
            bytes_moved: 1_000_000,
        };
        let p = RooflinePoint::from_profile("f", &profile, 1e-3);
        assert!((p.intensity - 2.0).abs() < 1e-12);
    }

    #[test]
    fn classification_bands() {
        let m = MachineModel::xeon_gold_6126();
        // Memory-bound: low intensity, performance at the bandwidth roof.
        let fast_low = RooflinePoint {
            name: "bitshuffle-ish".into(),
            intensity: 0.5,
            performance: m.attainable(0.5) * 0.9,
        };
        assert_eq!(fast_low.classify(&m, 0.5), Bound::MemoryBound);
        // Compute-bound: beyond the ridge, near the ceiling.
        let ridge = m.ridge_intensity();
        let fast_high = RooflinePoint {
            name: "ndzip-ish".into(),
            intensity: ridge * 4.0,
            performance: 191.0 * 0.8,
        };
        assert_eq!(fast_high.classify(&m, 0.5), Bound::ComputeBound);
        // Serial codecs sit far below both roofs (§6.3 analysis (1)).
        let slow = RooflinePoint {
            name: "fpzip-ish".into(),
            intensity: 1.0,
            performance: 0.5,
        };
        assert_eq!(slow.classify(&m, 0.5), Bound::Underutilized);
    }

    #[test]
    fn zero_bytes_profile_is_safe() {
        let profile = OpProfile {
            int_ops: 10,
            float_ops: 0,
            bytes_moved: 0,
        };
        let p = RooflinePoint::from_profile("z", &profile, 1.0);
        assert_eq!(p.intensity, 0.0);
    }
}

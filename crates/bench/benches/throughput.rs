//! Criterion benches behind Table 5 / Figure 8: per-codec compression and
//! decompression throughput on a representative dataset from each domain,
//! plus an allocation-tracked `compress` vs `compress_into` pair so the
//! zero-copy API's allocation savings are a recorded, regression-checkable
//! number.
//!
//! Set `FCBENCH_QUICK_BENCH=1` to shrink inputs and time budgets to a
//! CI-smoke scale (single dataset, milliseconds per bench).
//!
//! The gorilla/chimp rows here are the end-to-end view of the bitstream
//! engine (`fcbench_entropy::bits`): their inner loops are almost pure
//! bit I/O, so movement on these rows tracks the `bitstream` microbench.
//! README's "Performance" table records the PR 4 → PR 5 before/after; the
//! machine-readable trajectory lives in `BENCH_5.json` (see the
//! `bench-json` subcommand).
//!
//! The counting allocator is installed binary-wide (it is a `#[global_allocator]`,
//! there is no narrower scope), adding a few relaxed atomic ops per allocation
//! to the throughput groups too. That matches the `fcbench` binary, which runs
//! with the same allocator for Figure 10, and is noise at the multi-ms
//! per-iteration scale measured here; the codecs the alloc pair certifies as
//! zero-allocation pay nothing inside the timed loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcbench_bench::alloc_track::{self, CountingAllocator};
use fcbench_bench::codecs::paper_registry;
use fcbench_core::FloatData;
use fcbench_datasets::{find, generate};
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn quick() -> bool {
    std::env::var_os("FCBENCH_QUICK_BENCH").is_some_and(|v| v != "0")
}

fn elems() -> usize {
    if quick() {
        1 << 10
    } else {
        1 << 14
    }
}

fn budget_ms() -> (u64, u64) {
    if quick() {
        (20, 60)
    } else {
        (300, 900)
    }
}

fn datasets() -> &'static [&'static str] {
    if quick() {
        &["msg-bt"]
    } else {
        &["msg-bt", "citytemp", "acs-wht", "tpcDS-store"]
    }
}

fn bench_compress(c: &mut Criterion) {
    let registry = paper_registry();
    let (warm, meas) = budget_ms();
    let mut group = c.benchmark_group("compress");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(warm))
        .measurement_time(Duration::from_millis(meas));
    let mut payload = Vec::new();
    for ds in datasets() {
        let spec = find(ds).expect("catalog dataset");
        let data = generate(&spec, elems());
        group.throughput(Throughput::Bytes(data.bytes().len() as u64));
        for entry in registry.iter() {
            let codec = entry.codec();
            if codec.compress_into(&data, &mut payload).is_err() {
                continue; // paper's "-" cells
            }
            group.bench_with_input(BenchmarkId::new(entry.name(), ds), &data, |b, data| {
                b.iter(|| codec.compress_into(data, &mut payload).expect("compress"))
            });
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let registry = paper_registry();
    let (warm, meas) = budget_ms();
    let mut group = c.benchmark_group("decompress");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(warm))
        .measurement_time(Duration::from_millis(meas));
    let spec = find("msg-bt").expect("catalog dataset");
    let data = generate(&spec, elems());
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));
    let mut out = FloatData::scratch();
    for entry in registry.iter() {
        let codec = entry.codec();
        let Ok(payload) = codec.compress(&data) else {
            continue;
        };
        group.bench_function(BenchmarkId::new(entry.name(), "msg-bt"), |b| {
            b.iter(|| {
                codec
                    .decompress_into(&payload, data.desc(), &mut out)
                    .expect("decompress")
            })
        });
    }
    group.finish();
}

/// The recorded allocation numbers: steady-state allocator calls per
/// iteration for the allocating `compress` vs the buffer-reusing
/// `compress_into`, per codec. `compress_into` for gorilla/chimp must be
/// zero — `crates/bench/tests/alloc_into.rs` turns that into a hard
/// regression test.
fn bench_alloc_pair(_c: &mut Criterion) {
    alloc_track::mark_installed();
    let registry = paper_registry();
    let spec = find("msg-bt").expect("catalog dataset");
    let data = generate(&spec, elems());
    let iters = if quick() { 5 } else { 20 };

    println!("\nallocator calls per iteration (steady state, msg-bt):");
    println!("{:<16} {:>10} {:>14}", "codec", "compress", "compress_into");
    for entry in registry.iter() {
        let codec = entry.codec();
        let mut out = Vec::new();
        // Warm up both paths so buffers reach steady-state capacity.
        if codec.compress_into(&data, &mut out).is_err() {
            continue;
        }
        let _ = codec.compress(&data);

        let (alloc_calls, _) = alloc_track::count_allocations(|| {
            for _ in 0..iters {
                std::hint::black_box(codec.compress(&data).expect("compress"));
            }
        });
        let (into_calls, _) = alloc_track::count_allocations(|| {
            for _ in 0..iters {
                std::hint::black_box(codec.compress_into(&data, &mut out).expect("compress"));
            }
        });
        println!(
            "{:<16} {:>10.1} {:>14.1}",
            entry.name(),
            alloc_calls as f64 / iters as f64,
            into_calls as f64 / iters as f64
        );
    }
}

criterion_group!(benches, bench_compress, bench_decompress, bench_alloc_pair);
criterion_main!(benches);

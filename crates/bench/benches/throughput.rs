//! Criterion benches behind Table 5 / Figure 8: per-codec compression and
//! decompression throughput on a representative dataset from each domain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcbench_bench::codecs::all_codecs;
use fcbench_datasets::{find, generate};
use std::time::Duration;

const ELEMS: usize = 1 << 14;

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    for ds in ["msg-bt", "citytemp", "acs-wht", "tpcDS-store"] {
        let spec = find(ds).expect("catalog dataset");
        let data = generate(&spec, ELEMS);
        group.throughput(Throughput::Bytes(data.bytes().len() as u64));
        for codec in all_codecs() {
            if codec.compress(&data).is_err() {
                continue; // paper's "-" cells
            }
            group.bench_with_input(BenchmarkId::new(codec.info().name, ds), &data, |b, data| {
                b.iter(|| codec.compress(data).expect("compress"))
            });
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let spec = find("msg-bt").expect("catalog dataset");
    let data = generate(&spec, ELEMS);
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));
    for codec in all_codecs() {
        let Ok(payload) = codec.compress(&data) else {
            continue;
        };
        group.bench_function(BenchmarkId::new(codec.info().name, "msg-bt"), |b| {
            b.iter(|| codec.decompress(&payload, data.desc()).expect("decompress"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);

//! Criterion bench behind Tables 7–8: thread scaling of the four
//! parallel CPU codecs (speedups are bounded by host cores; the paper's
//! testbed has 24).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcbench_bench::codecs::scalable_factories;
use fcbench_datasets::{find, generate};
use std::time::Duration;

fn bench_thread_scaling(c: &mut Criterion) {
    let spec = find("miranda3d").expect("catalog dataset");
    let data = generate(&spec, 1 << 16);
    let mut group = c.benchmark_group("thread_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));

    for (name, factory) in scalable_factories() {
        for threads in [1usize, 2, 4, 8] {
            let codec = factory(threads);
            group.bench_with_input(BenchmarkId::new(name, threads), &data, |b, data| {
                b.iter(|| codec.compress(data).expect("compress"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);

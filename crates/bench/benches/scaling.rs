//! Criterion bench behind Tables 7–8: thread scaling of the four
//! parallel CPU codecs (speedups are bounded by host cores; the paper's
//! testbed has 24).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcbench_bench::codecs::paper_registry;
use fcbench_datasets::{find, generate};
use std::time::Duration;

fn bench_thread_scaling(c: &mut Criterion) {
    let spec = find("miranda3d").expect("catalog dataset");
    let data = generate(&spec, 1 << 16);
    let mut group = c.benchmark_group("thread_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));

    let registry = paper_registry();
    let mut payload = Vec::new();
    for name in registry.scalable_names() {
        for threads in [1usize, 2, 4, 8] {
            let codec = registry.scaled(name, threads).expect("scalable entry");
            group.bench_with_input(BenchmarkId::new(name, threads), &data, |b, data| {
                b.iter(|| codec.compress_into(data, &mut payload).expect("compress"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);

//! Serving-layer throughput smoke: loopback `FCS1` round trips through
//! `fcbench-serve` against the same codecs driven directly, so the table
//! shows what the network+protocol layer costs on top of the engine.
//!
//! Runs without the Criterion harness (`harness = false`): it prints one
//! table and exits, sized for a CI smoke budget. `FCBENCH_QUICK_BENCH=1`
//! shrinks the workload.

use fcbench_bench::codecs::full_registry;
use fcbench_core::pool::{PoolConfig, WorkerPool};
use fcbench_core::stream::{FrameReader, FrameWriter};
use fcbench_datasets::{find, generate};
use fcbench_serve::{Client, ServeConfig, Server};
use std::sync::Arc;
use std::time::Instant;

fn quick() -> bool {
    std::env::var_os("FCBENCH_QUICK_BENCH").is_some_and(|v| v != "0")
}

fn main() {
    let elems = if quick() { 1 << 14 } else { 1 << 18 };
    let iters = if quick() { 2 } else { 8 };
    let block = 8 * 1024;
    let spec = find("msg-bt").expect("catalog dataset");
    let data = generate(&spec, elems);
    let raw_mb = data.bytes().len() as f64 / (1024.0 * 1024.0);

    let registry = Arc::new(full_registry());
    let pool = Arc::new(WorkerPool::new(PoolConfig::for_host()));
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        Arc::clone(&pool),
        ServeConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let running = server.spawn();

    println!(
        "serve throughput smoke ({elems} elements = {raw_mb:.1} MiB, best of {iters}, \
         loopback FCS1 vs direct engine):"
    );
    println!(
        "{:<16} {:>12} {:>12} {:>8}",
        "codec", "serve MB/s", "direct MB/s", "overhead"
    );
    let mut client = Client::connect(addr).expect("connect");
    for name in ["gorilla", "chimp128", "bitshuffle-zstd", "dfcm"] {
        let entry = registry.entry(name).expect("registered codec");

        // Serve path: compress + decompress over the wire.
        let mut best_serve = f64::INFINITY;
        for _ in 0..iters {
            let t = Instant::now();
            let compressed = client.compress(name, &data, block).expect("compress");
            let restored = client.decompress(&compressed).expect("decompress");
            best_serve = best_serve.min(t.elapsed().as_secs_f64());
            assert_eq!(restored.bytes(), data.bytes(), "{name}: lossless");
        }

        // Direct path: the same FCB3 stream through the same shared pool,
        // no sockets.
        let engine = entry.is_thread_scalable().then(|| Arc::clone(&pool));
        let mut best_direct = f64::INFINITY;
        for _ in 0..iters {
            let t = Instant::now();
            let mut writer = FrameWriter::new(
                Vec::new(),
                Arc::clone(entry.codec()),
                data.desc().clone(),
                block,
                engine.clone(),
            )
            .expect("writer");
            writer.write(data.bytes()).expect("write");
            let stored = writer.finish().expect("finish");
            let mut reader =
                FrameReader::new(&stored[..], Arc::clone(entry.codec()), engine.clone())
                    .expect("reader");
            let mut n = 0usize;
            while let Some(b) = reader.next_block().expect("read") {
                n += b.len();
            }
            best_direct = best_direct.min(t.elapsed().as_secs_f64());
            assert_eq!(n, data.bytes().len(), "{name}: full decode");
        }

        println!(
            "{name:<16} {:>12.1} {:>12.1} {:>7.2}x",
            raw_mb / best_serve,
            raw_mb / best_direct,
            best_serve / best_direct.max(f64::MIN_POSITIVE)
        );
    }

    let stats = client.stats().expect("stats");
    drop(client);
    running.shutdown().expect("shutdown");
    println!(
        "\n(server counted {} requests, {} bytes in, {} bytes out; \
         overhead ~1x means the protocol layer is not the bottleneck)",
        stats.requests_ok, stats.bytes_in, stats.bytes_out
    );
}

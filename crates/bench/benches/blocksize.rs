//! Criterion bench behind Table 10: block/page size effect (4 KB vs 64 KB
//! vs 8 MB) on compression throughput for block-capable codecs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcbench_core::blocks::{BlockCodec, BLOCK_4K, BLOCK_64K, BLOCK_8M};
use fcbench_datasets::{find, generate};
use std::time::Duration;

fn bench_block_sizes(c: &mut Criterion) {
    let spec = find("tpcH-order").expect("catalog dataset");
    let data = generate(&spec, 1 << 15);
    let mut group = c.benchmark_group("block_size");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));

    for (label, bytes) in [("4K", BLOCK_4K), ("64K", BLOCK_64K), ("8M", BLOCK_8M)] {
        let gorilla = BlockCodec::new(fcbench_codecs_cpu::Gorilla::new(), bytes);
        group.bench_with_input(BenchmarkId::new("gorilla", label), &data, |b, data| {
            b.iter(|| fcbench_core::Compressor::compress(&gorilla, data).expect("compress"))
        });
        let chimp = BlockCodec::new(fcbench_codecs_cpu::Chimp::new(), bytes);
        group.bench_with_input(BenchmarkId::new("chimp128", label), &data, |b, data| {
            b.iter(|| fcbench_core::Compressor::compress(&chimp, data).expect("compress"))
        });
        let spdp = BlockCodec::new(fcbench_codecs_cpu::Spdp::new(), bytes);
        group.bench_with_input(BenchmarkId::new("spdp", label), &data, |b, data| {
            b.iter(|| fcbench_core::Compressor::compress(&spdp, data).expect("compress"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_sizes);
criterion_main!(benches);

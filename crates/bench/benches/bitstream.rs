//! Bitstream microbench: the recorded number behind the word-at-a-time
//! rewrite of `fcbench_entropy::bits`. Measures `push_bits`/`read_bits`
//! at representative field widths, single-bit push/read, control-code
//! dispatch (`peek_bits`/`consume` vs bit-by-bit reads), and the aligned
//! bulk path, each against the retained byte-granular
//! `bits::reference` implementation. The headline acceptance number for
//! the rewrite is the multi-bit push/read speedup, which must stay ≥ 2x.
//!
//! Runs without the Criterion harness (`harness = false`): it prints one
//! table and exits, sized for a CI smoke budget. `FCBENCH_QUICK_BENCH=1`
//! shrinks the iteration counts.

use fcbench_entropy::bits::reference;
use fcbench_entropy::{BitReader, BitWriter};
use std::hint::black_box;
use std::time::Instant;

fn quick() -> bool {
    std::env::var_os("FCBENCH_QUICK_BENCH").is_some_and(|v| v != "0")
}

/// Best-of-N wall time for `f`, in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Pseudo-random (value, width) program with widths in `lo..=hi`, values
/// masked to fit. Deterministic so both engines see identical work.
fn field_program(len: usize, lo: u32, hi: u32) -> Vec<(u64, u32)> {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let n = lo + (x % u64::from(hi - lo + 1)) as u32;
            let v = if n == 64 { x } else { x & ((1u64 << n) - 1) };
            (v, n)
        })
        .collect()
}

struct Row {
    name: &'static str,
    new_s: f64,
    ref_s: f64,
    bits: u64,
}

impl Row {
    fn print(&self) {
        let rate = |s: f64| self.bits as f64 / s / 1e6 / 8.0; // MB/s of bits
        println!(
            "{:<28} {:>10.1} {:>10.1} {:>7.2}x",
            self.name,
            rate(self.new_s),
            rate(self.ref_s),
            self.ref_s / self.new_s,
        );
    }
}

fn bench_push(name: &'static str, fields: &[(u64, u32)], reps: usize) -> Row {
    let bits: u64 = fields.iter().map(|&(_, n)| u64::from(n)).sum();
    // Both writers get the same worst-case reserve so the timed loop
    // compares bit I/O, not Vec regrowth.
    let cap = fields.len() * 8 + 8;
    let new_s = best_of(reps, || {
        let mut w = BitWriter::with_capacity(cap);
        for &(v, n) in fields {
            w.push_bits(v, n);
        }
        black_box(w.bit_len());
    });
    let ref_s = best_of(reps, || {
        let mut w = reference::BitWriter::with_capacity(cap);
        for &(v, n) in fields {
            w.push_bits(v, n);
        }
        black_box(w.bit_len());
    });
    Row {
        name,
        new_s,
        ref_s,
        bits,
    }
}

fn bench_read(name: &'static str, fields: &[(u64, u32)], reps: usize) -> Row {
    let mut w = BitWriter::new();
    for &(v, n) in fields {
        w.push_bits(v, n);
    }
    let bytes = w.into_bytes();
    let bits: u64 = fields.iter().map(|&(_, n)| u64::from(n)).sum();
    let new_s = best_of(reps, || {
        let mut r = BitReader::new(&bytes);
        let mut acc = 0u64;
        for &(_, n) in fields {
            acc ^= r.read_bits(n).expect("in range");
        }
        black_box(acc);
    });
    let ref_s = best_of(reps, || {
        let mut r = reference::BitReader::new(&bytes);
        let mut acc = 0u64;
        for &(_, n) in fields {
            acc ^= r.read_bits(n).expect("in range");
        }
        black_box(acc);
    });
    Row {
        name,
        new_s,
        ref_s,
        bits,
    }
}

/// Gorilla-shaped control dispatch: a stream of `0` / `10 + 14 bits` /
/// `11 + 13-bit header + 20 bits` records. The new engine dispatches with
/// one `peek_bits(2)` + `consume`; the reference reads bit by bit.
fn bench_dispatch(count: usize, reps: usize) -> Row {
    let mut w = BitWriter::new();
    let mut x = 0xD1B5_4A32_D192_ED03u64;
    let mut bits = 0u64;
    for _ in 0..count {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        match x % 3 {
            0 => {
                w.push_bit(false);
                bits += 1;
            }
            1 => {
                w.push_bits((0b10 << 14) | (x >> 50), 16);
                bits += 16;
            }
            _ => {
                w.push_bits((0b11 << 11) | (x & 0x7FF), 13);
                w.push_bits(x >> 44, 20);
                bits += 33;
            }
        }
    }
    let bytes = w.into_bytes();
    let new_s = best_of(reps, || {
        let mut r = BitReader::new(&bytes);
        let mut acc = 0u64;
        for _ in 0..count {
            let ctrl = r.peek_bits(2);
            if ctrl & 0b10 == 0 {
                r.consume(1).expect("in range");
            } else if ctrl == 0b10 {
                acc ^= r.read_bits(16).expect("in range");
            } else {
                acc ^= r.read_bits(13).expect("in range");
                acc ^= r.read_bits(20).expect("in range");
            }
        }
        black_box(acc);
    });
    let ref_s = best_of(reps, || {
        let mut r = reference::BitReader::new(&bytes);
        let mut acc = 0u64;
        for _ in 0..count {
            if !r.read_bit().expect("in range") {
                continue;
            }
            if !r.read_bit().expect("in range") {
                acc ^= r.read_bits(14).expect("in range");
            } else {
                acc ^= r.read_bits(5).expect("in range");
                acc ^= r.read_bits(6).expect("in range");
                acc ^= r.read_bits(20).expect("in range");
            }
        }
        black_box(acc);
    });
    Row {
        name: "dispatch gorilla-ctrl",
        new_s,
        ref_s,
        bits,
    }
}

fn main() {
    let fields = if quick() { 1 << 14 } else { 1 << 18 };
    let reps = if quick() { 5 } else { 20 };

    println!("bitstream engine vs byte-granular reference (best of {reps}):");
    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "program", "new MB/s", "ref MB/s", "speedup"
    );

    let mut worst_multibit = f64::INFINITY;
    for (name, lo, hi) in [
        ("push_bits n=1..=8", 1, 8),
        ("push_bits n=8..=24", 8, 24),
        ("push_bits n=24..=64", 24, 64),
    ] {
        let program = field_program(fields, lo, hi);
        let row = bench_push(name, &program, reps);
        worst_multibit = worst_multibit.min(row.ref_s / row.new_s);
        row.print();
    }
    for (name, lo, hi) in [
        ("read_bits n=1..=8", 1, 8),
        ("read_bits n=8..=24", 8, 24),
        ("read_bits n=24..=64", 24, 64),
    ] {
        let program = field_program(fields, lo, hi);
        let row = bench_read(name, &program, reps);
        worst_multibit = worst_multibit.min(row.ref_s / row.new_s);
        row.print();
    }

    // Single-bit and dispatch shapes (informational; the ≥2x acceptance
    // gate is the multi-bit rows above).
    let ones = field_program(fields, 1, 1);
    bench_push("push_bit only", &ones, reps).print();
    bench_read("read_bit-width fields", &ones, reps).print();
    bench_dispatch(fields, reps).print();

    println!("worst multi-bit speedup: {worst_multibit:.2}x (acceptance gate: >= 2x)");
    // The gate is real: the bench fails if the engine regresses on any
    // multi-bit program. Speedup is a same-process ratio, so uniform
    // machine slowdown cancels out; quick mode's microsecond loops get a
    // noise margin (the 2x acceptance number is the full-budget run, where
    // the engine measures 3.5x+).
    let floor = if quick() { 1.5 } else { 2.0 };
    if worst_multibit < floor {
        eprintln!("bitstream: engine fell below the {floor}x acceptance gate");
        std::process::exit(1);
    }
}

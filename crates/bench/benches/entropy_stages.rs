//! Substrate benches: the from-scratch entropy stages (LZ4, LZ77, Huffman,
//! zzip, range coder) that every codec builds on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcbench_entropy::lz77::Lz77Config;
use fcbench_entropy::{huffman, lz4, lz77, zzip, AdaptiveModel, RangeDecoder, RangeEncoder};
use std::time::Duration;

/// Bitshuffled-float-like test block: structured lanes + noise lanes.
fn test_block(n: usize) -> Vec<u8> {
    let mut x = 0x1234_5678_9ABC_DEF0u64;
    (0..n)
        .map(|i| {
            if i < n / 3 {
                0u8 // zero lanes (exponents)
            } else if i < 2 * n / 3 {
                (i % 7) as u8 // low-entropy lanes
            } else {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8 // noise lanes (mantissas)
            }
        })
        .collect()
}

fn bench_stages(c: &mut Criterion) {
    let data = test_block(64 * 1024);
    let mut group = c.benchmark_group("entropy_compress");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700));
    group.throughput(Throughput::Bytes(data.len() as u64));

    group.bench_function("lz4", |b| b.iter(|| lz4::compress(&data)));
    group.bench_function("lz77_fast", |b| {
        b.iter(|| lz77::compress(&data, Lz77Config::fast()))
    });
    group.bench_function("huffman", |b| b.iter(|| huffman::encode(&data)));
    group.bench_function("zzip", |b| b.iter(|| zzip::compress(&data)));
    group.finish();

    let mut group = c.benchmark_group("entropy_decompress");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700));
    group.throughput(Throughput::Bytes(data.len() as u64));
    let c_lz4 = lz4::compress(&data);
    group.bench_function("lz4", |b| {
        b.iter(|| lz4::decompress(&c_lz4, data.len()).expect("lz4"))
    });
    let c_zzip = zzip::compress(&data);
    group.bench_function("zzip", |b| {
        b.iter(|| zzip::decompress(&c_zzip).expect("zzip"))
    });
    group.finish();
}

fn bench_range_coder(c: &mut Criterion) {
    let mut x = 7u64;
    let symbols: Vec<usize> = (0..32_768)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 59) as usize).min(15)
        })
        .collect();
    let mut group = c.benchmark_group("range_coder");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700));
    group.throughput(Throughput::Elements(symbols.len() as u64));
    group.bench_with_input(BenchmarkId::new("encode", 16), &symbols, |b, syms| {
        b.iter(|| {
            let mut model = AdaptiveModel::new(16);
            let mut enc = RangeEncoder::new();
            for &s in syms {
                model.encode(&mut enc, s);
            }
            enc.finish()
        })
    });
    let encoded = {
        let mut model = AdaptiveModel::new(16);
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            model.encode(&mut enc, s);
        }
        enc.finish()
    };
    group.bench_with_input(BenchmarkId::new("decode", 16), &encoded, |b, bytes| {
        b.iter(|| {
            let mut model = AdaptiveModel::new(16);
            let mut dec = RangeDecoder::new(bytes);
            let mut sum = 0usize;
            for _ in 0..symbols.len() {
                sum += model.decode(&mut dec);
            }
            sum
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages, bench_range_coder);
criterion_main!(benches);

//! Codec-kernel microbench: the recorded numbers behind the word-level
//! rewrite of the slow codec kernels. Measures the blocked 8x8 bitshuffle
//! transpose (forward and inverse) against the retained bit-granular
//! `bitshuffle::reference`, and the word-at-a-time lz77 hash-chain match
//! finder against `lz77::reference`, on bitshuffle-shaped inputs. The
//! headline acceptance number is the worst gated speedup, which must stay
//! ≥ 2x.
//!
//! Runs without the Criterion harness (`harness = false`): it prints one
//! table and exits, sized for a CI smoke budget. `FCBENCH_QUICK_BENCH=1`
//! shrinks the iteration counts.

use fcbench_codecs_cpu::bitshuffle;
use fcbench_entropy::lz77::{self, Lz77Config};
use std::hint::black_box;
use std::time::Instant;

fn quick() -> bool {
    std::env::var_os("FCBENCH_QUICK_BENCH").is_some_and(|v| v != "0")
}

/// Best-of-N wall time for `f`, in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    name: &'static str,
    new_s: f64,
    ref_s: f64,
    bytes: u64,
    gated: bool,
}

impl Row {
    fn print(&self) {
        let rate = |s: f64| self.bytes as f64 / s / 1e6;
        println!(
            "{:<30} {:>10.1} {:>10.1} {:>7.2}x{}",
            self.name,
            rate(self.new_s),
            rate(self.ref_s),
            self.ref_s / self.new_s,
            if self.gated { "" } else { "  (info)" },
        );
    }
}

/// Smooth f64 ramp serialized LE — the float-data shape bitshuffle sees.
fn ramp_bytes(n_bytes: usize) -> Vec<u8> {
    let mut data = Vec::with_capacity(n_bytes);
    let mut i = 0u64;
    while data.len() < n_bytes {
        let v = 300.0 + ((i % 365) as f64) * 0.1;
        data.extend_from_slice(&v.to_le_bytes());
        i += 1;
    }
    data.truncate(n_bytes);
    data
}

fn bench_transpose(elems: usize, elem_bits: usize, reps: usize) -> (Row, Row) {
    let data = ramp_bytes(elems * elem_bits / 8);
    let mut out = Vec::new();
    let fwd_new = best_of(reps, || {
        bitshuffle::bit_transpose_into(&data, elems, elem_bits, &mut out);
        black_box(out.len());
    });
    let fwd_ref = best_of(reps, || {
        black_box(bitshuffle::reference::bit_transpose(&data, elems, elem_bits).len());
    });
    let t = bitshuffle::bit_transpose(&data, elems, elem_bits);
    let mut back = Vec::new();
    let inv_new = best_of(reps, || {
        bitshuffle::bit_untranspose_into(&t, elems, elem_bits, &mut back);
        black_box(back.len());
    });
    let inv_ref = best_of(reps, || {
        black_box(bitshuffle::reference::bit_untranspose(&t, elems, elem_bits).len());
    });
    let bytes = data.len() as u64;
    let (fname, iname) = if elem_bits == 32 {
        ("transpose f32 fwd", "transpose f32 inv")
    } else {
        ("transpose f64 fwd", "transpose f64 inv")
    };
    (
        Row {
            name: fname,
            new_s: fwd_new,
            ref_s: fwd_ref,
            bytes,
            gated: true,
        },
        Row {
            name: iname,
            new_s: inv_new,
            ref_s: inv_ref,
            bytes,
            gated: true,
        },
    )
}

fn bench_lz77(name: &'static str, input: &[u8], cfg: Lz77Config, reps: usize) -> (Row, Row) {
    let mut out = Vec::new();
    let c_new = best_of(reps, || {
        lz77::compress_into(input, cfg, &mut out);
        black_box(out.len());
    });
    let c_ref = best_of(reps, || {
        black_box(lz77::reference::compress(input, cfg).len());
    });
    let stream = lz77::compress(input, cfg);
    let d_new = best_of(reps, || {
        black_box(lz77::decompress(&stream, input.len()).expect("valid").len());
    });
    let d_ref = best_of(reps, || {
        black_box(
            lz77::reference::decompress(&stream, input.len())
                .expect("valid")
                .len(),
        );
    });
    let bytes = input.len() as u64;
    (
        Row {
            name,
            new_s: c_new,
            ref_s: c_ref,
            bytes,
            gated: true,
        },
        Row {
            name: "lz77 decompress",
            new_s: d_new,
            ref_s: d_ref,
            bytes,
            gated: false,
        },
    )
}

fn main() {
    let elems = if quick() { 8192 } else { 65_536 };
    let reps = if quick() { 5 } else { 20 };

    println!("codec kernels vs retained references (best of {reps}):");
    println!(
        "{:<30} {:>10} {:>10} {:>8}",
        "kernel", "new MB/s", "ref MB/s", "speedup"
    );

    let mut worst_gated = f64::INFINITY;
    let mut gate = |row: &Row| {
        if row.gated {
            worst_gated = worst_gated.min(row.ref_s / row.new_s);
        }
        row.print();
    };

    for elem_bits in [32usize, 64] {
        let (fwd, inv) = bench_transpose(elems, elem_bits, reps);
        gate(&fwd);
        gate(&inv);
    }

    // The lz77 kernel sees bit-transposed planes: long exponent runs plus
    // noisy mantissa lanes — the deep-chain profile bitshuffle-zstd pays
    // for. Bench exactly that shape at both effort levels.
    let raw = ramp_bytes(elems * 8);
    let shuffled = bitshuffle::bit_transpose(&raw, elems, 64);
    let deep = Lz77Config {
        window: 1 << 16,
        chain_depth: 128,
    };
    let (c, d) = bench_lz77("lz77 compress deep-chain", &shuffled, deep, reps);
    gate(&c);
    gate(&d);
    let (c, d) = bench_lz77("lz77 compress fast", &shuffled, Lz77Config::fast(), reps);
    gate(&c);
    gate(&d);

    println!("worst gated speedup: {worst_gated:.2}x (acceptance gate: >= 2x)");
    // The gate is real: the bench fails if a kernel regresses on any gated
    // row. Speedup is a same-process ratio, so uniform machine slowdown
    // cancels out; quick mode's small buffers get a noise margin (the 2x
    // acceptance number is the full-budget run).
    let floor = if quick() { 1.5 } else { 2.0 };
    if worst_gated < floor {
        eprintln!("kernels: a kernel fell below the {floor}x acceptance gate");
        std::process::exit(1);
    }
}

//! Pool-warmup smoke: the recorded number behind the execution-engine
//! refactor. For every registered codec, compare the **cold** first
//! pipeline call on a fresh `WorkerPool` (pays thread spawn, slot-buffer
//! growth, codec thread-local construction) against the **warm**
//! steady-state call on the same pool — the delta is exactly what the
//! per-call scoped threads used to re-pay on every single call.
//!
//! Runs without the Criterion harness (`harness = false`): it prints one
//! table and exits, sized for a CI smoke budget. `FCBENCH_QUICK_BENCH=1`
//! shrinks the input.

use fcbench_bench::codecs::paper_registry;
use fcbench_core::pool::{PoolConfig, WorkerPool};
use fcbench_core::{FloatData, Pipeline};
use fcbench_datasets::{find, generate};
use std::sync::Arc;
use std::time::Instant;

fn quick() -> bool {
    std::env::var_os("FCBENCH_QUICK_BENCH").is_some_and(|v| v != "0")
}

fn main() {
    let elems = if quick() { 1 << 12 } else { 1 << 16 };
    let warm_iters = if quick() { 3 } else { 10 };
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
    let spec = find("msg-bt").expect("catalog dataset");
    let data = generate(&spec, elems);

    println!(
        "pool warm-up delta ({} elements, {} workers, warm = best of {}):",
        elems, threads, warm_iters
    );
    println!(
        "{:<16} {:>12} {:>12} {:>8}",
        "codec", "cold ms", "warm ms", "delta"
    );
    let registry = paper_registry();
    let mut frame = Vec::new();
    let mut out = FloatData::scratch();
    for entry in registry.iter() {
        // A fresh pool per codec: the first call is genuinely cold. The
        // registry's thread_scalable gate applies — GPU-simulated codecs
        // run inline (their delta is pure buffer/thread-local warm-up).
        let pipeline = if entry.is_thread_scalable() {
            let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(threads)));
            Pipeline::with_pool(Arc::clone(entry.codec()), pool)
        } else {
            Pipeline::with_codec(Arc::clone(entry.codec()))
        }
        .block_elems(16 * 1024);

        let t0 = Instant::now();
        if pipeline.compress_into(&data, &mut frame).is_err() {
            println!("{:<16} {:>12} {:>12} {:>8}", entry.name(), "-", "-", "-");
            continue; // the paper's "-" cells
        }
        let cold = t0.elapsed().as_secs_f64();

        let mut warm = f64::INFINITY;
        for _ in 0..warm_iters {
            let t = Instant::now();
            pipeline
                .compress_into(&data, &mut frame)
                .expect("warm compress");
            warm = warm.min(t.elapsed().as_secs_f64());
        }
        pipeline
            .decompress_into(&frame, &mut out)
            .expect("decompress");
        assert_eq!(out.bytes(), data.bytes(), "{}: lossless", entry.name());

        println!(
            "{:<16} {:>12.3} {:>12.3} {:>7.2}x",
            entry.name(),
            cold * 1e3,
            warm * 1e3,
            cold / warm.max(f64::MIN_POSITIVE)
        );
    }
    println!(
        "\n(cold/warm > 1 is the spawn+allocation tax the persistent pool pays\n\
         once instead of per call; the zero-alloc steady state is asserted by\n\
         crates/bench/tests/alloc_into.rs)"
    );
}

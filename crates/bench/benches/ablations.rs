//! Ablation benches for the design choices DESIGN.md calls out:
//! Chimp's window size, bitshuffle's block size, SPDP's LZ window,
//! pFPC's thread/dimension alignment, and ndzip's hypercube size.
//! Each reports compression time; the companion ratio effect is printed
//! once per configuration (Criterion measures time, ratios are stable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fcbench_codecs_cpu::{Backend, Bitshuffle, Chimp, Ndzip, Pfpc, Spdp};
use fcbench_core::Compressor;
use fcbench_datasets::{find, generate};
use fcbench_entropy::lz77::Lz77Config;
use std::time::Duration;

const ELEMS: usize = 1 << 14;

fn report_ratio(label: &str, codec: &dyn Compressor, data: &fcbench_core::FloatData) {
    if let Ok(p) = codec.compress(data) {
        eprintln!(
            "ablation {label}: ratio {:.3}",
            data.bytes().len() as f64 / p.len() as f64
        );
    }
}

/// Chimp window: 1 (Gorilla-style) vs 128 (§3.5's sliding window), on DB
/// transaction data — where the window's value-revisit hits pay off
/// (Table 4: Chimp leads the DB domain).
fn ablation_chimp(c: &mut Criterion) {
    let spec = find("tpcxBB-store").expect("catalog dataset");
    let data = generate(&spec, ELEMS);
    let mut group = c.benchmark_group("ablation_chimp_window");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700));
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));
    for window in [1usize, 8, 128] {
        let codec = Chimp::with_window(window);
        report_ratio(&format!("chimp window={window}"), &codec, &data);
        group.bench_with_input(BenchmarkId::new("window", window), &data, |b, data| {
            b.iter(|| codec.compress(data).expect("compress"))
        });
    }
    group.finish();
}

/// Bitshuffle block size: the reference 4 KB L1 block vs the paper's 64 KB.
fn ablation_bitshuffle(c: &mut Criterion) {
    let spec = find("acs-wht").expect("catalog dataset");
    let data = generate(&spec, ELEMS);
    let mut group = c.benchmark_group("ablation_bitshuffle_block");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700));
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));
    for block in [4096usize, 65_536] {
        let codec = Bitshuffle::with_config(Backend::Lz4, block, 4);
        report_ratio(&format!("bitshuffle block={block}"), &codec, &data);
        group.bench_with_input(BenchmarkId::new("block", block), &data, |b, data| {
            b.iter(|| codec.compress(data).expect("compress"))
        });
    }
    group.finish();
}

/// SPDP LZ window: the §3.2 ratio/throughput trade-off.
fn ablation_spdp(c: &mut Criterion) {
    let spec = find("msg-bt").expect("catalog dataset");
    let data = generate(&spec, ELEMS);
    let mut group = c.benchmark_group("ablation_spdp_window");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700));
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));
    for (label, cfg) in [
        (
            "4K/d4",
            Lz77Config {
                window: 1 << 12,
                chain_depth: 4,
            },
        ),
        (
            "64K/d8",
            Lz77Config {
                window: 1 << 16,
                chain_depth: 8,
            },
        ),
        (
            "1M/d64",
            Lz77Config {
                window: 1 << 20,
                chain_depth: 64,
            },
        ),
    ] {
        let codec = Spdp::with_lz_config(cfg);
        report_ratio(&format!("spdp window={label}"), &codec, &data);
        group.bench_with_input(BenchmarkId::new("window", label), &data, |b, data| {
            b.iter(|| codec.compress(data).expect("compress"))
        });
    }
    group.finish();
}

/// pFPC thread count vs dimensionality (§3.6: chunking interacts with the
/// column interleave of multidimensional tables).
fn ablation_pfpc(c: &mut Criterion) {
    let spec = find("wesad-chest").expect("catalog dataset"); // 8 channels
    let data = generate(&spec, ELEMS);
    let mut group = c.benchmark_group("ablation_pfpc_threads");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700));
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));
    for threads in [1usize, 8, 32] {
        let codec = Pfpc::with_threads(threads);
        report_ratio(&format!("pfpc threads={threads}"), &codec, &data);
        group.bench_with_input(BenchmarkId::new("threads", threads), &data, |b, data| {
            b.iter(|| codec.compress(data).expect("compress"))
        });
    }
    group.finish();
}

/// ndzip hypercube size (default 4096 elements).
fn ablation_ndzip(c: &mut Criterion) {
    let spec = find("miranda3d").expect("catalog dataset");
    let data = generate(&spec, 1 << 15);
    let mut group = c.benchmark_group("ablation_ndzip_cube");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700));
    group.throughput(Throughput::Bytes(data.bytes().len() as u64));
    for cube in [64usize, 4096] {
        let codec = Ndzip::with_cube_elems(cube);
        report_ratio(&format!("ndzip cube={cube}"), &codec, &data);
        group.bench_with_input(BenchmarkId::new("cube", cube), &data, |b, data| {
            b.iter(|| codec.compress(data).expect("compress"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_chimp,
    ablation_bitshuffle,
    ablation_spdp,
    ablation_pfpc,
    ablation_ndzip
);
criterion_main!(benches);

//! Hard regression guarantee behind the zero-copy API: once buffers reach
//! steady state, the `compress_into`/`decompress_into` loops of gorilla and
//! chimp perform **zero** heap allocations. The counting allocator is
//! installed as this test binary's global allocator, so any hidden
//! allocation in the hot path fails the assertion.
//!
//! Runs without the libtest harness (`harness = false` in Cargo.toml): the
//! allocation counter is process-global, and libtest's own threads would
//! allocate inside the measured windows and fail the assertions spuriously.

use fcbench_bench::alloc_track::{self, CountingAllocator};
use fcbench_bench::codecs::{full_registry, paper_registry};
use fcbench_core::pool::{PoolConfig, WorkerPool};
use fcbench_core::{Domain, FloatData, Precision};
use fcbench_dbsim::{ChunkExec, ContainerWriter};
use fcbench_telemetry::{Registry, Snapshot};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    gorilla_and_chimp_steady_state_loops_do_not_allocate();
    println!("test gorilla_and_chimp_steady_state_loops_do_not_allocate ... ok");
    compress_into_reserves_once_even_on_a_fresh_buffer();
    println!("test compress_into_reserves_once_even_on_a_fresh_buffer ... ok");
    runner_reuses_buffers_across_repetitions();
    println!("test runner_reuses_buffers_across_repetitions ... ok");
    warm_pool_submits_do_not_allocate_or_spawn();
    println!("test warm_pool_submits_do_not_allocate_or_spawn ... ok");
    predictor_family_reserves_once_and_pools_cleanly();
    println!("test predictor_family_reserves_once_and_pools_cleanly ... ok");
    streaming_container_writes_do_not_allocate_per_record();
    println!("test streaming_container_writes_do_not_allocate_per_record ... ok");
    streaming_container_writer_memory_stays_bounded();
    println!("test streaming_container_writer_memory_stays_bounded ... ok");
    telemetry_records_and_warm_snapshots_do_not_allocate();
    println!("test telemetry_records_and_warm_snapshots_do_not_allocate ... ok");
}

/// The telemetry spine's overhead contract: recording through a
/// pre-resolved handle (counter bump, gauge set, scoped gauge guard,
/// histogram record/span) is a handful of relaxed atomics — **zero**
/// allocations — and a warm [`Registry::snapshot_into`] refreshes every
/// row in place without touching the allocator either. The warm-pool test
/// above doubles as the end-to-end proof: pool submits stay at zero
/// allocations *with* queue-wait/exec histograms recording on every job.
fn telemetry_records_and_warm_snapshots_do_not_allocate() {
    alloc_track::mark_installed();
    let registry = Registry::new();
    let counter = registry.counter("alloc.test.counter");
    let gauge = registry.gauge("alloc.test.gauge");
    let hist = registry.histogram("alloc.test.latency");

    let (allocs, _) = alloc_track::count_allocations(|| {
        for i in 0..1000u64 {
            counter.inc();
            gauge.set(i);
            let _held = gauge.inc_scoped();
            hist.record(i * 37 + 1);
            let _span = hist.start_span();
        }
    });
    assert_eq!(allocs, 0, "telemetry record hot path must not allocate");

    // First snapshot sizes the rows and bucket boxes; after that the
    // refresh is in-place.
    let mut snap = Snapshot::default();
    registry.snapshot_into(&mut snap);
    let (allocs, _) = alloc_track::count_allocations(|| {
        for _ in 0..10 {
            registry.snapshot_into(&mut snap);
        }
    });
    assert_eq!(allocs, 0, "warm snapshot_into must not allocate");
    assert_eq!(snap.counter("alloc.test.counter"), Some(1000));
    let latency = snap.histogram("alloc.test.latency").expect("histogram row");
    // 1000 explicit records + 1000 span drops.
    assert_eq!(latency.count(), 2000);
}

fn telemetry(n: usize) -> FloatData {
    let vals: Vec<f64> = (0..n)
        .map(|i| 20.0 + 5.0 * (i as f64 * 0.01).sin() + (i % 7) as f64 * 0.125)
        .collect();
    FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).unwrap()
}

fn gorilla_and_chimp_steady_state_loops_do_not_allocate() {
    alloc_track::mark_installed();
    let registry = paper_registry();
    let data = telemetry(4096);

    for name in ["gorilla", "chimp128"] {
        let codec = registry.get(name).expect("registered codec");
        let mut payload = Vec::new();
        let mut out = FloatData::scratch();

        // Warm-up: buffers grow to steady-state capacity, chimp's
        // thread-local window scratch is sized, and `out` takes the shape
        // of the data so later refills skip the descriptor clone.
        for _ in 0..2 {
            let n = codec.compress_into(&data, &mut payload).expect("compress");
            codec
                .decompress_into(&payload[..n], data.desc(), &mut out)
                .expect("decompress");
        }
        assert_eq!(out.bytes(), data.bytes(), "{name}: warm-up round trip");

        // Steady state: the whole loop must not touch the allocator.
        let (compress_allocs, _) = alloc_track::count_allocations(|| {
            for _ in 0..10 {
                std::hint::black_box(codec.compress_into(&data, &mut payload).expect("compress"));
            }
        });
        assert_eq!(
            compress_allocs, 0,
            "{name}: steady-state compress_into loop must not allocate"
        );

        let n = payload.len();
        let (decompress_allocs, _) = alloc_track::count_allocations(|| {
            for _ in 0..10 {
                codec
                    .decompress_into(&payload[..n], data.desc(), &mut out)
                    .expect("decompress");
            }
        });
        assert_eq!(
            decompress_allocs, 0,
            "{name}: steady-state decompress_into loop must not allocate"
        );
        assert_eq!(out.bytes(), data.bytes(), "{name}: still bit-exact");
    }
}

/// The bit-engine reserve guarantee: gorilla and chimp size their output
/// from a `DataDesc`-derived worst-case bit estimate before the first
/// word spills, so even a **fresh** (zero-capacity) buffer sees exactly
/// one allocation — the up-front reserve — and the accumulator's word
/// spills never regrow the vector mid-stream.
fn compress_into_reserves_once_even_on_a_fresh_buffer() {
    alloc_track::mark_installed();
    let registry = paper_registry();
    let data = telemetry(4096);

    for name in ["gorilla", "chimp128"] {
        let codec = registry.get(name).expect("registered codec");
        // Warm per-thread state (chimp's window scratch) with a throwaway
        // buffer so only the fresh output vector allocates below.
        let mut warm = Vec::new();
        codec.compress_into(&data, &mut warm).expect("compress");

        let mut payload = Vec::new();
        let (allocs, _) = alloc_track::count_allocations(|| {
            std::hint::black_box(codec.compress_into(&data, &mut payload).expect("compress"));
        });
        assert_eq!(
            allocs, 1,
            "{name}: a fresh-buffer compress_into must allocate exactly once \
             (the worst-case reserve), word spills must never regrow"
        );
        let cap = payload.capacity();
        codec.compress_into(&data, &mut payload).expect("compress");
        assert_eq!(
            cap,
            payload.capacity(),
            "{name}: steady-state calls must never resize the reserved buffer"
        );
    }
}

/// The execution-engine guarantee behind the worker-pool refactor: once a
/// pool is warm (slot buffers sized, worker thread-locals such as chimp's
/// window scratch built), a steady-state `submit`/`collect` round performs
/// **zero** heap allocations and **zero** thread spawns for gorilla and
/// chimp — the pool executes codec work, nothing else.
fn warm_pool_submits_do_not_allocate_or_spawn() {
    alloc_track::mark_installed();
    let registry = paper_registry();
    let data = telemetry(4096);

    // One worker: deterministic — every job (and chimp's thread-local
    // window state) lands on the same warm worker.
    let pool = WorkerPool::new(PoolConfig::with_threads(1).queue_depth(2));
    for name in ["gorilla", "chimp128"] {
        let codec = registry.get(name).expect("registered codec");
        let mut payload = Vec::new();
        let mut out = FloatData::scratch();

        // Warm-up rounds: slot buffers, worker thread-locals, output shape.
        for _ in 0..3 {
            let n = pool
                .run_compress(&codec, &data, &mut payload)
                .expect("compress");
            pool.run_decompress(&codec, &payload[..n], data.desc(), &mut out)
                .expect("decompress");
        }
        assert_eq!(out.bytes(), data.bytes(), "{name}: warm-up round trip");
        let spawned_before = pool.threads_spawned();

        let (compress_allocs, _) = alloc_track::count_allocations(|| {
            for _ in 0..10 {
                std::hint::black_box(
                    pool.run_compress(&codec, &data, &mut payload)
                        .expect("compress"),
                );
            }
        });
        assert_eq!(
            compress_allocs, 0,
            "{name}: steady-state pool compress submits must not allocate"
        );

        let n = payload.len();
        let (decompress_allocs, _) = alloc_track::count_allocations(|| {
            for _ in 0..10 {
                pool.run_decompress(&codec, &payload[..n], data.desc(), &mut out)
                    .expect("decompress");
            }
        });
        assert_eq!(
            decompress_allocs, 0,
            "{name}: steady-state pool decompress submits must not allocate"
        );
        assert_eq!(out.bytes(), data.bytes(), "{name}: still bit-exact");
        assert_eq!(
            pool.threads_spawned(),
            spawned_before,
            "{name}: submits must never spawn threads"
        );
    }

    // Worker-local state aside (gorilla keeps none), the guarantee holds on
    // a multi-worker pool too: slots are recycled LIFO, so a single
    // in-flight job reuses one warm slot whichever worker serves it.
    let pool = WorkerPool::new(PoolConfig::with_threads(2));
    let gorilla = registry.get("gorilla").expect("registered codec");
    let mut payload = Vec::new();
    for _ in 0..4 {
        pool.run_compress(&gorilla, &data, &mut payload)
            .expect("compress");
    }
    let (allocs, _) = alloc_track::count_allocations(|| {
        for _ in 0..10 {
            std::hint::black_box(
                pool.run_compress(&gorilla, &data, &mut payload)
                    .expect("compress"),
            );
        }
    });
    assert_eq!(
        allocs, 0,
        "gorilla: two-worker warm pool submits must not allocate"
    );
    assert_eq!(pool.threads_spawned(), 2);
}

/// The predictor codec family holds the same allocation discipline as the
/// bit-engine codecs: `compress_into` makes one worst-case reservation up
/// front (header + codes + full-width residuals + tail), so a fresh buffer
/// allocates exactly once, and warm-pool submits — DFCM's thread-local
/// table scratch included — touch neither the allocator nor the spawner.
fn predictor_family_reserves_once_and_pools_cleanly() {
    alloc_track::mark_installed();
    let registry = full_registry();
    let data = telemetry(4096);
    let pool = WorkerPool::new(PoolConfig::with_threads(1).queue_depth(2));

    for name in ["last-value", "last-stride", "dfcm"] {
        let codec = registry.get(name).expect("registered codec");

        // Fresh-buffer discipline. Warm per-thread state (dfcm's table and
        // touched-slot scratch) with a throwaway buffer first, so only the
        // fresh output vector allocates below.
        let mut warm = Vec::new();
        codec.compress_into(&data, &mut warm).expect("compress");
        let mut payload = Vec::new();
        let (allocs, _) = alloc_track::count_allocations(|| {
            std::hint::black_box(codec.compress_into(&data, &mut payload).expect("compress"));
        });
        assert_eq!(
            allocs, 1,
            "{name}: a fresh-buffer compress_into must allocate exactly once \
             (the worst-case reserve)"
        );

        // Warm-pool discipline: steady-state submits are allocation- and
        // spawn-free in both directions.
        let mut out = FloatData::scratch();
        for _ in 0..3 {
            let n = pool
                .run_compress(&codec, &data, &mut payload)
                .expect("compress");
            pool.run_decompress(&codec, &payload[..n], data.desc(), &mut out)
                .expect("decompress");
        }
        assert_eq!(out.bytes(), data.bytes(), "{name}: warm-up round trip");
        let spawned_before = pool.threads_spawned();

        let (compress_allocs, _) = alloc_track::count_allocations(|| {
            for _ in 0..10 {
                std::hint::black_box(
                    pool.run_compress(&codec, &data, &mut payload)
                        .expect("compress"),
                );
            }
        });
        assert_eq!(
            compress_allocs, 0,
            "{name}: steady-state pool compress submits must not allocate"
        );

        let n = payload.len();
        let (decompress_allocs, _) = alloc_track::count_allocations(|| {
            for _ in 0..10 {
                pool.run_decompress(&codec, &payload[..n], data.desc(), &mut out)
                    .expect("decompress");
            }
        });
        assert_eq!(
            decompress_allocs, 0,
            "{name}: steady-state pool decompress submits must not allocate"
        );
        assert_eq!(out.bytes(), data.bytes(), "{name}: still bit-exact");
        assert_eq!(
            pool.threads_spawned(),
            spawned_before,
            "{name}: submits must never spawn threads"
        );
    }
}

/// The FCDB2 streaming-writer guarantee: a warm inline container write
/// costs a fixed number of allocations per **column** (writer setup,
/// metadata vectors, the commit directory), never per **record** — chunk
/// payloads reuse one scratch buffer and record framing streams straight
/// to the sink. 4x the chunk records must not mean 4x the allocations.
fn streaming_container_writes_do_not_allocate_per_record() {
    alloc_track::mark_installed();
    let registry = paper_registry();
    const CHUNK: usize = 128;

    for name in ["gorilla", "chimp128"] {
        let codec = registry.get(name).expect("registered codec");
        let few = telemetry(64 * CHUNK);
        let many = telemetry(256 * CHUNK);

        // Warm-up: learn the sink capacity for the big container and size
        // any codec thread-locals (chimp's window scratch).
        let mut w =
            ContainerWriter::new(Vec::new(), ChunkExec::Inline(codec.as_ref())).expect("prologue");
        w.begin_column("t", Precision::Double, CHUNK).expect("col");
        w.write(many.bytes()).expect("write");
        let mut sink = w.finish().expect("finish");

        let mut count = |data: &FloatData| {
            sink.clear(); // keeps capacity: the sink itself stays warm
            let taken = std::mem::take(&mut sink);
            let (allocs, done) = alloc_track::count_allocations(|| {
                let mut w = ContainerWriter::new(taken, ChunkExec::Inline(codec.as_ref()))
                    .expect("prologue");
                w.begin_column("t", Precision::Double, CHUNK).expect("col");
                w.write(data.bytes()).expect("write");
                w.finish().expect("finish")
            });
            sink = done;
            allocs
        };
        let allocs_few = count(&few);
        let allocs_many = count(&many);
        assert!(
            allocs_many <= allocs_few + 24,
            "{name}: container writes must not allocate per record: \
             {allocs_few} allocs for 64 chunks vs {allocs_many} for 256"
        );
    }
}

/// The acceptance bound behind the FCDB2 refactor: streaming an 8 MiB
/// column through the pooled writer to disk peaks far below the body —
/// memory is the in-flight window (pages being compressed) plus framing
/// scratch, never the container.
fn streaming_container_writer_memory_stays_bounded() {
    alloc_track::mark_installed();
    let registry = paper_registry();
    let codec = registry.get("gorilla").expect("registered codec");
    let pool = WorkerPool::new(PoolConfig::with_threads(1).queue_depth(2));
    let data = telemetry(1 << 20); // 8 MiB of doubles
    let raw = data.bytes().len();
    let path = std::env::temp_dir().join(format!("fcbench-alloc-fcdb2-{}", std::process::id()));

    let file = std::fs::File::create(&path).expect("create");
    let (peak, written) = alloc_track::measure_peak(|| {
        let mut w = ContainerWriter::new(
            std::io::BufWriter::new(file),
            ChunkExec::Pooled(&pool, &codec),
        )
        .expect("prologue")
        .max_in_flight(2);
        w.begin_column("t", Precision::Double, 4096).expect("col");
        // Feed the body in page-sized slices, as an ingest stream would.
        for piece in data.bytes().chunks(4096 * 8) {
            w.write(piece).expect("write");
        }
        let bytes = w.bytes_written();
        w.finish().expect("finish");
        bytes
    });
    let on_disk = std::fs::metadata(&path).expect("meta").len();
    std::fs::remove_file(&path).ok();
    assert!(written > 0 && on_disk > 0);
    assert!(
        peak < raw / 8,
        "streaming an {raw}-byte body must stay bounded by the in-flight \
         window, peaked at {peak} bytes"
    );
}

fn runner_reuses_buffers_across_repetitions() {
    alloc_track::mark_installed();
    use fcbench_core::runner::{run_cell, RunConfig};
    let registry = paper_registry();
    let data = telemetry(2048);
    let codec = registry.get("gorilla").expect("registered codec");

    // Warm the allocator-side caches once.
    let cfg = RunConfig {
        repetitions: 3,
        verify: true,
    };
    let _ = run_cell(&codec, &data, cfg);

    // A multi-repetition cell allocates only its one-time buffers (payload,
    // scratch, measurement vec), not per repetition: the delta between 2
    // and 20 repetitions stays far below 18x the per-call warm-up cost.
    let (allocs_few, _) = alloc_track::count_allocations(|| {
        run_cell(
            &codec,
            &data,
            RunConfig {
                repetitions: 2,
                verify: true,
            },
        )
    });
    let (allocs_many, _) = alloc_track::count_allocations(|| {
        run_cell(
            &codec,
            &data,
            RunConfig {
                repetitions: 20,
                verify: true,
            },
        )
    });
    assert!(
        allocs_many <= allocs_few + 4,
        "repetitions must reuse buffers: {allocs_few} allocs at 2 reps vs \
         {allocs_many} at 20"
    );
}

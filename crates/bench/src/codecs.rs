//! The 14 benchmark rows (Table 1's methods; bitshuffle and nvCOMP each
//! contribute two), published as a [`CodecRegistry`] with the paper's
//! evaluation settings and per-entry capabilities:
//!
//! - **block-capable** entries are the eight methods Table 10 sweeps over
//!   block sizes ("algorithms that cannot be easily converted to work with
//!   blocks" are omitted);
//! - **thread-scalable** entries (the nine CPU methods) may be fanned out
//!   block-parallel across the persistent `WorkerPool` engine; the five
//!   GPU-simulated methods are left unmarked — their kernels already model
//!   device-wide parallelism, so registry-built pipelines run them inline;
//! - **scalable** entries carry the thread-count factories behind the
//!   Tables 7–8 scalability sweeps.

use fcbench_codecs_cpu::{
    Backend, Bitshuffle, Buff, Chimp, Fpzip, Gorilla, Ndzip, Pfpc, Predictor, Spdp,
};
use fcbench_codecs_gpu::{Gfc, Mpc, NdzipGpu, NvBitcomp, NvLz4};
use fcbench_core::{CodecRegistry, Compressor, RegistryEntry};

/// GFC's original input limit (bytes) — applied against the *paper* size
/// of each dataset, since the scaled instances stand in for the originals.
pub const GFC_INPUT_LIMIT: u64 = 512 * 1024 * 1024;

/// The full 14-method registry in the paper's table order
/// (pFPC, SPDP, fpzip, shf+LZ4, shf+zstd, ndzip-CPU, BUFF, Gorilla, Chimp,
/// GFC, MPC, nv-lz4, nv-bitcomp, ndzip-GPU).
///
/// GFC is constructed without its own byte limit — the harness gates it
/// on paper sizes instead (see [`GFC_INPUT_LIMIT`]).
pub fn paper_registry() -> CodecRegistry {
    CodecRegistry::new()
        .with(
            RegistryEntry::new(Pfpc::new())
                .block_capable()
                .thread_scalable()
                .scalable(|t| Box::new(Pfpc::with_threads(t)) as Box<dyn Compressor>),
        )
        .with(
            RegistryEntry::new(Spdp::new())
                .block_capable()
                .thread_scalable(),
        )
        .with(RegistryEntry::new(Fpzip::new()).thread_scalable())
        .with(
            RegistryEntry::new(Bitshuffle::lz4())
                .block_capable()
                .thread_scalable()
                .scalable(|t| {
                    Box::new(Bitshuffle::with_config(Backend::Lz4, 64 * 1024, t))
                        as Box<dyn Compressor>
                }),
        )
        .with(
            RegistryEntry::new(Bitshuffle::zzip())
                .block_capable()
                .thread_scalable()
                .scalable(|t| {
                    Box::new(Bitshuffle::with_config(Backend::Zzip, 64 * 1024, t))
                        as Box<dyn Compressor>
                }),
        )
        .with(
            RegistryEntry::new(Ndzip::new())
                .thread_scalable()
                .scalable(|t| Box::new(Ndzip::with_threads(t)) as Box<dyn Compressor>),
        )
        .with(RegistryEntry::new(Buff::new()).thread_scalable())
        .with(
            RegistryEntry::new(Gorilla::new())
                .block_capable()
                .thread_scalable(),
        )
        .with(
            RegistryEntry::new(Chimp::new())
                .block_capable()
                .thread_scalable(),
        )
        .with(Gfc::with_config(Default::default(), usize::MAX))
        .with(Mpc::new())
        .with(RegistryEntry::new(NvLz4::new()).block_capable())
        .with(RegistryEntry::new(NvBitcomp::new()).block_capable())
        .with(NdzipGpu::new())
}

/// [`paper_registry`] plus the single-predictor codec family (last-value,
/// last-stride, DFCM) appended after the paper's 14 rows.
///
/// The predictor rows are baseline attributions, not Table 1 methods, so
/// experiments that reproduce a specific paper table keep using
/// [`paper_registry`]; the throughput matrix, the container benches, and
/// the serving loop use this registry. All three are serial per block but
/// block-splittable, so they are block-capable and pool-dispatchable.
pub fn full_registry() -> CodecRegistry {
    let mut r = paper_registry();
    for p in [
        Predictor::last_value(),
        Predictor::last_stride(),
        Predictor::dfcm(),
    ] {
        r = r.with(RegistryEntry::new(p).block_capable().thread_scalable());
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::Platform;

    #[test]
    fn fourteen_rows_in_paper_order() {
        assert_eq!(
            paper_registry().names(),
            vec![
                "pfpc",
                "spdp",
                "fpzip",
                "bitshuffle-lz4",
                "bitshuffle-zstd",
                "ndzip-cpu",
                "buff",
                "gorilla",
                "chimp128",
                "gfc",
                "mpc",
                "nvcomp-lz4",
                "nvcomp-bitcomp",
                "ndzip-gpu",
            ]
        );
    }

    #[test]
    fn platform_split_matches_paper() {
        let r = paper_registry();
        assert_eq!(r.by_platform(Platform::Cpu).count(), 9);
        assert_eq!(r.by_platform(Platform::Gpu).count(), 5);
        for e in r.by_platform(Platform::Cpu) {
            assert_eq!(e.codec().info().platform, Platform::Cpu, "{}", e.name());
        }
        for e in r.by_platform(Platform::Gpu) {
            assert_eq!(e.codec().info().platform, Platform::Gpu, "{}", e.name());
        }
    }

    #[test]
    fn block_table_has_eight_codecs() {
        assert_eq!(paper_registry().block_capable().count(), 8);
    }

    #[test]
    fn the_nine_cpu_codecs_are_pool_dispatchable() {
        let r = paper_registry();
        let pooled: Vec<_> = r.thread_scalable().map(|e| e.name()).collect();
        assert_eq!(
            pooled,
            vec![
                "pfpc",
                "spdp",
                "fpzip",
                "bitshuffle-lz4",
                "bitshuffle-zstd",
                "ndzip-cpu",
                "buff",
                "gorilla",
                "chimp128",
            ]
        );
        // Every pool-dispatchable entry is a CPU method, and no GPU-simulated
        // method is pool-dispatchable (their kernels already model device
        // parallelism).
        for e in r.thread_scalable() {
            assert_eq!(e.codec().info().platform, Platform::Cpu, "{}", e.name());
        }
        for e in r.by_platform(Platform::Gpu) {
            assert!(!e.is_thread_scalable(), "{}", e.name());
        }
    }

    #[test]
    fn four_scalable_codecs() {
        let r = paper_registry();
        assert_eq!(
            r.scalable_names(),
            vec!["pfpc", "bitshuffle-lz4", "bitshuffle-zstd", "ndzip-cpu"]
        );
        // Factories honour the thread parameter without panicking.
        for name in r.scalable_names() {
            let _ = r.scaled(name, 1).unwrap();
            let _ = r.scaled(name, 16).unwrap();
        }
    }

    #[test]
    fn lookup_by_name_works_for_every_row() {
        let r = paper_registry();
        for name in r.names() {
            assert_eq!(r.get(name).unwrap().info().name, name);
        }
    }

    #[test]
    fn full_registry_appends_predictor_rows_after_paper_order() {
        let full = full_registry();
        let names = full.names();
        assert_eq!(names.len(), 17);
        assert_eq!(&names[..14], &paper_registry().names()[..]);
        assert_eq!(&names[14..], &["last-value", "last-stride", "dfcm"]);
        for name in ["last-value", "last-stride", "dfcm"] {
            let e = full.entry(name).unwrap();
            assert!(e.is_block_capable(), "{name}");
            assert!(e.is_thread_scalable(), "{name}");
        }
    }

    #[test]
    fn predictor_rows_round_trip_the_benchmark_corpus() {
        let full = full_registry();
        for ds in crate::perf_json::CORPUS {
            let spec = fcbench_datasets::find(ds).unwrap();
            let data = fcbench_datasets::generate(&spec, 4096);
            for name in ["last-value", "last-stride", "dfcm"] {
                let codec = full.get(name).unwrap();
                let c = codec.compress(&data).unwrap();
                let back = codec.decompress(&c, data.desc()).unwrap();
                assert_eq!(back.bytes(), data.bytes(), "{name} on {ds}");
            }
        }
    }
}

//! The 14 benchmark rows (Table 1's methods; bitshuffle and nvCOMP each
//! contribute two), constructed with the paper's evaluation settings.

use fcbench_codecs_cpu::{Backend, Bitshuffle, Buff, Chimp, Fpzip, Gorilla, Ndzip, Pfpc, Spdp};
use fcbench_codecs_gpu::{Gfc, Mpc, NdzipGpu, NvBitcomp, NvLz4};
use fcbench_core::Compressor;

/// GFC's original input limit (bytes) — applied against the *paper* size
/// of each dataset, since the scaled instances stand in for the originals.
pub const GFC_INPUT_LIMIT: u64 = 512 * 1024 * 1024;

/// The eight CPU-based methods in the paper's column order
/// (pFPC, SPDP, fpzip, shf+LZ4, shf+zstd, ndzip-CPU, BUFF, Gorilla, Chimp).
pub fn cpu_codecs() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Pfpc::new()),
        Box::new(Spdp::new()),
        Box::new(Fpzip::new()),
        Box::new(Bitshuffle::lz4()),
        Box::new(Bitshuffle::zzip()),
        Box::new(Ndzip::new()),
        Box::new(Buff::new()),
        Box::new(Gorilla::new()),
        Box::new(Chimp::new()),
    ]
}

/// The five GPU-based methods (GFC, MPC, nv-lz4, nv-bitcomp, ndzip-GPU).
///
/// GFC is constructed without its own byte limit — the harness gates it
/// on paper sizes instead (see [`GFC_INPUT_LIMIT`]).
pub fn gpu_codecs() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Gfc::with_config(Default::default(), usize::MAX)),
        Box::new(Mpc::new()),
        Box::new(NvLz4::new()),
        Box::new(NvBitcomp::new()),
        Box::new(NdzipGpu::new()),
    ]
}

/// All 14 rows in the paper's table order.
pub fn all_codecs() -> Vec<Box<dyn Compressor>> {
    let mut v = cpu_codecs();
    v.extend(gpu_codecs());
    v
}

/// Names of the CPU rows (for robustness-rate bookkeeping).
pub fn cpu_names() -> Vec<&'static str> {
    cpu_codecs().iter().map(|c| c.info().name).collect()
}

/// Names of the GPU rows.
pub fn gpu_names() -> Vec<&'static str> {
    gpu_codecs().iter().map(|c| c.info().name).collect()
}

/// The codecs Table 10 sweeps over block sizes ("algorithms that cannot be
/// easily converted to work with blocks" are omitted — the paper keeps 8).
pub fn block_capable_codecs() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Pfpc::new()),
        Box::new(Spdp::new()),
        Box::new(Bitshuffle::lz4()),
        Box::new(Bitshuffle::zzip()),
        Box::new(Gorilla::new()),
        Box::new(Chimp::new()),
        Box::new(NvLz4::new()),
        Box::new(NvBitcomp::new()),
    ]
}

/// A codec constructor parameterized by thread count.
pub type ScalableFactory = Box<dyn Fn(usize) -> Box<dyn Compressor>>;

/// Thread-scalable codec factories for Tables 7–8, by name.
pub fn scalable_factories() -> Vec<(&'static str, ScalableFactory)> {
    vec![
        (
            "pfpc",
            Box::new(|t| Box::new(Pfpc::with_threads(t)) as Box<dyn Compressor>),
        ),
        (
            "bitshuffle-lz4",
            Box::new(|t| {
                Box::new(Bitshuffle::with_config(Backend::Lz4, 64 * 1024, t)) as Box<dyn Compressor>
            }),
        ),
        (
            "bitshuffle-zstd",
            Box::new(|t| {
                Box::new(Bitshuffle::with_config(Backend::Zzip, 64 * 1024, t))
                    as Box<dyn Compressor>
            }),
        ),
        (
            "ndzip-cpu",
            Box::new(|t| Box::new(Ndzip::with_threads(t)) as Box<dyn Compressor>),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_rows_in_paper_order() {
        let names: Vec<&str> = all_codecs().iter().map(|c| c.info().name).collect();
        assert_eq!(
            names,
            vec![
                "pfpc",
                "spdp",
                "fpzip",
                "bitshuffle-lz4",
                "bitshuffle-zstd",
                "ndzip-cpu",
                "buff",
                "gorilla",
                "chimp128",
                "gfc",
                "mpc",
                "nvcomp-lz4",
                "nvcomp-bitcomp",
                "ndzip-gpu",
            ]
        );
    }

    #[test]
    fn platform_split_matches_paper() {
        use fcbench_core::Platform;
        for c in cpu_codecs() {
            assert_eq!(c.info().platform, Platform::Cpu, "{}", c.info().name);
        }
        for c in gpu_codecs() {
            assert_eq!(c.info().platform, Platform::Gpu, "{}", c.info().name);
        }
    }

    #[test]
    fn block_table_has_eight_codecs() {
        assert_eq!(block_capable_codecs().len(), 8);
    }

    #[test]
    fn four_scalable_codecs() {
        let names: Vec<&str> = scalable_factories().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["pfpc", "bitshuffle-lz4", "bitshuffle-zstd", "ndzip-cpu"]
        );
        // Factories honour the thread parameter without panicking.
        for (_, f) in scalable_factories() {
            let _ = f(1);
            let _ = f(16);
        }
    }
}

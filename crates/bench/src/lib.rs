//! # fcbench-bench
//!
//! The benchmark harness regenerating every table and figure of FCBench's
//! evaluation (§6). The `fcbench` binary drives it; Criterion benches in
//! `benches/` cover throughput, scaling, block sizes, and the design
//! ablations called out in DESIGN.md.

pub mod alloc_track;
pub mod codecs;
pub mod context;
pub mod experiments;
pub mod perf_json;
pub mod recommend;

pub use context::{build_context, Context, DEFAULT_ELEMS};

//! The paper's §7.3 recommendation map: "we have created a map to assist
//! users in selecting the most suitable compressors based on their
//! specific requirements."
//!
//! Recommendations are *derived from the measured matrix*, exactly as the
//! paper derives them from its rankings: storage-focused users get the
//! best per-domain harmonic-mean ratio; speed-focused users get the best
//! end-to-end wall time; general users get the best balance (geometric
//! mean of ratio rank and speed rank).

use crate::context::Context;
use fcbench_core::metrics::harmonic_mean;
use fcbench_core::{CellOutcome, Domain};
use fcbench_stats::rank_row;

/// What the user optimizes for (§7.3's three user classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// "users focused on storage reduction" — best compression ratio.
    Storage,
    /// "users needing fast speed" — best end-to-end wall time.
    Speed,
    /// "general users" — balanced ratio and speed.
    Balanced,
}

/// A recommendation with its supporting evidence.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub codec: String,
    /// Harmonic-mean ratio over the relevant datasets.
    pub ratio: f64,
    /// Mean end-to-end (compress + decompress) milliseconds.
    pub e2e_ms: f64,
}

/// Per-codec aggregates over one domain (or all domains).
fn aggregates(ctx: &Context, domain: Option<Domain>) -> Vec<Recommendation> {
    let m = &ctx.matrix;
    m.codecs
        .iter()
        .enumerate()
        .filter_map(|(ci, name)| {
            let mut ratios = Vec::new();
            let mut e2e = Vec::new();
            for (di, spec) in ctx.specs.iter().enumerate() {
                if domain.is_some_and(|d| spec.domain != d) {
                    continue;
                }
                if let CellOutcome::Ok(meas) = &m.cells[ci][di] {
                    ratios.push(meas.compression_ratio());
                    e2e.push((meas.e2e_comp_seconds() + meas.e2e_decomp_seconds()) * 1e3);
                }
            }
            // Codecs that failed on a domain are not recommendable there
            // (the paper drops GFC for its input-size limitation, Obs. 9).
            let expected: usize = ctx
                .specs
                .iter()
                .filter(|s| domain.is_none_or(|d| s.domain == d))
                .count();
            if ratios.len() < expected {
                return None;
            }
            Some(Recommendation {
                codec: name.clone(),
                ratio: harmonic_mean(&ratios)?,
                e2e_ms: e2e.iter().sum::<f64>() / e2e.len() as f64,
            })
        })
        .collect()
}

/// Recommend a codec for `domain` (or `None` = any data) under `priority`.
pub fn recommend(
    ctx: &Context,
    domain: Option<Domain>,
    priority: Priority,
) -> Option<Recommendation> {
    let aggs = aggregates(ctx, domain);
    if aggs.is_empty() {
        return None;
    }
    let ratios: Vec<f64> = aggs.iter().map(|a| a.ratio).collect();
    let times: Vec<f64> = aggs.iter().map(|a| a.e2e_ms).collect();
    let ratio_ranks = rank_row(&ratios, true); // higher ratio better
    let time_ranks = rank_row(&times, false); // lower time better

    let best_idx = match priority {
        Priority::Storage => {
            ratio_ranks
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite ranks"))?
                .0
        }
        Priority::Speed => {
            time_ranks
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite ranks"))?
                .0
        }
        Priority::Balanced => (0..aggs.len()).min_by(|&a, &b| {
            let ga = (ratio_ranks[a] * time_ranks[a]).sqrt();
            let gb = (ratio_ranks[b] * time_ranks[b]).sqrt();
            ga.partial_cmp(&gb).expect("finite ranks")
        })?,
    };
    Some(aggs[best_idx].clone())
}

/// The full §7.3 map as printable text.
pub fn recommendation_map(ctx: &Context) -> String {
    let mut out = String::from("Recommendation map (S7.3), derived from the measured matrix:\n\n");
    out.push_str("for users focused on storage reduction:\n");
    for domain in Domain::ALL {
        if let Some(r) = recommend(ctx, Some(domain), Priority::Storage) {
            out.push_str(&format!(
                "  {:<4} -> {:<16} (ratio {:.3})\n",
                domain.label(),
                r.codec,
                r.ratio
            ));
        }
    }
    out.push_str("paper: fpzip (HPC), nvCOMP::LZ4 (TS), bitshuffle+zstd (OBS), Chimp (DB)\n\n");

    out.push_str("for users needing fast speed (end-to-end):\n");
    if let Some(r) = recommend(ctx, None, Priority::Speed) {
        out.push_str(&format!(
            "  any  -> {:<16} ({:.1} ms avg end-to-end)\n",
            r.codec, r.e2e_ms
        ));
    }
    out.push_str("paper: bitshuffle::LZ4/zstd, MPC, ndzip-CPU/GPU (short end-to-end times)\n\n");

    out.push_str("for general users (balanced):\n");
    if let Some(r) = recommend(ctx, None, Priority::Balanced) {
        out.push_str(&format!(
            "  any  -> {:<16} (ratio {:.3}, {:.1} ms)\n",
            r.codec, r.ratio, r.e2e_ms
        ));
    }
    out.push_str(
        "paper: bitshuffle::zstd and MPC for balanced performance; bitshuffle\n\
         methods rank top overall for robustness and CPU-hardware cost\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::runner::{CellOutcome, RunMatrix};
    use fcbench_core::Measurement;
    use fcbench_datasets::catalog;

    /// Build a tiny synthetic context with controlled ratios/times.
    fn fake_ctx() -> Context {
        let specs: Vec<_> = catalog().into_iter().take(4).collect(); // all HPC
        let codecs = vec!["fast-weak".to_string(), "slow-strong".to_string()];
        let mk = |ratio: f64, secs: f64| {
            CellOutcome::Ok(Measurement {
                orig_bytes: 1_000_000,
                comp_bytes: (1_000_000.0 / ratio) as u64,
                comp_seconds: secs,
                decomp_seconds: secs,
                comp_transfer_seconds: 0.0,
                decomp_transfer_seconds: 0.0,
            })
        };
        let cells = vec![
            (0..4).map(|_| mk(1.1, 0.001)).collect(),
            (0..4).map(|_| mk(2.0, 0.5)).collect(),
        ];
        Context {
            registry: fcbench_core::CodecRegistry::new(),
            datasets: Vec::new(),
            matrix: RunMatrix {
                codecs,
                datasets: specs.iter().map(|s| s.name.to_string()).collect(),
                cells,
            },
            specs,
            pool: std::sync::Arc::new(fcbench_core::WorkerPool::new(
                fcbench_core::PoolConfig::with_threads(1),
            )),
        }
    }

    #[test]
    fn storage_priority_picks_the_strong_codec() {
        let ctx = fake_ctx();
        let r = recommend(&ctx, Some(Domain::Hpc), Priority::Storage).unwrap();
        assert_eq!(r.codec, "slow-strong");
        assert!((r.ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speed_priority_picks_the_fast_codec() {
        let ctx = fake_ctx();
        let r = recommend(&ctx, Some(Domain::Hpc), Priority::Speed).unwrap();
        assert_eq!(r.codec, "fast-weak");
        assert!(r.e2e_ms < 10.0);
    }

    #[test]
    fn unknown_domain_yields_nothing() {
        let ctx = fake_ctx();
        // The fake context only holds HPC datasets.
        assert!(recommend(&ctx, Some(Domain::Database), Priority::Storage).is_none());
    }

    #[test]
    fn map_renders_paper_reference_lines() {
        let ctx = fake_ctx();
        let map = recommendation_map(&ctx);
        assert!(map.contains("storage reduction"));
        assert!(map.contains("paper:"));
    }
}

//! Peak-allocation tracking for the Figure 10 memory-footprint experiment.
//!
//! A counting wrapper around the system allocator. The `fcbench` binary
//! installs it as the global allocator; library tests that run without it
//! see zeros and skip footprint assertions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counting allocator: tracks live and peak bytes.
pub struct CountingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static CALLS: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

// SAFETY: delegates all allocation to `System`; only bookkeeping is added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            CALLS.fetch_add(1, Ordering::Relaxed);
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            CALLS.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let live = LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Mark the counting allocator as installed (called by the binary).
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Is peak tracking active in this process?
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Reset the peak to the current live size.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Live bytes right now.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Run `f`, returning `(peak_delta_bytes, result)` — the extra memory the
/// call needed beyond what was live at entry. Zero if not installed.
pub fn measure_peak<R>(f: impl FnOnce() -> R) -> (usize, R) {
    if !is_installed() {
        return (0, f());
    }
    let base = live_bytes();
    reset_peak();
    let r = f();
    let peak = peak_bytes().saturating_sub(base);
    (peak, r)
}

/// Total `alloc`/`realloc` calls observed so far in this process.
pub fn alloc_calls() -> usize {
    CALLS.load(Ordering::Relaxed)
}

/// Run `f`, returning `(allocation_calls, result)` — how many times `f`
/// (and anything else running concurrently) hit the allocator. Zero if the
/// counting allocator is not installed. This is the regression number behind
/// the zero-allocation guarantee of the steady-state `compress_into` loops.
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    if !is_installed() {
        return (0, f());
    }
    let before = alloc_calls();
    let r = f();
    (alloc_calls() - before, r)
}

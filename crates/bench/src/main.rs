//! `fcbench` — regenerate every table and figure of the FCBench paper.
//!
//! ```text
//! fcbench all                 run every experiment
//! fcbench table4|table5|table6|table7|table9|table10|table11
//! fcbench fig5|fig6|fig7|fig9|fig10|fig11
//! fcbench dzip                the §4.5 neural-compression experiment
//! fcbench bench-json          write the machine-readable perf snapshot
//! fcbench --elems N <exp>     scaled dataset size (default 131072)
//! fcbench --reps N <exp>      timing repetitions per cell (default 1)
//! fcbench --out PATH          snapshot path for bench-json (default BENCH_8.json)
//! ```

use fcbench_bench::alloc_track::{mark_installed, CountingAllocator};
use fcbench_bench::{build_context, experiments, Context, DEFAULT_ELEMS};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

struct Opts {
    elems: usize,
    reps: usize,
    out: String,
    experiments: Vec<String>,
}

/// PR number stamped into perf snapshots; the default snapshot path is
/// `BENCH_<PERF_PR>.json`.
const PERF_PR: u32 = 8;

fn parse_args() -> Opts {
    let mut elems = DEFAULT_ELEMS;
    let mut reps = 1usize;
    let mut out = format!("BENCH_{PERF_PR}.json");
    let mut experiments = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--elems" => {
                elems = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--elems needs a number"));
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"));
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    Opts {
        elems,
        reps,
        out,
        experiments,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fcbench: {msg}");
    std::process::exit(2);
}

fn print_usage() {
    println!(
        "usage: fcbench [--elems N] [--reps N] [--out PATH] <experiment>...\n\
         experiments: all, table4, fig5, fig6, fig7, table5, fig9, table6,\n\
         table7 (incl. table8), table9, table10, table11, fig10, fig11, dzip,\n\
         recommend (the S7.3 selection map),\n\
         bench-json (machine-readable codec throughput snapshot)"
    );
}

/// Experiments that share the full measurement matrix.
const MATRIX_EXPERIMENTS: [&str; 8] = [
    "table4",
    "fig5",
    "fig6",
    "fig7",
    "table5",
    "fig9",
    "table6",
    "recommend",
];

fn main() {
    mark_installed();
    let opts = parse_args();

    let wanted: Vec<String> = if opts.experiments.iter().any(|e| e == "all") {
        let mut v: Vec<String> = MATRIX_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
        // "recommend" is already in MATRIX_EXPERIMENTS; adding it here would
        // run the S7.3 map twice.
        v.extend(
            [
                "table7", "table9", "table10", "table11", "fig10", "fig11", "dzip",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        v
    } else {
        opts.experiments.clone()
    };

    let needs_matrix = wanted
        .iter()
        .any(|e| MATRIX_EXPERIMENTS.contains(&e.as_str()));
    let needs_datasets = wanted.iter().any(|e| e == "table9" || e == "table10");

    let mut ctx: Option<Context> = None;
    if needs_matrix || needs_datasets {
        eprintln!(
            "fcbench: generating 33 datasets at ~{} elements and running the 14x33 matrix...",
            opts.elems
        );
        ctx = Some(build_context(opts.elems, opts.reps));
    }

    for exp in &wanted {
        let block = match exp.as_str() {
            "table4" => experiments::table4(ctx.as_ref().expect("matrix built")),
            "fig5" => experiments::fig5(ctx.as_ref().expect("matrix built")),
            "fig6" => experiments::fig6(ctx.as_ref().expect("matrix built")),
            "fig7" => experiments::fig7(ctx.as_ref().expect("matrix built")),
            "table5" => experiments::table5(ctx.as_ref().expect("matrix built")),
            "fig9" => experiments::fig9(ctx.as_ref().expect("matrix built")),
            "table6" => experiments::table6(ctx.as_ref().expect("matrix built")),
            "table7" | "table8" => experiments::tables7_8(opts.elems, opts.reps.max(2)),
            "table9" => {
                let c = ctx.as_ref().expect("datasets built");
                experiments::table9(&c.specs, &c.datasets)
            }
            "table10" => experiments::table10(ctx.as_ref().expect("datasets built")),
            "table11" => experiments::table11(opts.elems, 64 * 1024 / 8),
            "fig10" => experiments::fig10(opts.elems),
            "fig11" => experiments::fig11(opts.elems),
            "dzip" => experiments::dzip_experiment(16384),
            "recommend" => {
                fcbench_bench::recommend::recommendation_map(ctx.as_ref().expect("matrix built"))
            }
            "bench-json" => {
                let json = fcbench_bench::perf_json::write_snapshot(
                    &opts.out, PERF_PR, opts.elems, opts.reps,
                )
                .unwrap_or_else(|e| die(&format!("bench-json: cannot write {}: {e}", opts.out)));
                format!("wrote {}\n{json}", opts.out)
            }
            other => {
                eprintln!("fcbench: unknown experiment {other:?}");
                print_usage();
                std::process::exit(2);
            }
        };
        println!("{}\n{}", "=".repeat(78), block);
    }
}

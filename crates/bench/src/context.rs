//! Shared benchmark context: generated datasets plus the lazily-built
//! (codec × dataset) measurement matrix that most tables and figures
//! consume.

use crate::codecs::{paper_registry, GFC_INPUT_LIMIT};
use fcbench_core::pool::{PoolConfig, WorkerPool};
use fcbench_core::runner::{run_cell_pooled, CellOutcome, NamedData, RunConfig, RunMatrix};
use fcbench_core::{CodecRegistry, Platform};
use fcbench_datasets::{catalog, generate, DatasetSpec};
use std::sync::Arc;

/// Default elements per scaled dataset.
pub const DEFAULT_ELEMS: usize = 1 << 17;

/// Worker threads for the campaign's shared execution engine: enough to
/// keep cells moving, capped so measurement hosts are not oversubscribed.
pub fn engine_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Datasets + matrix for one benchmark campaign, plus the codec registry
/// every experiment consumes (the single source of codec instances) and
/// the shared [`WorkerPool`] engine every cell executed on.
pub struct Context {
    pub registry: CodecRegistry,
    pub specs: Vec<DatasetSpec>,
    pub datasets: Vec<NamedData>,
    pub matrix: RunMatrix,
    pub pool: Arc<WorkerPool>,
}

impl Context {
    /// Names of the registered codecs targeting `platform`.
    pub fn platform_names(&self, platform: Platform) -> Vec<&'static str> {
        self.registry
            .by_platform(platform)
            .map(|e| e.name())
            .collect()
    }
}

/// Generate all datasets and run the full 14 × 33 matrix **on the
/// persistent worker-pool engine**: every cell's compress/decompress call
/// is a job submitted to one shared warm [`WorkerPool`], so cells measure
/// steady-state codec work (worker scratch and codec thread-locals persist
/// across the whole campaign) rather than thread spawn and allocator
/// churn. Payload bytes are identical to the direct codec calls — matrix
/// jobs are not block-decomposed.
///
/// GFC is gated on the *paper* byte size of each dataset (its original
/// 512 MB device-buffer limit): scaled instances stand in for originals,
/// so the limit must apply to what they represent — this reproduces
/// exactly the Table 4 dash pattern.
pub fn build_context(target_elems: usize, repetitions: usize) -> Context {
    let specs = catalog();
    let datasets: Vec<NamedData> = specs
        .iter()
        .map(|s| NamedData::new(s.name, generate(s, target_elems)))
        .collect();

    let registry = paper_registry();
    let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(engine_threads())));
    let cfg = RunConfig {
        repetitions,
        verify: true,
    };
    let mut cells = Vec::with_capacity(registry.len());
    for entry in registry.iter() {
        let name = entry.name();
        let mut row = Vec::with_capacity(datasets.len());
        for (spec, ds) in specs.iter().zip(datasets.iter()) {
            if name == "gfc" && spec.paper_bytes > GFC_INPUT_LIMIT {
                row.push(CellOutcome::Failed(format!(
                    "gfc: original dataset is {} bytes (> 512 MB device limit)",
                    spec.paper_bytes
                )));
                continue;
            }
            row.push(run_cell_pooled(&pool, entry.codec(), &ds.data, cfg));
        }
        cells.push(row);
    }
    let matrix = RunMatrix {
        codecs: registry.names().iter().map(|n| n.to_string()).collect(),
        datasets: datasets.iter().map(|d| d.name.clone()).collect(),
        cells,
    };
    Context {
        registry,
        specs,
        datasets,
        matrix,
        pool,
    }
}

/// Column-aligned text table helper used by every experiment printer.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Left-align first column, right-align numbers.
            if i == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let headers = vec!["name".to_string(), "cr".to_string()];
        let rows = vec![
            vec!["a-long-name".to_string(), "1.25".to_string()],
            vec!["b".to_string(), "10.00".to_string()],
        ];
        let t = render_table(&headers, &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines equal length.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[2].starts_with("a-long-name"));
    }

    // Full-context construction is covered by the integration tests
    // (tests/matrix.rs) at a reduced element count.
}

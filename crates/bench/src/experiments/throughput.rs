//! Throughput & wall-time experiments: Table 5 / Figure 8, Figure 9,
//! Table 6.

use crate::context::{render_table, Context};
use fcbench_core::metrics::arithmetic_mean;
use fcbench_core::CellOutcome;
use fcbench_roofline::MachineModel;

struct PerCodec {
    name: String,
    avg_ct: f64,
    avg_dt: f64,
    avg_e2e_comp_ms: f64,
    avg_e2e_decomp_ms: f64,
}

fn collect(ctx: &Context) -> Vec<PerCodec> {
    let m = &ctx.matrix;
    m.codecs
        .iter()
        .enumerate()
        .map(|(ci, name)| {
            let mut cts = Vec::new();
            let mut dts = Vec::new();
            let mut e2c = Vec::new();
            let mut e2d = Vec::new();
            for di in 0..m.datasets.len() {
                if let CellOutcome::Ok(meas) = &m.cells[ci][di] {
                    cts.push(meas.compression_throughput_gbs());
                    dts.push(meas.decompression_throughput_gbs());
                    e2c.push(meas.e2e_comp_seconds() * 1e3);
                    e2d.push(meas.e2e_decomp_seconds() * 1e3);
                }
            }
            PerCodec {
                name: name.clone(),
                avg_ct: arithmetic_mean(&cts).unwrap_or(f64::NAN),
                avg_dt: arithmetic_mean(&dts).unwrap_or(f64::NAN),
                avg_e2e_comp_ms: arithmetic_mean(&e2c).unwrap_or(f64::NAN),
                avg_e2e_decomp_ms: arithmetic_mean(&e2d).unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// Roofline-modelled device throughput for a GPU codec (GB/s): the
/// simulator executes kernels on host cores, so device-scale magnitudes
/// come from the documented RTX 6000 model — time is the larger of the
/// memory-traffic and compute terms of the codec's op profile, with a
/// 16x divergence penalty for dictionary kernels (Observation 3's cause).
fn modelled_device_gbs(ctx: &Context, codec_idx: usize) -> Option<f64> {
    let machine = MachineModel::rtx_6000();
    // Registry order matches matrix row order by construction.
    let codec = ctx.registry.iter().nth(codec_idx)?.codec();
    if codec.info().platform != fcbench_core::Platform::Gpu {
        return None;
    }
    let divergent = codec.info().class == fcbench_core::CodecClass::Dictionary;
    let peak_ops = machine.attainable(f64::INFINITY) * 1e9 / if divergent { 16.0 } else { 1.0 };
    let dram = machine.dram_roof() * 1e9;
    let mut rates = Vec::new();
    for spec in &ctx.specs {
        let desc =
            fcbench_core::DataDesc::new(spec.precision, spec.scaled_dims(1 << 17), spec.domain)
                .expect("catalog dims are valid");
        if let Some(p) = codec.op_profile(&desc) {
            let t = (p.bytes_moved as f64 / dram).max(p.int_ops.max(p.float_ops) as f64 / peak_ops);
            rates.push(desc.byte_len() as f64 / t / 1e9);
        }
    }
    arithmetic_mean(&rates)
}

/// Table 5 / Figure 8: average compression and decompression throughput.
pub fn table5(ctx: &Context) -> String {
    let per = collect(ctx);
    let headers = vec![
        "method".to_string(),
        "avg comp GB/s".to_string(),
        "avg decomp GB/s".to_string(),
        "modelled device GB/s".to_string(),
    ];
    let rows: Vec<Vec<String>> = per
        .iter()
        .enumerate()
        .map(|(ci, p)| {
            vec![
                p.name.clone(),
                format!("{:.3}", p.avg_ct),
                format!("{:.3}", p.avg_dt),
                modelled_device_gbs(ctx, ci).map_or("-".into(), |g| format!("{g:.1}")),
            ]
        })
        .collect();
    let mut out = format!(
        "Table 5 / Figure 8: average (de)compression throughput\n\
         (cells executed as jobs on the campaign's shared {}-worker engine;\n\
         workers stay warm across the whole matrix)\n",
        ctx.pool.threads()
    );
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\npaper shape: GPU methods fastest (nv-bitcomp, ndzip-gpu lead); serial\n\
         Chimp/Gorilla/fpzip slowest; parallel CPU methods (bitshuffle, ndzip-cpu)\n\
         in between; decompression >= compression for dictionary methods.\n",
    );

    // Median GPU-vs-CPU gap (Observation 3).
    let cpu = ctx.platform_names(fcbench_core::Platform::Cpu);
    let gpu = ctx.platform_names(fcbench_core::Platform::Gpu);
    let med = |names: &[&str], sel: fn(&PerCodec) -> f64| -> f64 {
        let mut v: Vec<f64> = per
            .iter()
            .filter(|p| names.contains(&p.name.as_str()))
            .map(sel)
            .filter(|x| x.is_finite())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if v.is_empty() {
            f64::NAN
        } else {
            v[v.len() / 2]
        }
    };
    let gap = med(&gpu, |p| p.avg_ct) / med(&cpu, |p| p.avg_ct);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!(
        "\nmeasured median GPU/CPU compression-throughput ratio: {gap:.1}x on a\n\
         {cores}-core host (the simulator executes kernels on host cores; the paper\n\
         measures ~350x on real hardware). The 'modelled device GB/s' column holds\n\
         the RTX 6000 roofline magnitudes: nv-bitcomp fastest, nv-lz4 divergence-\n\
         limited — the paper's Observation 3 ordering.\n"
    ));
    out
}

/// Figure 9: rD = (CT − DT) / CT per method.
pub fn fig9(ctx: &Context) -> String {
    let per = collect(ctx);
    let headers = vec!["method".to_string(), "rD".to_string()];
    let rows: Vec<Vec<String>> = per
        .iter()
        .map(|p| {
            let rd = if p.avg_ct == 0.0 {
                f64::NAN
            } else {
                (p.avg_ct - p.avg_dt) / p.avg_ct
            };
            vec![p.name.clone(), format!("{rd:+.2}")]
        })
        .collect();
    let mut out = String::from("Figure 9: rD = (CT - DT)/CT; positive = compression faster\n");
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\npaper shape: dictionary methods decompress much faster than they\n\
         compress (nvcomp-lz4 strongly negative, chimp/gorilla negative);\n\
         delta & Lorenzo methods are balanced (|rD| small).\n",
    );
    out
}

/// Table 6: end-to-end wall time including modelled host↔device copies.
pub fn table6(ctx: &Context) -> String {
    let per = collect(ctx);
    let headers = vec![
        "method".to_string(),
        "avg comp ms".to_string(),
        "avg decomp ms".to_string(),
    ];
    let rows: Vec<Vec<String>> = per
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.1}", p.avg_e2e_comp_ms),
                format!("{:.1}", p.avg_e2e_decomp_ms),
            ]
        })
        .collect();
    let mut out = String::from(
        "Table 6: end-to-end wall time (ms), including modelled host<->device copies\n",
    );
    out.push_str(&render_table(&headers, &rows));

    // The paper's headline: transfer cost narrows the GPU advantage;
    // quantify the share of GPU wall time spent on transfers.
    let m = &ctx.matrix;
    let gpu = ctx.platform_names(fcbench_core::Platform::Gpu);
    let mut transfer = 0.0;
    let mut total = 0.0;
    for (ci, name) in m.codecs.iter().enumerate() {
        if !gpu.contains(&name.as_str()) {
            continue;
        }
        for di in 0..m.datasets.len() {
            if let CellOutcome::Ok(meas) = &m.cells[ci][di] {
                transfer += meas.comp_transfer_seconds;
                total += meas.e2e_comp_seconds();
            }
        }
    }
    out.push_str(&format!(
        "\nGPU compression wall time spent in host<->device copies: {:.0}%\n\
         against host-measured kernel times.\n",
        100.0 * transfer / total.max(f64::MIN_POSITIVE)
    ));

    // Observation 5 proper: at *device* rates the copies dominate. Compare
    // modelled transfer time with modelled kernel time for a 1 MB page.
    let machine = MachineModel::rtx_6000();
    let bytes = 1_000_000.0;
    let kernel_s = 2.0 * bytes / (machine.dram_roof() * 1e9); // read+write at DRAM roof
    let pcie_s = 2.0 * bytes / 12.0e9 + 2.0 * 10e-6; // h2d + d2h
    out.push_str(&format!(
        "\nat modelled device rates (1 MB page): kernel {:.1} us vs transfers {:.1} us\n\
         -> copies are {:.0}% of GPU end-to-end time (paper Observation 5: 'the\n\
         overhead of host-to-device memory copy is nonnegligible' — bitshuffle on\n\
         the CPU becomes comparable to GFC/MPC, and ndzip-CPU beats ndzip-GPU)\n",
        kernel_s * 1e6,
        pcie_s * 1e6,
        100.0 * pcie_s / (pcie_s + kernel_s)
    ));
    out
}

//! One module per reproduced table/figure; each returns a printable block.

pub mod blocks_exp;
pub mod dimensions;
pub mod dzip_exp;
pub mod memory;
pub mod query;
pub mod ratios;
pub mod roofline_exp;
pub mod scaling_exp;
pub mod throughput;

pub use blocks_exp::table10;
pub use dimensions::table9;
pub use dzip_exp::dzip_experiment;
pub use memory::fig10;
pub use query::table11;
pub use ratios::{fig5, fig6, fig7, table4};
pub use roofline_exp::fig11;
pub use scaling_exp::tables7_8;
pub use throughput::{fig9, table5, table6};

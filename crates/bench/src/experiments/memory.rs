//! Figure 10: memory footprint during compression vs input size — plus the
//! execution engine's streaming counterpart: how much memory the
//! `FrameWriter` pins when the compressed frame is never materialized.

use crate::alloc_track;
use crate::codecs::paper_registry;
use crate::context::render_table;
use fcbench_core::pool::{PoolConfig, WorkerPool};
use fcbench_core::Pipeline;
use fcbench_datasets::{find, generate};
use std::sync::Arc;

/// Measure peak working memory of each codec compressing `miranda3d`-like
/// data at several input sizes.
pub fn fig10(base_elems: usize) -> String {
    if !alloc_track::is_installed() {
        return "Figure 10: peak-allocation tracking requires the fcbench binary\n\
                (the counting allocator is not installed in this process)\n"
            .to_string();
    }
    let spec = find("miranda3d").expect("catalog dataset");
    let sizes = [base_elems / 4, base_elems / 2, base_elems, base_elems * 2];

    let mut headers = vec!["method".to_string()];
    for &n in &sizes {
        headers.push(format!("{:.1} MB in", (n * 4) as f64 / 1e6));
    }

    let mut rows = Vec::new();
    let mut buff_ratio = 0.0f64;
    let mut median_ratios: Vec<f64> = Vec::new();
    let registry = paper_registry();
    for entry in registry.iter() {
        let codec = entry.codec();
        let name = entry.name().to_string();
        let mut row = vec![name.clone()];
        let mut last_ratio = f64::NAN;
        for &n in &sizes {
            let data = generate(&spec, n);
            let input = data.bytes().len();
            let (peak, result) = alloc_track::measure_peak(|| codec.compress(&data));
            match result {
                Ok(_) => {
                    last_ratio = peak as f64 / input as f64;
                    row.push(format!("{:.1} MB ({:.1}x)", peak as f64 / 1e6, last_ratio));
                }
                Err(_) => row.push("-".to_string()),
            }
        }
        if name == "buff" {
            buff_ratio = last_ratio;
        } else if last_ratio.is_finite() {
            median_ratios.push(last_ratio);
        }
        rows.push(row);
    }
    median_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let med = median_ratios
        .get(median_ratios.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);

    let mut out = String::from("Figure 10: peak memory during compression (and ratio to input)\n");
    out.push_str(&render_table(&headers, &rows));
    out.push_str(&format!(
        "\nBUFF footprint ratio {buff_ratio:.1}x vs median of the others {med:.1}x\n\
         (paper: most compressors use ~2x the input; BUFF ~7x, 'rendering it\n\
         less suitable for in-situ analysis'; pFPC/SPDP have fixed buffers)\n"
    ));
    out.push_str(&streaming_footprint(base_elems));
    out
}

/// Whole-frame-in-memory vs streaming `FrameWriter` peak footprint: the
/// writer pins at most `queue_depth` blocks, so its peak stays flat while
/// the in-memory frame grows with the dataset.
fn streaming_footprint(base_elems: usize) -> String {
    let spec = find("miranda3d").expect("catalog dataset");
    let data = generate(&spec, (base_elems * 2).max(1 << 18));
    let registry = paper_registry();
    let mut out = format!(
        "\nstreaming engine footprint ({:.1} MB input, 16Ki-element blocks,\n\
         2-worker pool; 'frame' holds the whole FCB2 frame, 'stream' sends\n\
         FCB3 records to a null sink as blocks finish):\n",
        data.bytes().len() as f64 / 1e6
    );
    out.push_str(&format!(
        "{:<10} {:>14} {:>14}\n",
        "codec", "frame peak MB", "stream peak MB"
    ));
    for name in ["gorilla", "chimp128"] {
        let codec = registry.get(name).expect("registered codec");
        let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(2)));
        let pipeline = Pipeline::with_pool(codec, pool).block_elems(16 * 1024);

        let run_stream = |pipeline: &Pipeline| {
            let mut w = pipeline
                .frame_writer(data.desc(), std::io::sink())
                .expect("writer");
            for chunk in data.bytes().chunks(1 << 16) {
                w.write(chunk).expect("stream write");
            }
            w.finish().expect("finish");
        };
        // Warm both paths so the peaks reflect steady state, not one-time
        // buffer growth.
        let _ = pipeline.compress(&data);
        run_stream(&pipeline);

        let (frame_peak, _) = alloc_track::measure_peak(|| pipeline.compress(&data));
        let (stream_peak, _) = alloc_track::measure_peak(|| run_stream(&pipeline));
        out.push_str(&format!(
            "{:<10} {:>14.2} {:>14.2}\n",
            name,
            frame_peak as f64 / 1e6,
            stream_peak as f64 / 1e6
        ));
    }
    out.push_str(
        "(the stream peak is bounded by blocks-in-flight, not dataset size —\n\
         the path that serves corpora larger than memory)\n",
    );
    out
}

//! Figure 10: memory footprint during compression vs input size.

use crate::alloc_track;
use crate::codecs::paper_registry;
use crate::context::render_table;
use fcbench_datasets::{find, generate};

/// Measure peak working memory of each codec compressing `miranda3d`-like
/// data at several input sizes.
pub fn fig10(base_elems: usize) -> String {
    if !alloc_track::is_installed() {
        return "Figure 10: peak-allocation tracking requires the fcbench binary\n\
                (the counting allocator is not installed in this process)\n"
            .to_string();
    }
    let spec = find("miranda3d").expect("catalog dataset");
    let sizes = [base_elems / 4, base_elems / 2, base_elems, base_elems * 2];

    let mut headers = vec!["method".to_string()];
    for &n in &sizes {
        headers.push(format!("{:.1} MB in", (n * 4) as f64 / 1e6));
    }

    let mut rows = Vec::new();
    let mut buff_ratio = 0.0f64;
    let mut median_ratios: Vec<f64> = Vec::new();
    let registry = paper_registry();
    for entry in registry.iter() {
        let codec = entry.codec();
        let name = entry.name().to_string();
        let mut row = vec![name.clone()];
        let mut last_ratio = f64::NAN;
        for &n in &sizes {
            let data = generate(&spec, n);
            let input = data.bytes().len();
            let (peak, result) = alloc_track::measure_peak(|| codec.compress(&data));
            match result {
                Ok(_) => {
                    last_ratio = peak as f64 / input as f64;
                    row.push(format!("{:.1} MB ({:.1}x)", peak as f64 / 1e6, last_ratio));
                }
                Err(_) => row.push("-".to_string()),
            }
        }
        if name == "buff" {
            buff_ratio = last_ratio;
        } else if last_ratio.is_finite() {
            median_ratios.push(last_ratio);
        }
        rows.push(row);
    }
    median_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let med = median_ratios
        .get(median_ratios.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);

    let mut out = String::from("Figure 10: peak memory during compression (and ratio to input)\n");
    out.push_str(&render_table(&headers, &rows));
    out.push_str(&format!(
        "\nBUFF footprint ratio {buff_ratio:.1}x vs median of the others {med:.1}x\n\
         (paper: most compressors use ~2x the input; BUFF ~7x, 'rendering it\n\
         less suitable for in-situ analysis'; pFPC/SPDP have fixed buffers)\n"
    ));
    out
}

//! Table 11: read + decode + query time on the TPC datasets, through the
//! simulated in-memory database (§6.2.2). Container pages are compressed
//! and decoded on a shared persistent worker-pool engine, the way a
//! database integration would drive the codecs.

use crate::codecs::paper_registry;
use crate::context::{engine_threads, render_table};
use fcbench_core::pool::{PoolConfig, WorkerPool};
use fcbench_core::Precision;
use fcbench_datasets::{catalog, generate};
use fcbench_dbsim::{measure_three_primitives_pooled, ColumnData, RecoveryOutcome};

/// Codec rows included in Table 11 (the paper omits BUFF and the nvCOMP
/// binaries, which expose no block API in their harness; we keep the same
/// row set). Instances come from the registry, so the engine reuses the
/// shared handles.
const TABLE11_CODECS: [&str; 11] = [
    "pfpc",
    "spdp",
    "fpzip",
    "bitshuffle-lz4",
    "bitshuffle-zstd",
    "ndzip-cpu",
    "gorilla",
    "chimp128",
    "gfc",
    "mpc",
    "ndzip-gpu",
];

/// Split a generated (rows × cols) dataset into dbsim columns.
fn to_columns(data: &fcbench_core::FloatData) -> Vec<ColumnData> {
    let dims = data.desc().dims.clone();
    let (rows, cols) = if dims.len() == 2 {
        (dims[0], dims[1])
    } else {
        (dims[0], 1)
    };
    match data.desc().precision {
        Precision::Double => {
            let vals = data.to_f64_vec().expect("precision checked");
            (0..cols)
                .map(|c| {
                    let col: Vec<f64> = (0..rows).map(|r| vals[r * cols + c]).collect();
                    ColumnData::from_f64(format!("c{c}"), &col)
                })
                .collect()
        }
        Precision::Single => {
            let vals = data.to_f32_vec().expect("precision checked");
            (0..cols)
                .map(|c| {
                    let col: Vec<f32> = (0..rows).map(|r| vals[r * cols + c]).collect();
                    ColumnData::from_f32(format!("c{c}"), &col)
                })
                .collect()
        }
    }
}

/// Table 11 over the 7 TPC datasets at `target_elems`, with `chunk_elems`
/// container pages.
pub fn table11(target_elems: usize, chunk_elems: usize) -> String {
    let registry = paper_registry();
    let pool = WorkerPool::new(PoolConfig::with_threads(engine_threads()));
    let tpc: Vec<_> = catalog()
        .into_iter()
        .filter(|s| s.domain == fcbench_core::Domain::Database)
        .collect();

    let mut headers = vec!["dataset".to_string()];
    headers.extend(TABLE11_CODECS.iter().map(|c| c.to_string()));
    headers.push("query".to_string());

    let tmp = std::env::temp_dir();
    let mut rows = Vec::new();
    for spec in &tpc {
        let data = generate(spec, target_elems);
        let columns = to_columns(&data);
        let mut row = vec![spec.name.to_string()];
        let mut query_ms = f64::NAN;
        for name in TABLE11_CODECS {
            let codec = registry.get(name).expect("registered codec");
            let path = tmp.join(format!(
                "fcbench-t11-{}-{}-{}",
                std::process::id(),
                spec.name,
                name
            ));
            match measure_three_primitives_pooled(&path, &pool, &codec, &columns, chunk_elems) {
                Ok(r) => {
                    // A container this experiment just wrote must read back
                    // clean; a recovery here would mean the write path tore.
                    let flag = if r.recovery == RecoveryOutcome::Clean {
                        ""
                    } else {
                        "!"
                    };
                    row.push(format!(
                        "{:.1}+{:.1}{flag}",
                        r.io_seconds * 1e3,
                        r.decode_seconds * 1e3
                    ));
                    query_ms = r.query_seconds * 1e3;
                }
                Err(_) => row.push("-".to_string()),
            }
            std::fs::remove_file(&path).ok();
        }
        row.push(format!("{query_ms:.1}"));
        rows.push(row);
    }

    let mut out = format!(
        "Table 11: read (I/O + decode) and query time in ms from container files\n\
         (pages compressed/decoded on a shared {}-worker engine)\n",
        pool.threads()
    );
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\npaper shape: query time is codec-independent (identical decoded\n\
         dataframes); read overhead tracks each codec's decompression speed —\n\
         fpzip slowest, bitshuffle/MPC/GFC fastest; end-to-end time decides\n\
         the recommendation (bitshuffle+zstd on CPU, MPC on GPU).\n",
    );
    out
}

//! Table 10: compression performance under 4 KB / 64 KB / 8 MB blocks.

use crate::codecs::paper_registry;
use crate::context::render_table;
use fcbench_core::blocks::{BlockCodec, BLOCK_4K, BLOCK_64K, BLOCK_8M};
use fcbench_core::metrics::{arithmetic_mean, harmonic_mean};
use fcbench_core::runner::{run_cell, NamedData, RunConfig};
use fcbench_core::CodecRegistry;

struct BlockAvg {
    cr: f64,
    ct: f64,
    dt: f64,
}

fn run_block_size(
    registry: &CodecRegistry,
    datasets: &[NamedData],
    block_bytes: usize,
) -> Vec<(String, BlockAvg)> {
    let cfg = RunConfig {
        repetitions: 1,
        verify: true,
    };
    registry
        .block_capable()
        .map(|entry| {
            let name = entry.name().to_string();
            // `Arc<dyn Compressor>` implements `Compressor`, so the block
            // adaptor wraps the registry handle directly.
            let blocked = BlockCodec::new(entry.codec().clone(), block_bytes);
            let mut crs = Vec::new();
            let mut cts = Vec::new();
            let mut dts = Vec::new();
            for ds in datasets {
                if let fcbench_core::CellOutcome::Ok(m) = run_cell(&blocked, &ds.data, cfg) {
                    crs.push(m.compression_ratio());
                    cts.push(m.compression_throughput_gbs());
                    dts.push(m.decompression_throughput_gbs());
                }
            }
            (
                name,
                BlockAvg {
                    cr: harmonic_mean(&crs).unwrap_or(f64::NAN),
                    ct: arithmetic_mean(&cts).unwrap_or(f64::NAN),
                    dt: arithmetic_mean(&dts).unwrap_or(f64::NAN),
                },
            )
        })
        .collect()
}

/// Table 10 over the provided datasets.
pub fn table10(datasets: &[NamedData]) -> String {
    let registry = paper_registry();
    let mut out = String::from("Table 10: compression performance under different block sizes\n");
    let mut headers = vec!["blocksize / metric".to_string()];
    headers.extend(registry.block_capable().map(|e| e.name().to_string()));

    let mut rows = Vec::new();
    let mut best_cr_at_larger_blocks = 0usize;
    let mut total = 0usize;
    let mut cr4k: Vec<f64> = Vec::new();
    for (label, bytes) in [("4K", BLOCK_4K), ("64K", BLOCK_64K), ("8M", BLOCK_8M)] {
        let results = run_block_size(&registry, datasets, bytes);
        let mut cr_row = vec![format!("{label} avg-CR")];
        let mut ct_row = vec![format!("{label} avg-CT (GB/s)")];
        let mut dt_row = vec![format!("{label} avg-DT (GB/s)")];
        for (k, (_, avg)) in results.iter().enumerate() {
            cr_row.push(format!("{:.3}", avg.cr));
            ct_row.push(format!("{:.3}", avg.ct));
            dt_row.push(format!("{:.3}", avg.dt));
            if label == "4K" {
                cr4k.push(avg.cr);
            } else if label == "64K" {
                total += 1;
                if avg.cr >= cr4k[k] - 1e-6 {
                    best_cr_at_larger_blocks += 1;
                }
            }
        }
        rows.push(cr_row);
        rows.push(ct_row);
        rows.push(dt_row);
    }
    out.push_str(&render_table(&headers, &rows));
    out.push_str(&format!(
        "\ncodecs whose 64K CR >= 4K CR: {best_cr_at_larger_blocks}/{total}\n\
         (paper Observation 8: 'seven out of eight compression algorithms yield\n\
         improved CRs' with larger blocks, and all gain throughput)\n"
    ));
    out
}

//! Table 10: compression performance under 4 KB / 64 KB / 8 MB blocks.
//!
//! Block decomposition runs on the campaign's shared
//! [`WorkerPool`](fcbench_core::pool::WorkerPool) engine: each
//! block-capable codec is wrapped in a [`Pipeline`] over the warm pool
//! (no thread spawn per cell) and measured through the chunked `FCB2`
//! frame, whose block directory plays the role of the page directory a
//! database container would keep.

use crate::context::{render_table, Context};
use fcbench_core::blocks::{BLOCK_4K, BLOCK_64K, BLOCK_8M};
use fcbench_core::metrics::{arithmetic_mean, harmonic_mean};
use fcbench_core::runner::{run_cell_pipelined, NamedData, RunConfig};
use fcbench_core::Pipeline;
use std::sync::Arc;

struct BlockAvg {
    cr: f64,
    ct: f64,
    dt: f64,
}

fn run_block_size(
    ctx: &Context,
    datasets: &[NamedData],
    block_bytes: usize,
) -> Vec<(String, BlockAvg)> {
    let cfg = RunConfig {
        repetitions: 1,
        verify: true,
    };
    ctx.registry
        .block_capable()
        .map(|entry| {
            let name = entry.name().to_string();
            let mut crs = Vec::new();
            let mut cts = Vec::new();
            let mut dts = Vec::new();
            for ds in datasets {
                // Blocks are sized in elements; the byte budget is the
                // paper's page size. The registry's thread_scalable gate
                // applies here too: GPU-simulated codecs already model
                // device-wide parallelism, so they run their blocks inline
                // instead of double-counting CPU pool workers on top.
                let block_elems = (block_bytes / ds.data.desc().precision.bytes()).max(1);
                let pipeline = if entry.is_thread_scalable() {
                    Pipeline::with_pool(Arc::clone(entry.codec()), ctx.pool.clone())
                } else {
                    Pipeline::with_codec(Arc::clone(entry.codec()))
                }
                .block_elems(block_elems);
                if let fcbench_core::CellOutcome::Ok(m) =
                    run_cell_pipelined(&pipeline, &ds.data, cfg)
                {
                    crs.push(m.compression_ratio());
                    cts.push(m.compression_throughput_gbs());
                    dts.push(m.decompression_throughput_gbs());
                }
            }
            (
                name,
                BlockAvg {
                    cr: harmonic_mean(&crs).unwrap_or(f64::NAN),
                    ct: arithmetic_mean(&cts).unwrap_or(f64::NAN),
                    dt: arithmetic_mean(&dts).unwrap_or(f64::NAN),
                },
            )
        })
        .collect()
}

/// Table 10 over the context's datasets, executed on its shared engine.
pub fn table10(ctx: &Context) -> String {
    let datasets = &ctx.datasets;
    let mut out = format!(
        "Table 10: compression performance under different block sizes\n\
         (block-parallel on the shared {}-worker engine; CR includes the\n\
         FCB2 frame's per-block directory, the container accounting a paged\n\
         store pays)\n",
        ctx.pool.threads()
    );
    let mut headers = vec!["blocksize / metric".to_string()];
    headers.extend(ctx.registry.block_capable().map(|e| e.name().to_string()));

    let mut rows = Vec::new();
    let mut best_cr_at_larger_blocks = 0usize;
    let mut total = 0usize;
    let mut cr4k: Vec<f64> = Vec::new();
    for (label, bytes) in [("4K", BLOCK_4K), ("64K", BLOCK_64K), ("8M", BLOCK_8M)] {
        let results = run_block_size(ctx, datasets, bytes);
        let mut cr_row = vec![format!("{label} avg-CR")];
        let mut ct_row = vec![format!("{label} avg-CT (GB/s)")];
        let mut dt_row = vec![format!("{label} avg-DT (GB/s)")];
        for (k, (_, avg)) in results.iter().enumerate() {
            cr_row.push(format!("{:.3}", avg.cr));
            ct_row.push(format!("{:.3}", avg.ct));
            dt_row.push(format!("{:.3}", avg.dt));
            if label == "4K" {
                cr4k.push(avg.cr);
            } else if label == "64K" {
                total += 1;
                if avg.cr >= cr4k[k] - 1e-6 {
                    best_cr_at_larger_blocks += 1;
                }
            }
        }
        rows.push(cr_row);
        rows.push(ct_row);
        rows.push(dt_row);
    }
    out.push_str(&render_table(&headers, &rows));
    out.push_str(&format!(
        "\ncodecs whose 64K CR >= 4K CR: {best_cr_at_larger_blocks}/{total}\n\
         (paper Observation 8: 'seven out of eight compression algorithms yield\n\
         improved CRs' with larger blocks, and all gain throughput)\n"
    ));
    out
}

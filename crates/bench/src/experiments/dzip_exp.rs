//! The §4.5 Dzip experiment: neural compression works, but at three-plus
//! orders of magnitude lower throughput than conventional codecs — "still
//! not practical for applications at the time of our survey".

use crate::context::render_table;
use fcbench_core::{CodecRegistry, Compressor, DataDesc, FloatData};
use fcbench_datasets::{find, generate};
use fcbench_dzip::Dzip;
use std::time::Instant;

/// Compare Dzip against two conventional codecs on a small excerpt.
pub fn dzip_experiment(excerpt_elems: usize) -> String {
    let spec = find("msg-bt").expect("catalog dataset");
    let data = generate(&spec, excerpt_elems);

    // A purpose-built registry: the neural codec plus two conventional
    // baselines drawn with the same construction as the paper registry.
    let registry = CodecRegistry::new()
        .with(Dzip::with_bootstrap(1, 1 << 14))
        .with(fcbench_codecs_cpu::Gorilla::new())
        .with(fcbench_codecs_cpu::Bitshuffle::lz4());
    let codecs: Vec<_> = registry.codecs().collect();

    let headers = vec![
        "method".to_string(),
        "ratio".to_string(),
        "comp MB/s".to_string(),
        "decomp MB/s".to_string(),
    ];
    let mut rows = Vec::new();
    let mut dzip_ct = f64::NAN;
    let mut fastest_ct = 0.0f64;
    for codec in &codecs {
        let t0 = Instant::now();
        let payload = codec.compress(&data).expect("compresses");
        let ct = data.bytes().len() as f64 / t0.elapsed().as_secs_f64() / 1e6;

        let t1 = Instant::now();
        let back = codec
            .decompress(&payload, data.desc())
            .expect("decompresses");
        let dt = data.bytes().len() as f64 / t1.elapsed().as_secs_f64() / 1e6;
        assert_eq!(back.bytes(), data.bytes(), "lossless check");

        let cr = data.bytes().len() as f64 / payload.len() as f64;
        if codec.info().name == "dzip" {
            dzip_ct = ct;
        } else {
            fastest_ct = fastest_ct.max(ct);
        }
        rows.push(vec![
            codec.info().name.to_string(),
            format!("{cr:.3}"),
            format!("{ct:.3}"),
            format!("{dt:.3}"),
        ]);
    }

    let mut out = format!(
        "Dzip (S4.5): neural compression on a {} KB msg-bt excerpt\n",
        data.bytes().len() / 1024
    );
    out.push_str(&render_table(&headers, &rows));
    out.push_str(&format!(
        "\nconventional/neural speed gap: {:.0}x\n\
         (paper: Dzip runs at ~KB/s; NN-based compression 'still not practical')\n",
        fastest_ct / dzip_ct
    ));
    out
}

/// Cheap smoke check used by integration tests.
pub fn dzip_roundtrips_smoke() -> bool {
    let data = FloatData::from_f64(
        &(0..64).map(|i| i as f64).collect::<Vec<_>>(),
        vec![64],
        fcbench_core::Domain::Hpc,
    )
    .expect("valid data");
    let d = Dzip::with_bootstrap(1, 512);
    let Ok(c) = d.compress(&data) else {
        return false;
    };
    let desc: &DataDesc = data.desc();
    match d.decompress(&c, desc) {
        Ok(back) => back.bytes() == data.bytes(),
        Err(_) => false,
    }
}

//! Table 9: influence of dimension information — multi-dimensional (md)
//! versus flattened 1-d compression ratios, with the Mann–Whitney U test
//! (§6.1.5: "Compression is 1-d friendly").

use crate::context::render_table;
use fcbench_codecs_cpu::{Fpzip, Ndzip};
use fcbench_codecs_gpu::{Mpc, NdzipGpu};
use fcbench_core::metrics::harmonic_mean;
use fcbench_core::runner::NamedData;
use fcbench_core::Compressor;
use fcbench_datasets::DatasetSpec;
use fcbench_stats::mann_whitney_u;

/// The dimension-sensitive codecs of Table 9. GFC is included in the
/// paper's table but its predictor ignores dimensionality by construction
/// ("the GFC predictor remains inaccurate, even with the correct dimension
/// information"); we run the four codecs whose prediction actually
/// consumes the extent, plus GFC via the generic delta path when present.
fn dim_codecs() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Fpzip::new()),
        Box::new(Mpc::new()),
        Box::new(Ndzip::new()),
        Box::new(NdzipGpu::new()),
    ]
}

/// Run Table 9 over the multi-dimensional datasets in `datasets`.
pub fn table9(specs: &[DatasetSpec], datasets: &[NamedData]) -> String {
    let codecs = dim_codecs();
    let mut headers = vec!["metric".to_string()];
    headers.extend(codecs.iter().map(|c| c.info().name.to_string()));

    let mut md_ratios: Vec<Vec<f64>> = vec![Vec::new(); codecs.len()];
    let mut oned_ratios: Vec<Vec<f64>> = vec![Vec::new(); codecs.len()];

    for (spec, ds) in specs.iter().zip(datasets.iter()) {
        if spec.paper_dims.len() < 2 {
            continue; // only multi-dimensional datasets participate
        }
        let flat = ds.data.flattened_1d();
        for (k, codec) in codecs.iter().enumerate() {
            let orig = ds.data.bytes().len() as f64;
            if let (Ok(md), Ok(od)) = (codec.compress(&ds.data), codec.compress(&flat)) {
                md_ratios[k].push(orig / md.len() as f64);
                oned_ratios[k].push(orig / od.len() as f64);
            }
        }
    }

    let mut md_row = vec!["harmonic mean (md)".to_string()];
    let mut od_row = vec!["harmonic mean (1d)".to_string()];
    let mut p_row = vec!["Mann-Whitney p".to_string()];
    let mut all_insignificant = true;
    for k in 0..codecs.len() {
        md_row.push(harmonic_mean(&md_ratios[k]).map_or("-".into(), |h| format!("{h:.3}")));
        od_row.push(harmonic_mean(&oned_ratios[k]).map_or("-".into(), |h| format!("{h:.3}")));
        if md_ratios[k].len() >= 2 {
            let r = mann_whitney_u(&md_ratios[k], &oned_ratios[k]);
            p_row.push(format!("{:.3}", r.p));
            if r.rejects_at(0.05) {
                all_insignificant = false;
            }
        } else {
            p_row.push("-".into());
        }
    }

    let mut out =
        String::from("Table 9: dimension information's influence on compression ratios\n");
    out.push_str(&render_table(&headers, &[md_row, od_row, p_row]));
    out.push_str(&format!(
        "\nno significant md-vs-1d difference at alpha = 0.05: {all_insignificant}\n\
         (paper Observation 6: the Mann-Whitney U test finds no significant\n\
         difference — flattening degrades Lorenzo to delta, which bit\n\
         transposes absorb. Note: at laptop-scale extents, ndzip's fixed\n\
         64x64 / 16^3 hypercubes leave a large verbatim border on 2-D/3-D\n\
         grids, so its 1-d flattening can look *better* here — a scale\n\
         artifact absent at the paper's full dataset sizes.)\n"
    ));
    out
}

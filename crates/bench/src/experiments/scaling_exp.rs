//! Tables 7 & 8: parallel scalability of the four thread-capable CPU
//! methods over 1–48 threads.

use crate::codecs::paper_registry;
use crate::context::render_table;
use fcbench_core::registry::CodecRegistry;
use fcbench_core::scaling::{pool_scaling_sweep, scaling_sweep, Direction, PAPER_THREAD_COUNTS};
use fcbench_core::FloatData;
use fcbench_datasets::{find, generate};

/// Run the sweep on a representative dataset at `target_elems`.
fn sweep_table(
    registry: &CodecRegistry,
    data: &FloatData,
    direction: Direction,
    reps: usize,
) -> String {
    let names = registry.scalable_names();
    let mut headers = vec!["threads".to_string()];
    headers.extend(names.iter().map(|n| n.to_string()));

    let curves: Vec<_> = names
        .iter()
        .map(|name| {
            let factory = |t: usize| registry.scaled(name, t).expect("entry is thread-scalable");
            scaling_sweep(factory, data, &PAPER_THREAD_COUNTS, direction, reps)
                .expect("scalable codecs succeed on the sweep dataset")
        })
        .collect();

    let rows: Vec<Vec<String>> = PAPER_THREAD_COUNTS
        .iter()
        .enumerate()
        .map(|(k, &t)| {
            let mut row = vec![t.to_string()];
            for c in &curves {
                let p = &c.points[k];
                row.push(format!(
                    "{:.0} MB/s {:.2}x ({:.0}%)",
                    p.mb_per_s,
                    p.speedup,
                    p.efficiency * 100.0
                ));
            }
            row
        })
        .collect();

    let mut out = render_table(&headers, &rows);
    out.push_str("peak throughput at: ");
    for c in &curves {
        if let Some(p) = c.peak() {
            out.push_str(&format!("{} {} threads; ", c.codec, p.threads));
        }
    }
    out.push('\n');
    out
}

/// Engine thread counts for the block-parallel sweep: a prefix of the
/// paper's ladder capped at 2x the host's cores — beyond that the pool
/// only measures oversubscription.
fn engine_thread_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    PAPER_THREAD_COUNTS
        .iter()
        .copied()
        .filter(|&t| t <= (2 * cores).max(2))
        .collect()
}

/// The execution-engine counterpart of Tables 7–8: serial codecs made
/// block-parallel by fanning fixed-size blocks across the persistent
/// `WorkerPool`, rather than by codec-internal threading.
fn engine_sweep_table(registry: &CodecRegistry, data: &FloatData, reps: usize) -> String {
    let names = ["gorilla", "chimp128", "spdp"];
    let counts = engine_thread_counts();
    let mut headers = vec!["engine threads".to_string()];
    headers.extend(names.iter().map(|n| n.to_string()));

    let curves: Vec<_> = names
        .iter()
        .map(|name| {
            let codec = registry.get(name).expect("registered codec");
            pool_scaling_sweep(&codec, data, &counts, 64 * 1024, Direction::Compress, reps)
                .expect("serial codecs succeed on the sweep dataset")
        })
        .collect();

    let rows: Vec<Vec<String>> = counts
        .iter()
        .enumerate()
        .map(|(k, &t)| {
            let mut row = vec![t.to_string()];
            for c in &curves {
                let p = &c.points[k];
                row.push(format!("{:.0} MB/s {:.2}x", p.mb_per_s, p.speedup));
            }
            row
        })
        .collect();
    let mut out = String::from(
        "\nExecution-engine scaling: serial codecs fanned block-parallel across\n\
         the persistent worker pool (64Ki-element blocks, pool spawned once per\n\
         thread count, warm before timing)\n",
    );
    out.push_str(&render_table(&headers, &rows));
    out
}

/// Tables 7 and 8 together.
pub fn tables7_8(target_elems: usize, reps: usize) -> String {
    // The paper sweeps on large inputs; miranda3d-like smooth single data
    // parallelizes representatively. Thread scaling needs enough work per
    // worker, so the sweep uses at least 1M elements.
    let registry = paper_registry();
    let spec = find("miranda3d").expect("catalog dataset");
    let data = generate(&spec, target_elems.max(1 << 20));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut out = format!(
        "(host exposes {cores} hardware thread(s); speedups are bounded by that —\n\
         the paper's testbed has 2x12 cores)\n\nTable 7: parallel compression throughput\n"
    );
    out.push_str(&sweep_table(&registry, &data, Direction::Compress, reps));
    out.push_str("\nTable 8: parallel decompression throughput\n");
    out.push_str(&sweep_table(&registry, &data, Direction::Decompress, reps));
    out.push_str(&engine_sweep_table(&registry, &data, reps));
    out.push_str(
        "\npaper shape: pFPC and both bitshuffles gain 3-4x up to 16-24 threads,\n\
         then decline from oversubscription; ndzip-CPU's reference implementation\n\
         does not scale (~1.0x at every thread count) — our implementation does\n\
         scale modestly, which the paper itself attributes to 'an implementation\n\
         issue' in the original.\n",
    );
    out
}

//! Compression-ratio experiments: Table 4, Figure 5, Figure 6, Figure 7.

use crate::context::{render_table, Context};
use fcbench_core::metrics::{harmonic_mean, median};
use fcbench_core::summary::{boxplot, group_boxplots};
use fcbench_core::{CellOutcome, Domain, Platform};
use fcbench_stats::{cd_diagram, friedman_test};

/// Table 4: compression ratio per (dataset × method), with per-domain and
/// overall harmonic means.
pub fn table4(ctx: &Context) -> String {
    let m = &ctx.matrix;
    let mut headers = vec!["dataset".to_string()];
    headers.extend(m.codecs.iter().cloned());

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut domain_ratios: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); m.codecs.len()]; Domain::ALL.len()];

    for (di, dname) in m.datasets.iter().enumerate() {
        let spec = &ctx.specs[di];
        let mut row = vec![format!("{} {}", spec.domain.label(), dname)];
        for (ci, _) in m.codecs.iter().enumerate() {
            match &m.cells[ci][di] {
                CellOutcome::Ok(meas) => {
                    let cr = meas.compression_ratio();
                    row.push(format!("{cr:.3}"));
                    let dom_idx = Domain::ALL
                        .iter()
                        .position(|&d| d == spec.domain)
                        .expect("domain in ALL");
                    domain_ratios[dom_idx][ci].push(cr);
                }
                CellOutcome::Failed(_) => row.push("-".to_string()),
            }
        }
        rows.push(row);
    }

    // Domain averages (harmonic mean, §5.2) and overall.
    for (dom_idx, dom) in Domain::ALL.iter().enumerate() {
        let mut row = vec![format!("{}-avg", dom.label())];
        for cell in &domain_ratios[dom_idx] {
            match harmonic_mean(cell) {
                Some(h) => row.push(format!("{h:.3}")),
                None => row.push("-".to_string()),
            }
        }
        rows.push(row);
    }
    let mut overall = vec!["Overall-avg".to_string()];
    for (ci, codec) in m.codecs.iter().enumerate() {
        let _ = codec;
        let all: Vec<f64> = (0..m.datasets.len())
            .filter_map(|di| m.cells[ci][di].ratio())
            .collect();
        match harmonic_mean(&all) {
            Some(h) => overall.push(format!("{h:.3}")),
            None => overall.push("-".to_string()),
        }
    }
    rows.push(overall);

    let mut out = String::from("Table 4: compression ratios (original / compressed)\n");
    out.push_str(&render_table(&headers, &rows));
    out.push_str(&format!(
        "\nrobustness: CPU failure rate {:.1}%  GPU failure rate {:.1}%  (paper: 2.0% / 7.3%)\n",
        m.failure_rate(&ctx.platform_names(Platform::Cpu)) * 100.0,
        m.failure_rate(&ctx.platform_names(Platform::Gpu)) * 100.0,
    ));
    out
}

/// Figure 5: boxplot of all measured compression ratios.
pub fn fig5(ctx: &Context) -> String {
    let ratios = ctx.matrix.all_ratios();
    let b = boxplot(&ratios).expect("matrix has successful cells");
    let mut out = String::from("Figure 5: boxplot of all compression ratios\n");
    out.push_str(&format!(
        "n = {}  min {:.3}  q1 {:.3}  median {:.3}  q3 {:.3}  max {:.3}\n",
        b.count, b.min, b.q1, b.median, b.q3, b.max
    ));
    out.push_str(&format!(
        "whiskers [{:.3}, {:.3}]  outliers: {}\n",
        b.whisker_lo,
        b.whisker_hi,
        b.outliers
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out.push_str("paper: median 1.16, outliers ranging 2.0 .. 22.8\n");
    out
}

/// Figure 6: ratios grouped by (a) precision & domain, (b) predictor class
/// & platform.
pub fn fig6(ctx: &Context) -> String {
    let m = &ctx.matrix;
    let mut by_type: Vec<(String, f64)> = Vec::new();
    let mut by_domain: Vec<(String, f64)> = Vec::new();
    let mut by_class: Vec<(String, f64)> = Vec::new();
    let mut by_platform: Vec<(String, f64)> = Vec::new();

    for (ci, entry) in ctx.registry.iter().enumerate() {
        let info = entry.codec().info();
        for (di, spec) in ctx.specs.iter().enumerate() {
            if let Some(cr) = m.cells[ci][di].ratio() {
                by_type.push((spec.precision.label().to_string(), cr));
                by_domain.push((spec.domain.label().to_string(), cr));
                by_class.push((info.class.label().to_string(), cr));
                by_platform.push((info.platform.label().to_string(), cr));
            }
        }
    }

    let mut out = String::from("Figure 6a: ratios by data type and domain (medians)\n");
    for g in group_boxplots(&by_type) {
        out.push_str(&format!(
            "  {:<12} median {:.3}  (n = {})\n",
            g.label, g.stats.median, g.stats.count
        ));
    }
    for g in group_boxplots(&by_domain) {
        out.push_str(&format!(
            "  {:<12} median {:.3}  (n = {})\n",
            g.label, g.stats.median, g.stats.count
        ));
    }
    out.push_str("paper: fp32 1.225 / fp64 1.202; OBS 1.292 > TS 1.223 > HPC 1.206 > DB 1.080\n\n");

    out.push_str("Figure 6b: ratios by predictor class and platform (medians)\n");
    for g in group_boxplots(&by_class) {
        out.push_str(&format!(
            "  {:<12} median {:.3}  (n = {})\n",
            g.label, g.stats.median, g.stats.count
        ));
    }
    for g in group_boxplots(&by_platform) {
        out.push_str(&format!(
            "  {:<12} median {:.3}  (n = {})\n",
            g.label, g.stats.median, g.stats.count
        ));
    }
    out.push_str("paper: DICTIONARY 1.309 > LORENZO 1.219 > DELTA 1.116; CPU > GPU\n");
    out
}

/// Figure 7: harmonic-mean CRs per method (7a) and the Friedman + Nemenyi
/// critical-difference diagram (7b).
pub fn fig7(ctx: &Context) -> String {
    let m = &ctx.matrix;
    let mut out = String::from("Figure 7a: harmonic-mean compression ratio per method\n");
    for (ci, codec) in m.codecs.iter().enumerate() {
        let ratios: Vec<f64> = (0..m.datasets.len())
            .filter_map(|di| m.cells[ci][di].ratio())
            .collect();
        let h = harmonic_mean(&ratios).unwrap_or(f64::NAN);
        out.push_str(&format!(
            "  {codec:<16} {h:.3}  ({} datasets)\n",
            ratios.len()
        ));
    }

    // Friedman needs complete cases: datasets where every codec succeeded.
    let codec_names: Vec<&str> = m.codecs.iter().map(|s| s.as_str()).collect();
    let (kept, rows) = m.complete_ratio_rows(&codec_names);
    out.push_str(&format!(
        "\nFigure 7b: Friedman test over {} complete datasets, k = {}\n",
        kept.len(),
        codec_names.len()
    ));
    if kept.len() >= 2 {
        let fr = friedman_test(&rows, true);
        out.push_str(&format!(
            "  chi2 = {:.2} (p = {:.2e})   Iman-Davenport F = {:.2} (p = {:.2e})\n",
            fr.chi2, fr.p_chi2, fr.f_stat, fr.p_f
        ));
        out.push_str(&format!(
            "  null 'all equivalent' rejected at alpha = 0.05: {}\n\n",
            fr.rejects_at(0.05)
        ));
        let names: Vec<String> = m.codecs.clone();
        let d = cd_diagram(&names, &fr.avg_ranks, kept.len(), 0.05);
        out.push_str("  critical-difference diagram (rank 1 = best ratio):\n");
        for line in d.render_text().lines() {
            out.push_str(&format!("  {line}\n"));
        }
        out.push_str("paper: no clear winner; bitshuffle+zstd ranks first but its clique\n");
        out.push_str("reaches SPDP; GFC ranks last (its clique reaches pFPC).\n");
    } else {
        out.push_str("  not enough complete datasets for the Friedman test\n");
    }

    // Domain winners (Observation 2 point (3)).
    out.push_str("\nbest method per domain (harmonic mean):\n");
    for dom in Domain::ALL {
        let mut best: Option<(String, f64)> = None;
        for (ci, codec) in m.codecs.iter().enumerate() {
            let ratios: Vec<f64> = ctx
                .specs
                .iter()
                .enumerate()
                .filter(|(_, s)| s.domain == dom)
                .filter_map(|(di, _)| m.cells[ci][di].ratio())
                .collect();
            if let Some(h) = harmonic_mean(&ratios) {
                if best.as_ref().is_none_or(|(_, b)| h > *b) {
                    best = Some((codec.clone(), h));
                }
            }
        }
        if let Some((name, h)) = best {
            out.push_str(&format!("  {:<4} {name} ({h:.3})\n", dom.label()));
        }
    }
    out.push_str("paper: HPC fpzip; TS nvCOMP::LZ4; OBS bitshuffle+zstd; DB Chimp\n");
    let med = median(&ctx.matrix.all_ratios()).unwrap_or(f64::NAN);
    out.push_str(&format!("\noverall median ratio {med:.3} (paper 1.16)\n"));
    out
}

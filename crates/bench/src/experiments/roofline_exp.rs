//! Figure 11: roofline placement of every codec's dominant kernel.

use crate::codecs::paper_registry;
use crate::context::render_table;
use fcbench_core::Platform;
use fcbench_datasets::{find, generate};
use fcbench_roofline::{Bound, MachineModel, RooflinePoint};
use std::time::Instant;

fn place(
    registry: &fcbench_core::registry::CodecRegistry,
    platform: Platform,
    machine: &MachineModel,
    target_elems: usize,
) -> Vec<(RooflinePoint, Bound)> {
    // The paper profiles on msg-bt (footnote 15).
    let spec = find("msg-bt").expect("catalog dataset");
    let data = generate(&spec, target_elems);
    let mut payload = Vec::new();
    registry
        .by_platform(platform)
        .filter_map(|entry| {
            let codec = entry.codec();
            let profile = codec.op_profile(data.desc())?;
            // Untimed warm-up so the first codec doesn't pay the payload
            // buffer's growth inside its timed region.
            codec.compress_into(&data, &mut payload).ok()?;
            let t0 = Instant::now();
            codec.compress_into(&data, &mut payload).ok()?;
            let secs = t0.elapsed().as_secs_f64();
            let point = RooflinePoint::from_profile(entry.name(), &profile, secs);
            let bound = point.classify(machine, 0.5);
            Some((point, bound))
        })
        .collect()
}

fn render(machine: &MachineModel, points: &[(RooflinePoint, Bound)]) -> String {
    let headers = vec![
        "method".to_string(),
        "ops/byte".to_string(),
        "GOP/s".to_string(),
        "roof GOP/s".to_string(),
        "bound".to_string(),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(p, b)| {
            vec![
                p.name.clone(),
                format!("{:.2}", p.intensity),
                format!("{:.2}", p.performance),
                format!("{:.1}", machine.attainable(p.intensity)),
                format!("{b:?}"),
            ]
        })
        .collect();
    let mut out = format!(
        "{}: compute roof {:.1} GOP/s, DRAM roof {:.1} GB/s, ridge {:.2} ops/byte\n",
        machine.name,
        machine.compute_roof(),
        machine.dram_roof(),
        machine.ridge_intensity()
    );
    out.push_str(&render_table(&headers, &rows));
    out
}

/// Figure 11a/11b: CPU and GPU rooflines (profiled on msg-bt, as in the
/// paper's footnote 15).
pub fn fig11(target_elems: usize) -> String {
    let registry = paper_registry();
    let cpu_machine = MachineModel::xeon_gold_6126();
    let gpu_machine = MachineModel::rtx_6000();

    let mut out = String::from("Figure 11a: CPU-based methods\n");
    out.push_str(&render(
        &cpu_machine,
        &place(&registry, Platform::Cpu, &cpu_machine, target_elems),
    ));
    out.push_str("\nFigure 11b: GPU-based methods (simulated device)\n");
    out.push_str(&render(
        &gpu_machine,
        &place(&registry, Platform::Gpu, &gpu_machine, target_elems),
    ));
    out.push_str(
        "\npaper shape: serial codecs (fpzip, BUFF, SPDP, Gorilla, Chimp) sit far\n\
         below both roofs (underutilized — parallelism would help); bitshuffle is\n\
         memory-bound; ndzip is compute-bound; most GPU kernels hug the memory\n\
         roof. Absolute GOP/s here reflect host execution of the simulated\n\
         kernels, so dots sit lower than on the paper's testbed while the\n\
         *relative* placement (who is near which roof) is what reproduces.\n",
    );
    out
}

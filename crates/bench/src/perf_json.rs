//! Machine-readable perf snapshots: `BENCH_<pr>.json`.
//!
//! The `fcbench bench-json` subcommand measures steady-state
//! `compress_into`/`decompress_into` throughput for every registered codec
//! over a small synthetic corpus and writes one JSON file. CI regenerates
//! it on a tiny budget each run, so successive PRs leave a diffable perf
//! trajectory (the numbers are only comparable within one machine/run —
//! the value is the *relative* movement between codecs and PRs).
//!
//! The JSON is hand-assembled: the workspace's `serde` is an offline
//! no-op shim, and the schema is two levels deep.

use crate::codecs::paper_registry;
use fcbench_core::FloatData;
use fcbench_datasets::{find, generate};
use std::time::Instant;

/// Snapshot schema identifier, bumped on layout changes.
pub const SCHEMA: &str = "fcbench-perf-v1";

/// Datasets making up the corpus: one representative per domain, matching
/// the `throughput` bench's selection.
pub const CORPUS: [&str; 4] = ["msg-bt", "citytemp", "acs-wht", "tpcDS-store"];

struct CodecRates {
    name: &'static str,
    compress_mb_s: f64,
    decompress_mb_s: f64,
}

/// Best-of-`reps` throughput in MB/s (decimal) for one closure.
fn rate_mb_s(raw_bytes: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    raw_bytes as f64 / best / 1e6
}

/// Measure every codec over the corpus. Codecs that reject a dataset (the
/// paper's "-" cells) simply skip it; a codec that rejects the whole
/// corpus is omitted from the snapshot.
fn measure(elems: usize, reps: usize) -> Vec<CodecRates> {
    let registry = paper_registry();
    let corpus: Vec<FloatData> = CORPUS
        .iter()
        .map(|name| generate(&find(name).expect("catalog dataset"), elems))
        .collect();

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    let mut out = FloatData::scratch();
    for entry in registry.iter() {
        let codec = entry.codec();
        let mut c_rates = Vec::new();
        let mut d_rates = Vec::new();
        for data in &corpus {
            // Warm-up also sizes the reused buffers and skips "-" cells.
            let Ok(n) = codec.compress_into(data, &mut payload) else {
                continue;
            };
            let raw = data.bytes().len();
            c_rates.push(rate_mb_s(raw, reps, || {
                std::hint::black_box(codec.compress_into(data, &mut payload).expect("compress"));
            }));
            codec
                .decompress_into(&payload[..n], data.desc(), &mut out)
                .expect("decompress");
            d_rates.push(rate_mb_s(raw, reps, || {
                codec
                    .decompress_into(&payload[..n], data.desc(), &mut out)
                    .expect("decompress");
            }));
        }
        if c_rates.is_empty() {
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        rows.push(CodecRates {
            name: entry.name(),
            compress_mb_s: mean(&c_rates),
            decompress_mb_s: mean(&d_rates),
        });
    }
    rows
}

/// Render the snapshot as pretty-printed JSON.
fn render(pr: u32, elems: usize, reps: usize, rows: &[CodecRates]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"pr\": {pr},\n"));
    s.push_str(&format!("  \"elems\": {elems},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    let corpus = CORPUS
        .iter()
        .map(|d| format!("\"{d}\""))
        .collect::<Vec<_>>()
        .join(", ");
    s.push_str(&format!("  \"corpus\": [{corpus}],\n"));
    s.push_str("  \"codecs\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}\": {{\"compress_mb_s\": {:.2}, \"decompress_mb_s\": {:.2}}}{comma}\n",
            r.name, r.compress_mb_s, r.decompress_mb_s
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Run the measurement and write `path`. Returns the rendered JSON (also
/// echoed by the caller for CI logs).
pub fn write_snapshot(path: &str, pr: u32, elems: usize, reps: usize) -> std::io::Result<String> {
    let rows = measure(elems, reps);
    let json = render(pr, elems, reps, &rows);
    std::fs::write(path, &json)?;
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_has_all_hot_codecs_and_valid_shape() {
        let rows = measure(512, 1);
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        for hot in ["gorilla", "chimp128", "fpzip", "pfpc", "buff"] {
            assert!(names.contains(&hot), "{hot} missing from snapshot");
        }
        let json = render(5, 512, 1, &rows);
        // Minimal structural checks without a JSON parser: balanced
        // braces, schema line, one entry per codec.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert!(json.contains("\"schema\": \"fcbench-perf-v1\""));
        for r in &rows {
            assert!(json.contains(&format!("\"{}\"", r.name)));
            assert!(r.compress_mb_s.is_finite() && r.compress_mb_s > 0.0);
            assert!(r.decompress_mb_s.is_finite() && r.decompress_mb_s > 0.0);
        }
    }
}

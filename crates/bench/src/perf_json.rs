//! Machine-readable perf snapshots: `BENCH_<pr>.json`.
//!
//! The `fcbench bench-json` subcommand measures steady-state
//! `compress_into`/`decompress_into` throughput for every registered codec
//! over a small synthetic corpus and writes one JSON file. CI regenerates
//! it on a tiny budget each run, so successive PRs leave a diffable perf
//! trajectory (the numbers are only comparable within one machine/run —
//! the value is the *relative* movement between codecs and PRs).
//!
//! The JSON is hand-assembled: the workspace's `serde` is an offline
//! no-op shim, and the schema is two levels deep.

use crate::codecs::full_registry;
use fcbench_core::pool::{PoolConfig, WorkerPool};
use fcbench_core::FloatData;
use fcbench_datasets::{find, generate};
use std::time::Instant;

/// Snapshot schema identifier, bumped on layout changes (v2 added the
/// FCDB2 `container` write/read section; v3 added the `env` block and the
/// `serve` section with loopback request p50/p99 at several connection
/// counts). Consumers diffing across PRs should key on this field —
/// earlier snapshots simply lack the newer sections, so backfill-safe
/// tooling treats a missing section as "not measured", never an error.
pub const SCHEMA: &str = "fcbench-perf-v3";

/// Datasets making up the corpus: one representative per domain, matching
/// the `throughput` bench's selection.
pub const CORPUS: [&str; 4] = ["msg-bt", "citytemp", "acs-wht", "tpcDS-store"];

struct CodecRates {
    name: &'static str,
    compress_mb_s: f64,
    decompress_mb_s: f64,
}

/// Best-of-`reps` throughput in MB/s (decimal) for one closure.
fn rate_mb_s(raw_bytes: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    raw_bytes as f64 / best / 1e6
}

/// Measure every codec over the corpus. Codecs that reject a dataset (the
/// paper's "-" cells) simply skip it; a codec that rejects the whole
/// corpus is omitted from the snapshot.
fn measure(elems: usize, reps: usize) -> Vec<CodecRates> {
    let registry = full_registry();
    let corpus: Vec<FloatData> = CORPUS
        .iter()
        .map(|name| generate(&find(name).expect("catalog dataset"), elems))
        .collect();

    let mut rows = Vec::new();
    let mut payload = Vec::new();
    let mut out = FloatData::scratch();
    for entry in registry.iter() {
        let codec = entry.codec();
        let mut c_rates = Vec::new();
        let mut d_rates = Vec::new();
        for data in &corpus {
            // Warm-up also sizes the reused buffers and skips "-" cells.
            let Ok(n) = codec.compress_into(data, &mut payload) else {
                continue;
            };
            let raw = data.bytes().len();
            c_rates.push(rate_mb_s(raw, reps, || {
                std::hint::black_box(codec.compress_into(data, &mut payload).expect("compress"));
            }));
            codec
                .decompress_into(&payload[..n], data.desc(), &mut out)
                .expect("decompress");
            d_rates.push(rate_mb_s(raw, reps, || {
                codec
                    .decompress_into(&payload[..n], data.desc(), &mut out)
                    .expect("decompress");
            }));
        }
        if c_rates.is_empty() {
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        rows.push(CodecRates {
            name: entry.name(),
            compress_mb_s: mean(&c_rates),
            decompress_mb_s: mean(&d_rates),
        });
    }
    rows
}

/// Codecs measured through the FCDB2 container path: the database-side
/// rows of the snapshot (a fast XOR codec, the recommended CPU stack, and
/// the hash-predictor baseline from the predictor family).
pub const CONTAINER_CODECS: [&str; 3] = ["gorilla", "bitshuffle-zstd", "dfcm"];

/// Container page size used for the snapshot, in elements.
pub const CONTAINER_CHUNK_ELEMS: usize = 4096;

struct ContainerRates {
    name: &'static str,
    write_mb_s: f64,
    read_mb_s: f64,
}

/// End-to-end FCDB2 throughput: streaming pooled container writes to a
/// temp file, and read + pooled decode back — the three-primitive I/O
/// path Table 11 times, as MB/s of raw column bytes.
fn measure_container(elems: usize, reps: usize) -> Vec<ContainerRates> {
    use fcbench_dbsim::{read_container, write_container_pooled, ColumnData};
    let registry = full_registry();
    let pool = WorkerPool::new(PoolConfig::for_host());
    let data = generate(&find("tpcDS-store").expect("catalog dataset"), elems);
    let columns = vec![match data.desc().precision {
        fcbench_core::Precision::Double => {
            ColumnData::from_f64("c0", &data.to_f64_vec().expect("precision checked"))
        }
        fcbench_core::Precision::Single => {
            ColumnData::from_f32("c0", &data.to_f32_vec().expect("precision checked"))
        }
    }];
    let raw = columns[0].bytes.len();

    let mut rows = Vec::new();
    for name in CONTAINER_CODECS {
        let codec = registry.get(name).expect("registered codec");
        let path =
            std::env::temp_dir().join(format!("fcbench-perfjson-{}-{name}", std::process::id()));
        let write_mb_s = rate_mb_s(raw, reps, || {
            write_container_pooled(&path, &pool, &codec, &columns, CONTAINER_CHUNK_ELEMS)
                .expect("container write");
        });
        let read_mb_s = rate_mb_s(raw, reps, || {
            let read = read_container(&path).expect("container read");
            for col in &read.table.columns {
                std::hint::black_box(col.decode_pooled(&pool, &codec).expect("decode"));
            }
        });
        std::fs::remove_file(&path).ok();
        rows.push(ContainerRates {
            name,
            write_mb_s,
            read_mb_s,
        });
    }
    rows
}

/// Connection counts for the serve-path rows: the scaling sweep the
/// serving layer is judged on.
pub const SERVE_CONNECTIONS: [usize; 4] = [1, 8, 64, 256];

/// Codec driven through the loopback server (thread-scalable, accepts
/// every corpus shape, fast enough that the measurement is the serving
/// path rather than the kernel).
pub const SERVE_CODEC: &str = "gorilla";

/// Block size for serve-path COMPRESS requests, in elements.
pub const SERVE_BLOCK_ELEMS: usize = 1024;

struct ServeRates {
    connections: usize,
    /// Total COMPRESS requests served across all connections.
    requests: usize,
    /// Server-side request latency quantiles (`serve.request.compress`),
    /// read back over the wire via `STATS_V2`.
    p50_us: f64,
    p99_us: f64,
    /// Aggregate requests per second over the measurement wall time.
    rps: f64,
}

/// Drive a loopback `FCS1` server at each connection count and read the
/// serve-path latency distribution back out of the server's own telemetry
/// (`STATS_V2`), so the p50/p99 rows are what the *server* measured —
/// queue effects included — not a client-side stopwatch. Each round gets
/// a fresh server and pool so its histograms cover exactly that round.
fn measure_serve(elems: usize, reps: usize) -> Vec<ServeRates> {
    let data = generate(&find("citytemp").expect("catalog dataset"), elems);
    let per_client = reps.clamp(1, 8);
    SERVE_CONNECTIONS
        .iter()
        .map(|&conns| serve_round(conns, &data, per_client))
        .collect()
}

/// One serve-bench round: fresh server and pool, `conns` concurrent
/// clients issuing `per_client` COMPRESS requests each, quantiles from
/// the server's own histograms.
fn serve_round(conns: usize, data: &FloatData, per_client: usize) -> ServeRates {
    use fcbench_serve::{Client, ServeConfig, Server};
    use std::sync::Arc;

    let registry = Arc::new(full_registry());
    let pool = Arc::new(WorkerPool::new(PoolConfig::for_host()));
    let server =
        Server::bind("127.0.0.1:0", registry, pool, ServeConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let running = server.spawn();

    let t = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|_| {
            let data = data.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..per_client {
                    std::hint::black_box(
                        client
                            .compress(SERVE_CODEC, &data, SERVE_BLOCK_ELEMS)
                            .expect("serve compress"),
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("serve client thread");
    }
    let wall = t.elapsed().as_secs_f64();

    let mut admin = Client::connect(addr).expect("connect admin");
    let v2 = admin.stats_v2().expect("stats_v2");
    let hist = v2
        .histogram("serve.request.compress")
        .expect("compress latency histogram");
    let requests = conns * per_client;
    assert_eq!(hist.count() as usize, requests, "every request was timed");
    let row = ServeRates {
        connections: conns,
        requests,
        p50_us: hist.p50() as f64 / 1e3,
        p99_us: hist.p99() as f64 / 1e3,
        rps: requests as f64 / wall.max(f64::EPSILON),
    };
    drop(admin);
    running.shutdown().expect("serve shutdown");
    row
}

/// Render the snapshot as pretty-printed JSON.
fn render(
    pr: u32,
    elems: usize,
    reps: usize,
    rows: &[CodecRates],
    container: &[ContainerRates],
    serve: &[ServeRates],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"pr\": {pr},\n"));
    s.push_str(&format!("  \"elems\": {elems},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    // Environment block (v3): what the numbers were taken on, so a
    // trajectory diff can tell a real regression from a host change.
    let host = PoolConfig::for_host();
    s.push_str("  \"env\": {\n");
    s.push_str(&format!("    \"threads\": {},\n", host.threads));
    s.push_str(&format!("    \"queue_depth\": {},\n", host.queue_depth));
    s.push_str(&format!("    \"block_elems\": {},\n", host.block_elems));
    s.push_str(&format!("    \"os\": \"{}\",\n", std::env::consts::OS));
    s.push_str(&format!("    \"arch\": \"{}\"\n", std::env::consts::ARCH));
    s.push_str("  },\n");
    let corpus = CORPUS
        .iter()
        .map(|d| format!("\"{d}\""))
        .collect::<Vec<_>>()
        .join(", ");
    s.push_str(&format!("  \"corpus\": [{corpus}],\n"));
    s.push_str("  \"codecs\": {\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}\": {{\"compress_mb_s\": {:.2}, \"decompress_mb_s\": {:.2}}}{comma}\n",
            r.name, r.compress_mb_s, r.decompress_mb_s
        ));
    }
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"container\": {{\n    \"chunk_elems\": {CONTAINER_CHUNK_ELEMS},\n"
    ));
    for (i, r) in container.iter().enumerate() {
        let comma = if i + 1 == container.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}\": {{\"container_write_mb_s\": {:.2}, \"container_read_mb_s\": {:.2}}}{comma}\n",
            r.name, r.write_mb_s, r.read_mb_s
        ));
    }
    s.push_str("  },\n");
    // Serve section (v3): server-measured request latency over loopback,
    // one row per connection count.
    s.push_str(&format!(
        "  \"serve\": {{\n    \"codec\": \"{SERVE_CODEC}\",\n    \"block_elems\": {SERVE_BLOCK_ELEMS},\n    \"rows\": [\n"
    ));
    for (i, r) in serve.iter().enumerate() {
        let comma = if i + 1 == serve.len() { "" } else { "," };
        s.push_str(&format!(
            "      {{\"connections\": {}, \"requests\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"rps\": {:.0}}}{comma}\n",
            r.connections, r.requests, r.p50_us, r.p99_us, r.rps
        ));
    }
    s.push_str("    ]\n  }\n}\n");
    s
}

/// Run the measurement and write `path`. Returns the rendered JSON (also
/// echoed by the caller for CI logs).
pub fn write_snapshot(path: &str, pr: u32, elems: usize, reps: usize) -> std::io::Result<String> {
    let rows = measure(elems, reps);
    let container = measure_container(elems, reps);
    let serve = measure_serve(elems, reps);
    let json = render(pr, elems, reps, &rows, &container, &serve);
    std::fs::write(path, &json)?;
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_has_all_hot_codecs_and_valid_shape() {
        let rows = measure(512, 1);
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        for hot in [
            "gorilla",
            "chimp128",
            "fpzip",
            "pfpc",
            "buff",
            "last-value",
            "last-stride",
            "dfcm",
        ] {
            assert!(names.contains(&hot), "{hot} missing from snapshot");
        }
        let container = measure_container(512, 1);
        // One tiny serve row is enough for shape checks: the full
        // connection sweep runs in `bench-json` proper, not unit tests.
        let serve = vec![ServeRates {
            connections: 1,
            requests: 2,
            p50_us: 120.0,
            p99_us: 450.0,
            rps: 1000.0,
        }];
        let json = render(8, 512, 1, &rows, &container, &serve);
        // Minimal structural checks without a JSON parser: balanced
        // braces, schema line, one entry per codec.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert!(json.contains("\"schema\": \"fcbench-perf-v3\""));
        assert!(json.contains("\"env\""));
        assert!(json.contains("\"threads\""));
        assert!(json.contains("\"serve\""));
        assert!(json.contains("\"p99_us\": 450.0"));
        for r in &rows {
            assert!(json.contains(&format!("\"{}\"", r.name)));
            assert!(r.compress_mb_s.is_finite() && r.compress_mb_s > 0.0);
            assert!(r.decompress_mb_s.is_finite() && r.decompress_mb_s > 0.0);
        }
        assert_eq!(container.len(), CONTAINER_CODECS.len());
        for r in &container {
            assert!(json.contains("container_write_mb_s"));
            assert!(r.write_mb_s.is_finite() && r.write_mb_s > 0.0);
            assert!(r.read_mb_s.is_finite() && r.read_mb_s > 0.0);
        }
    }

    #[test]
    fn serve_round_quantiles_come_from_the_server_histogram() {
        let data = generate(&find("citytemp").expect("catalog dataset"), 256);
        let row = serve_round(2, &data, 2);
        assert_eq!(row.connections, 2);
        assert_eq!(row.requests, 4);
        assert!(row.p50_us > 0.0, "server timed the requests");
        assert!(row.p99_us >= row.p50_us);
        assert!(row.rps.is_finite() && row.rps > 0.0);
    }
}

//! The `FCS1` TCP server: many client connections, one shared
//! [`WorkerPool`] engine.
//!
//! Each accepted connection gets a handler thread, but compression work
//! does not stay on it: handlers feed their streams through
//! [`FrameWriter`]/[`FrameReader`], which fan blocks out to the server's
//! single warm pool under the drain-own-oldest saturation discipline — so
//! N clients share the engine without deadlock, and a per-connection
//! in-flight cap ([`ServeConfig::max_inflight_per_conn`]) keeps any one
//! stream from pinning every job slot. Codecs the registry does not mark
//! `thread_scalable` (the GPU-simulated methods) run inline on the handler
//! thread, exactly as registry-built pipelines run them.
//!
//! Protocol errors are *request* failures: the handler replies with a typed
//! error frame and — whenever the request body was fully consumed, so
//! framing is intact — keeps serving the connection. A body it cannot skip
//! (a petabyte-claiming record, a malformed header) closes that connection;
//! nothing a client sends takes the server down.

use crate::protocol::{self, CodecListing};
use crate::stats::{ServerStats, StatsSnapshot};
use fcbench_core::registry::RegistryEntry;
use fcbench_core::stream::{FrameReader, FrameWriter};
use fcbench_core::{CodecRegistry, DataDesc, Error, Result, WorkerPool};
use fcbench_telemetry::{Counter, Gauge, Histogram, HistogramFamily, Registry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket-read granularity for streaming request bodies into the engine.
const BODY_CHUNK: usize = 64 * 1024;

/// How often the nonblocking accept loop re-polls the listener (and the
/// shutdown flag) when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Ceiling on one dataset's raw element bytes, in both directions:
    /// `COMPRESS` rejects larger inputs, `DECOMPRESS` rejects streams
    /// larger than this or claiming a larger decoded size. This is the
    /// gate that turns a petabyte-claiming record into a typed reply
    /// instead of an allocation.
    pub max_request_bytes: usize,
    /// Per-connection cap on blocks in flight on the shared pool (see
    /// [`FrameWriter::max_in_flight`]).
    pub max_inflight_per_conn: usize,
    /// Socket read-timeout granularity; idle handlers poll the shutdown
    /// flag at this cadence.
    pub idle_poll: Duration,
    /// How long a mid-request read or write may stall before the
    /// connection is dropped.
    pub stall_limit: Duration,
    /// Patience for mid-request reads once shutdown has been signalled.
    pub shutdown_grace: Duration,
    /// Socket write deadline: one `write` that makes no progress for this
    /// long (a peer that stopped reading its reply) fails the connection
    /// and counts `serve.timeouts.write`.
    pub write_deadline: Duration,
    /// How long a connection may sit at a request boundary with no verb
    /// byte before it is reaped (`serve.timeouts.idle`). Keep-alive
    /// clients that speak within the window are unaffected.
    pub idle_timeout: Duration,
    /// Deadline on the `HELLO` handshake — deliberately shorter than
    /// [`idle_timeout`](Self::idle_timeout), so a pre-handshake socket
    /// (a port scanner, a slow-loris opener) cannot pin a handler thread
    /// for the full idle window.
    pub handshake_deadline: Duration,
    /// Load-shedding threshold: when more than this many data requests
    /// (`COMPRESS`/`DECOMPRESS`) are in flight server-wide, further ones
    /// are refused with a typed `ERR_BUSY` reply carrying
    /// [`busy_retry_after`](Self::busy_retry_after) instead of queueing
    /// on the saturated engine. `0` picks an automatic ceiling well above
    /// the pool's queue depth; `usize::MAX` disables shedding.
    pub shed_max_inflight: usize,
    /// The retry-after hint an `ERR_BUSY` reply carries.
    pub busy_retry_after: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_request_bytes: 64 * 1024 * 1024,
            max_inflight_per_conn: 4,
            idle_poll: Duration::from_millis(50),
            stall_limit: Duration::from_secs(30),
            shutdown_grace: Duration::from_secs(2),
            write_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(300),
            handshake_deadline: Duration::from_secs(5),
            shed_max_inflight: 0,
            busy_retry_after: Duration::from_millis(50),
        }
    }
}

/// Pre-resolved latency handles on the server's telemetry registry (the
/// pool's registry, so pool, frame-stream, and serve metrics share one
/// exposition and one `STATS_V2` body). Everything here is resolved once
/// at bind time; recording on the request path is a single relaxed
/// atomic op per sample.
struct ServeMetrics {
    registry: Arc<Registry>,
    /// Wall time per verb, refusals included — what a client waited.
    req_compress: Histogram,
    req_decompress: Histogram,
    req_list_codecs: Histogram,
    req_stats: Histogram,
    req_stats_v2: Histogram,
    /// Served-request wall time by codec (`serve.request.codec.<name>`),
    /// recorded when the reply body is ready.
    req_codec: HistogramFamily,
    /// Phase breakdown of the two data verbs: reading the request off
    /// the socket, waiting on the engine, writing the reply.
    phase_decode: Histogram,
    phase_engine: Histogram,
    phase_reply_write: Histogram,
    /// Connection lifetime, accept to hangup.
    conn_lifetime: Histogram,
    /// Data requests being served right now, server-wide — the admission
    /// gauge the shedding threshold is compared against.
    inflight: Gauge,
    /// Requests refused with `ERR_BUSY` under load.
    shed: Counter,
    /// Mid-request read stalls that exhausted the server's patience.
    timeouts_read: Counter,
    /// Reply writes that timed out against a peer that stopped reading.
    timeouts_write: Counter,
    /// Connections reaped at a boundary: idle past the window, or a
    /// handshake that never arrived.
    timeouts_idle: Counter,
}

impl ServeMetrics {
    fn new(registry: &Arc<Registry>) -> Self {
        ServeMetrics {
            registry: Arc::clone(registry),
            req_compress: registry.histogram("serve.request.compress"),
            req_decompress: registry.histogram("serve.request.decompress"),
            req_list_codecs: registry.histogram("serve.request.list_codecs"),
            req_stats: registry.histogram("serve.request.stats"),
            req_stats_v2: registry.histogram("serve.request.stats_v2"),
            req_codec: registry.histogram_family("serve.request.codec"),
            phase_decode: registry.histogram("serve.phase.decode"),
            phase_engine: registry.histogram("serve.phase.engine"),
            phase_reply_write: registry.histogram("serve.phase.reply_write"),
            conn_lifetime: registry.histogram("serve.connection.lifetime"),
            inflight: registry.gauge("serve.requests.inflight"),
            shed: registry.counter("serve.requests.shed"),
            timeouts_read: registry.counter("serve.timeouts.read"),
            timeouts_write: registry.counter("serve.timeouts.write"),
            timeouts_idle: registry.counter("serve.timeouts.idle"),
        }
    }

    /// The per-verb latency histogram, or `None` for an unknown verb.
    fn verb_histogram(&self, verb: u8) -> Option<&Histogram> {
        match verb {
            protocol::VERB_COMPRESS => Some(&self.req_compress),
            protocol::VERB_DECOMPRESS => Some(&self.req_decompress),
            protocol::VERB_LIST_CODECS => Some(&self.req_list_codecs),
            protocol::VERB_STATS => Some(&self.req_stats),
            protocol::VERB_STATS_V2 => Some(&self.req_stats_v2),
            _ => None,
        }
    }

    /// Record a served request's wall time against its codec.
    fn note_codec(&self, name: &str, elapsed: Duration) {
        if let Some(h) = self.req_codec.get(name) {
            h.record_duration(elapsed);
        }
    }
}

struct Shared {
    registry: Arc<CodecRegistry>,
    pool: Arc<WorkerPool>,
    stats: ServerStats,
    metrics: ServeMetrics,
    config: ServeConfig,
    /// [`ServeConfig::shed_max_inflight`] with `0` resolved to the
    /// automatic ceiling (64 data requests per pool job slot, at least
    /// 1024 — far past the point where queueing more helps anyone).
    shed_threshold: usize,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Admission control for the data verbs: shed when the in-flight
    /// gauge (which already counts the request asking) exceeds the
    /// threshold. Cheap — one relaxed load — so it runs per request.
    fn should_shed(&self) -> bool {
        self.metrics.inflight.get() > self.shed_threshold as u64
    }

    /// The typed error a shed request is refused with.
    fn busy(&self) -> Error {
        Error::Busy {
            retry_after_ms: u64::try_from(self.config.busy_retry_after.as_millis())
                .unwrap_or(u64::MAX),
        }
    }
}

/// A bound-but-not-yet-running `FCS1` server. Construct with
/// [`Server::bind`], then either [`run`](Server::run) it on the current
/// thread or [`spawn`](Server::spawn) it onto a background one.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cheap handle onto a server: address, live stats, shutdown signal.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A server running on a background thread (from [`Server::spawn`]).
pub struct RunningServer {
    handle: ServerHandle,
    join: JoinHandle<Result<()>>,
}

impl Server {
    /// Bind `addr` and prepare to serve `registry`'s codecs on `pool`.
    /// Pass an OS-assigned port (`127.0.0.1:0`) in tests and read the real
    /// one back from [`local_addr`](Server::local_addr).
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<CodecRegistry>,
        pool: Arc<WorkerPool>,
        config: ServeConfig,
    ) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Serve metrics live on the pool's registry: one snapshot (and one
        // STATS_V2 body) spans the request layer, the frame streams, and
        // the engine underneath them.
        let metrics = ServeMetrics::new(pool.telemetry());
        let stats = ServerStats::new(&registry, &metrics.registry);
        let shed_threshold = match config.shed_max_inflight {
            0 => (pool.config().queue_depth.saturating_mul(64)).max(1024),
            n => n,
        };
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                registry,
                pool,
                stats,
                metrics,
                config,
                shed_threshold,
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stats and shutdown, usable from any thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accept and serve connections until shutdown is signalled through a
    /// [`ServerHandle`]. Each connection gets a handler thread; on
    /// shutdown the loop stops accepting and joins every handler, so
    /// accepted connections drain before this returns.
    ///
    /// The listener polls nonblocking every few milliseconds so the shutdown
    /// flag is always noticed — a blocking `accept` would need a wake-up
    /// self-connection, which can fail (interface-specific binds,
    /// saturated backlogs) and leave shutdown hanging forever.
    pub fn run(self) -> Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.shared.shutting_down() {
                        drop(stream);
                        break;
                    }
                    let shared = Arc::clone(&self.shared);
                    // A failed spawn (thread exhaustion under a connection
                    // flood) drops that one connection — never the server.
                    let spawned = std::thread::Builder::new()
                        .name("fcbench-serve-conn".into())
                        .spawn(move || handle_connection(stream, &shared));
                    if let Ok(h) = spawned {
                        handlers.push(h);
                    }
                    handlers.retain(|h| !h.is_finished());
                }
                Err(_) if self.shared.shutting_down() => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    // Every other accept failure is treated as transient —
                    // fd exhaustion under a connection flood (EMFILE), a
                    // peer resetting while queued in the backlog
                    // (ECONNABORTED) — because exiting would drop every
                    // connection already being served. Conditions like
                    // these clear on their own; a truly dead listener
                    // degrades to this poll loop until shutdown, which the
                    // flag check above still honours.
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }

    /// [`run`](Server::run) on a background thread.
    pub fn spawn(self) -> RunningServer {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("fcbench-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawn server accept thread");
        RunningServer { handle, join }
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The server's telemetry registry (shared with its worker pool):
    /// request/phase latency histograms, serving counters, engine and
    /// frame-stream metrics. Snapshot it, or dump it with
    /// [`Registry::render_text`].
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.shared.metrics.registry
    }

    /// Signal a graceful shutdown: the accept loop (which polls the flag
    /// every few milliseconds) stops taking new connections and existing
    /// handlers exit at their next request boundary (mid-request work gets
    /// [`ServeConfig::shutdown_grace`]). Returns immediately; use
    /// [`RunningServer::shutdown`] to also wait for the drain.
    pub fn signal_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }
}

impl RunningServer {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// A cloneable handle (stats, shutdown signal).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// A point-in-time copy of the serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.handle.stats()
    }

    /// Gracefully shut down: stop accepting, drain accepted connections,
    /// join the accept thread.
    pub fn shutdown(self) -> Result<()> {
        self.handle.signal_shutdown();
        self.join
            .join()
            .map_err(|_| Error::Io("server accept thread panicked".into()))?
    }
}

/// Whether the connection survives the request it just served.
enum Flow {
    Continue,
    Close,
}

/// What happened while waiting at a message boundary.
enum Boundary {
    /// A full message head arrived.
    Message,
    /// The peer closed (or shutdown was signalled) — end quietly.
    Closed,
    /// The peer stayed silent past the caller's budget.
    TimedOut,
}

/// One connection's view of the socket: counts bytes for [`ServerStats`]
/// and absorbs read timeouts with the mid-message patience policy (stall
/// limits, shutdown grace). Boundary reads — where blocking forever on an
/// idle keep-alive connection is correct — go through
/// [`Conn::read_message_start`] instead.
struct Conn<'a> {
    stream: &'a TcpStream,
    shared: &'a Shared,
    stalled_since: Option<Instant>,
    /// Has the request currently being served been booked in
    /// [`ServerStats`] (ok or failed)? Keeps the accounting exactly-once:
    /// an error propagating out of a handler books a failure only if the
    /// request was never counted (mid-body disconnect), not when a counted
    /// request's reply write failed afterwards.
    accounted: bool,
}

impl Conn<'_> {
    /// Book the in-flight request as served, before the reply is written —
    /// a client that has read its reply must already see itself counted.
    fn count_ok(&mut self) {
        self.accounted = true;
        self.shared.stats.request_ok();
    }

    /// Book the in-flight request as failed.
    fn count_failed(&mut self) {
        self.accounted = true;
        self.shared.stats.request_failed();
    }
}

impl Conn<'_> {
    fn stall_budget(&self) -> Duration {
        if self.shared.shutting_down() {
            self.shared.config.shutdown_grace
        } else {
            self.shared.config.stall_limit
        }
    }

    /// Wait (up to `budget`) for the first byte(s) of a message, then read
    /// the rest. [`Boundary::Closed`] means the connection ended cleanly
    /// before a message started: the peer closed, or shutdown was
    /// signalled while idle. [`Boundary::TimedOut`] means the peer stayed
    /// silent past the budget — the caller reaps the connection (idle
    /// keep-alive expiry, or a handshake that never came).
    fn read_message_start(&mut self, buf: &mut [u8], budget: Duration) -> Result<Boundary> {
        debug_assert!(!buf.is_empty());
        let waiting_since = Instant::now();
        let got = loop {
            match self.stream_read(buf) {
                Ok(0) => return Ok(Boundary::Closed),
                Ok(n) => break n,
                Err(e) if is_timeout(&e) => {
                    if self.shared.shutting_down() {
                        return Ok(Boundary::Closed);
                    }
                    if waiting_since.elapsed() >= budget {
                        return Ok(Boundary::TimedOut);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        };
        if got < buf.len() {
            let rest = &mut buf[got..];
            protocol::read_exact(self, rest)?;
        }
        Ok(Boundary::Message)
    }

    fn stream_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = (&mut &*self.stream).read(buf)?;
        self.shared.stats.add_bytes_in(n as u64);
        Ok(n)
    }

    /// Read up to `buf.len()` body bytes, returning as soon as any arrive.
    /// Every idle poll tick invokes `on_idle` — the compress path flushes
    /// finished pool jobs there, so a trickling client cannot keep
    /// completed job slots pinned away from other connections. The
    /// mid-message stall budget still applies.
    fn read_body_some(
        &mut self,
        buf: &mut [u8],
        mut on_idle: impl FnMut() -> Result<()>,
    ) -> Result<usize> {
        loop {
            match self.stream_read(buf) {
                Ok(0) => {
                    return Err(Error::Corrupt("connection closed mid-message".into()));
                }
                Ok(n) => {
                    self.stalled_since = None;
                    return Ok(n);
                }
                Err(e) if is_timeout(&e) => {
                    on_idle()?;
                    let since = *self.stalled_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= self.stall_budget() {
                        self.stalled_since = None;
                        self.shared.metrics.timeouts_read.inc();
                        return Err(Error::Io(
                            "request read stalled past the server's patience".into(),
                        ));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl Read for Conn<'_> {
    /// Mid-message read: retries timeouts until the stall budget runs out,
    /// so length-prefixed framing never desyncs under a slow client.
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.stream_read(buf) {
                Ok(n) => {
                    self.stalled_since = None;
                    return Ok(n);
                }
                Err(e) if is_timeout(&e) => {
                    let since = *self.stalled_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= self.stall_budget() {
                        self.stalled_since = None;
                        self.shared.metrics.timeouts_read.inc();
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "request read stalled past the server's patience",
                        ));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

impl Write for Conn<'_> {
    /// Reply write under the socket's write deadline
    /// ([`ServeConfig::write_deadline`]): a peer that stopped reading
    /// fails the write with a timeout, counted before it propagates.
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match (&mut &*self.stream).write(buf) {
            Ok(n) => {
                self.shared.stats.add_bytes_out(n as u64);
                Ok(n)
            }
            Err(e) => {
                if is_timeout(&e) {
                    self.shared.metrics.timeouts_write.inc();
                }
                Err(e)
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        (&mut &*self.stream).flush()
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // The guard holds this connection's slot in the active gauge and
    // releases it on drop — no exit path (error, panic unwinding through
    // the handler, early return) can leak an increment.
    let _active = shared.stats.connection_opened();
    let opened = Instant::now();
    // Connection-level I/O failures are that connection's problem alone;
    // request accounting (including deaths mid-request) happens inside.
    let _ = serve_connection(&stream, shared);
    shared
        .metrics
        .conn_lifetime
        .record_duration(opened.elapsed());
}

fn serve_connection(stream: &TcpStream, shared: &Shared) -> Result<()> {
    // Some platforms hand accepted sockets the listener's nonblocking
    // flag; the timeout-based read discipline below needs blocking mode.
    stream.set_nonblocking(false)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(shared.config.idle_poll))?;
    stream.set_write_timeout(Some(shared.config.write_deadline))?;
    let mut conn = Conn {
        stream,
        shared,
        stalled_since: None,
        accounted: false,
    };

    // Handshake: garbage gets a typed reply and the connection is done.
    // The wait is bounded by its own (short) deadline so a pre-handshake
    // socket cannot pin this handler thread for the idle window.
    let mut hello = [0u8; 6];
    match conn.read_message_start(&mut hello, shared.config.handshake_deadline)? {
        Boundary::Message => {}
        Boundary::Closed => return Ok(()),
        Boundary::TimedOut => {
            shared.metrics.timeouts_idle.inc();
            return Ok(());
        }
    }
    if let Err(e) = protocol::check_client_hello(&hello) {
        // Same half-close/drain discipline as every other refusal that
        // closes the connection: an HTTP probe (or a client pipelining
        // hello+request) has unread bytes queued, and dropping the socket
        // over them would RST away the typed reply.
        let _ = fail_close(&mut conn, &e)?;
        return Ok(());
    }
    protocol::write_ok_reply(
        &mut conn,
        &protocol::hello_body(shared.config.max_request_bytes as u64),
    )?;

    // Request loop: one verb frame at a time, in order. A connection
    // silent past the idle window is reaped at the boundary — nothing is
    // half-sent there, so a quiet close is correct and cheap.
    loop {
        let mut verb = [0u8; 1];
        match conn.read_message_start(&mut verb, shared.config.idle_timeout)? {
            Boundary::Message => {}
            Boundary::Closed => return Ok(()),
            Boundary::TimedOut => {
                shared.metrics.timeouts_idle.inc();
                return Ok(());
            }
        }
        conn.accounted = false;
        let started = Instant::now();
        // The guard counts this request in the admission gauge for as
        // long as it is being served; the shed check reads the gauge
        // *with this request included*, so a threshold of N admits N
        // concurrent data requests and refuses the N+1th.
        let _inflight = shared.metrics.inflight.inc_scoped();
        let served = match verb[0] {
            protocol::VERB_COMPRESS if shared.should_shed() => shed_compress(&mut conn, shared),
            protocol::VERB_DECOMPRESS if shared.should_shed() => shed_decompress(&mut conn, shared),
            protocol::VERB_COMPRESS => handle_compress(&mut conn, shared, started),
            protocol::VERB_DECOMPRESS => handle_decompress(&mut conn, shared, started),
            protocol::VERB_LIST_CODECS => handle_list_codecs(&mut conn, shared),
            protocol::VERB_STATS => handle_stats(&mut conn, shared),
            protocol::VERB_STATS_V2 => handle_stats_v2(&mut conn, shared),
            other => fail_close(
                &mut conn,
                &Error::Corrupt(format!("unknown request verb {other}")),
            ),
        };
        // Refusals count too: a typed error reply is still time the
        // client waited on this verb.
        if let Some(h) = shared.metrics.verb_histogram(verb[0]) {
            h.record_duration(started.elapsed());
        }
        let flow = match served {
            Ok(f) => f,
            Err(e) => {
                // The request died on connection I/O: a mid-body
                // disconnect never reached its per-request accounting —
                // book it failed, exactly once. (A counted request whose
                // reply write failed stays counted as it was.)
                if !conn.accounted {
                    conn.count_failed();
                }
                return Err(e);
            }
        };
        if matches!(flow, Flow::Close) {
            return Ok(());
        }
    }
}

/// Reply with a typed error; the request body was consumed, so the
/// connection keeps serving.
fn fail_continue(conn: &mut Conn<'_>, err: &Error) -> Result<Flow> {
    conn.count_failed();
    protocol::write_err_reply(conn, err)?;
    Ok(Flow::Continue)
}

/// How much unread request body `fail_close` drains before giving up on a
/// graceful close (a hostile sender mid-petabyte gets its RST after this).
const CLOSE_DRAIN_LIMIT: usize = 256 * 1024;

/// Reply with a typed error (best effort) and close: framing is broken or
/// the body cannot be skipped. Dropping a socket with unread inbound bytes
/// makes TCP send RST, which can discard the queued error reply before
/// the client reads it — so half-close the write side (FIN after the
/// reply) and drain what the peer already sent, bounded, before dropping.
fn fail_close(conn: &mut Conn<'_>, err: &Error) -> Result<Flow> {
    conn.count_failed();
    let _ = protocol::write_err_reply(conn, err);
    let _ = conn.flush();
    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < CLOSE_DRAIN_LIMIT {
        match conn.stream_read(&mut sink) {
            Ok(0) => break, // peer saw our FIN and closed
            Ok(n) => drained += n,
            Err(e) if is_timeout(&e) => break, // peer quiet for an idle tick
            Err(_) => break,
        }
    }
    Ok(Flow::Close)
}

fn read_compress_header(conn: &mut Conn<'_>) -> Result<(String, DataDesc, u64)> {
    let name = protocol::decode_name(conn)?;
    let desc = protocol::decode_desc(conn)?;
    let block_elems = protocol::read_u64(conn)?;
    Ok((name, desc, block_elems))
}

/// Read and discard `len` body bytes to keep the connection's framing
/// intact after a request-level refusal.
fn discard_body(conn: &mut Conn<'_>, len: usize) -> Result<()> {
    let mut chunk = [0u8; 4096];
    let mut remaining = len;
    while remaining > 0 {
        let take = chunk.len().min(remaining);
        protocol::read_exact(conn, &mut chunk[..take])?;
        remaining -= take;
    }
    Ok(())
}

/// Shed a `COMPRESS` under load: consume the request (header and body) so
/// framing stays intact, then refuse with `ERR_BUSY` and keep the
/// connection — the client retries after the hint without reconnecting.
fn shed_compress(conn: &mut Conn<'_>, shared: &Shared) -> Result<Flow> {
    let (_name, desc, _block_elems) = match read_compress_header(conn) {
        Ok(h) => h,
        Err(e) => return fail_close(conn, &e),
    };
    let body_len = desc.byte_len();
    if body_len > shared.config.max_request_bytes {
        // Too large to skip even when healthy — same close as the
        // served path, but the busy hint tells the client what to fix
        // first (nothing: this request could never succeed here).
        return fail_close(
            conn,
            &Error::Unsupported(format!(
                "request claims {body_len} element bytes; this server accepts at most {}",
                shared.config.max_request_bytes
            )),
        );
    }
    discard_body(conn, body_len)?;
    shared.metrics.shed.inc();
    fail_continue(conn, &shared.busy())
}

/// Shed a `DECOMPRESS` under load; same framing discipline as
/// [`shed_compress`].
fn shed_decompress(conn: &mut Conn<'_>, shared: &Shared) -> Result<Flow> {
    let len = protocol::read_u64(conn)?;
    let cap = protocol::stream_cap(shared.config.max_request_bytes as u64);
    let skippable = usize::try_from(len).ok().filter(|&l| l as u64 <= cap);
    let Some(len) = skippable else {
        return fail_close(
            conn,
            &Error::Unsupported(format!(
                "message declares {len} bytes but this endpoint accepts at most {cap}"
            )),
        );
    };
    discard_body(conn, len)?;
    shared.metrics.shed.inc();
    fail_continue(conn, &shared.busy())
}

fn handle_compress(conn: &mut Conn<'_>, shared: &Shared, started: Instant) -> Result<Flow> {
    // A malformed header desyncs framing: reply, then close.
    let (name, desc, block_elems) = match read_compress_header(conn) {
        Ok(h) => h,
        Err(e) => return fail_close(conn, &e),
    };
    let body_len = desc.byte_len();
    if body_len > shared.config.max_request_bytes {
        // Cannot skip a body this large — typed reply, then close.
        return fail_close(
            conn,
            &Error::Unsupported(format!(
                "request claims {body_len} element bytes; this server accepts at most {}",
                shared.config.max_request_bytes
            )),
        );
    }
    let Ok(block_elems) = usize::try_from(block_elems) else {
        discard_body(conn, body_len)?;
        return fail_continue(
            conn,
            &Error::BadDescriptor("block size exceeds the address space".into()),
        );
    };
    if block_elems == 0 {
        discard_body(conn, body_len)?;
        return fail_continue(
            conn,
            &Error::BadDescriptor("block size must be at least 1 element".into()),
        );
    }
    let Some(entry) = shared.registry.entry(&name) else {
        discard_body(conn, body_len)?;
        return fail_continue(conn, &shared.registry.unknown(&name));
    };

    let mut writer = match FrameWriter::new(
        Vec::new(),
        Arc::clone(entry.codec()),
        desc,
        block_elems,
        engine_for(entry, shared),
    ) {
        Ok(w) => w.max_in_flight(shared.config.max_inflight_per_conn),
        Err(e) => {
            discard_body(conn, body_len)?;
            return fail_continue(conn, &e);
        }
    };

    // Stream the element bytes from the socket into the engine, taking
    // whatever the socket has each round and flushing already-finished
    // blocks while the client is quiet — a trickling sender must not pin
    // completed job slots away from other connections. A codec refusal
    // mid-stream still consumes the rest of the body so the next request
    // on this connection parses cleanly.
    let mut chunk = vec![0u8; BODY_CHUNK.min(body_len.max(1))];
    let mut remaining = body_len;
    let mut refusal: Option<Error> = None;
    while remaining > 0 {
        let take = chunk.len().min(remaining);
        let got = conn.read_body_some(&mut chunk[..take], || {
            if refusal.is_none() {
                if let Err(e) = writer.flush_ready() {
                    refusal = Some(e);
                }
            }
            Ok(())
        })?;
        remaining -= got;
        if refusal.is_none() {
            if let Err(e) = writer.write(&chunk[..got]) {
                refusal = Some(e);
            }
        }
    }
    if let Some(e) = refusal {
        return fail_continue(conn, &e);
    }
    // The body is off the socket; what remains is draining the engine
    // (finish collects the in-flight blocks) and writing the reply.
    shared
        .metrics
        .phase_decode
        .record_duration(started.elapsed());
    let engine_started = Instant::now();
    match writer.finish() {
        Ok(body) => {
            shared
                .metrics
                .phase_engine
                .record_duration(engine_started.elapsed());
            // Count before replying: once the client has read this reply,
            // a stats snapshot must already include the request.
            conn.count_ok();
            shared.stats.count_codec(&name);
            shared.metrics.note_codec(&name, started.elapsed());
            let write_started = Instant::now();
            protocol::write_ok_reply(conn, &body)?;
            shared
                .metrics
                .phase_reply_write
                .record_duration(write_started.elapsed());
            Ok(Flow::Continue)
        }
        Err(e) => fail_continue(conn, &e),
    }
}

fn handle_decompress(conn: &mut Conn<'_>, shared: &Shared, started: Instant) -> Result<Flow> {
    // An implausible declared length (or a truncated body) breaks framing:
    // typed reply, then close. The cap here is on *compressed stream*
    // bytes, with expansion headroom over the raw-byte cap so a stream
    // this very server produced from an in-cap COMPRESS always fits
    // ([`protocol::stream_cap`]); the decoded-size claim gate below still
    // bounds the real allocation.
    let cap = usize::try_from(protocol::stream_cap(shared.config.max_request_bytes as u64))
        .unwrap_or(usize::MAX);
    let body = match protocol::read_sized(conn, cap) {
        Ok(b) => b,
        Err(e) => return fail_close(conn, &e),
    };
    shared
        .metrics
        .phase_decode
        .record_duration(started.elapsed());

    // The FCB3 prologue names the codec and shape; everything after this
    // point consumed the body already, so errors keep the connection.
    let (name, desc, _block_elems) = {
        let mut cursor = &body[..];
        match fcbench_core::frame::decode_stream_header(&mut cursor) {
            Ok(h) => h,
            Err(e) => return fail_continue(conn, &e),
        }
    };
    let Some(entry) = shared.registry.entry(&name) else {
        return fail_continue(conn, &shared.registry.unknown(&name));
    };
    let claim = desc.byte_len();
    if claim > shared.config.max_request_bytes {
        return fail_continue(
            conn,
            &Error::Unsupported(format!(
                "stream claims {claim} decoded bytes; this server accepts at most {}",
                shared.config.max_request_bytes
            )),
        );
    }

    let reader = match FrameReader::new(
        &body[..],
        Arc::clone(entry.codec()),
        engine_for(entry, shared),
    ) {
        Ok(r) => r.max_in_flight(shared.config.max_inflight_per_conn),
        Err(e) => return fail_continue(conn, &e),
    };
    let mut reader = reader;
    // No up-front claim-sized reservation: a 40-byte body with a cap-sized
    // decoded claim must not pin max_request_bytes of memory before a
    // single block has actually decoded. Doubling growth tracks delivered
    // blocks the way read_sized tracks delivered bytes.
    let mut reply = Vec::new();
    if let Err(e) = protocol::encode_desc(&desc, &mut reply) {
        return fail_continue(conn, &e);
    }
    let engine_started = Instant::now();
    loop {
        match reader.next_block() {
            Ok(Some(block)) => reply.extend_from_slice(block),
            Ok(None) => break,
            Err(e) => return fail_continue(conn, &e),
        }
    }
    shared
        .metrics
        .phase_engine
        .record_duration(engine_started.elapsed());
    conn.count_ok();
    shared.stats.count_codec(&name);
    shared.metrics.note_codec(&name, started.elapsed());
    let write_started = Instant::now();
    protocol::write_ok_reply(conn, &reply)?;
    shared
        .metrics
        .phase_reply_write
        .record_duration(write_started.elapsed());
    Ok(Flow::Continue)
}

fn handle_list_codecs(conn: &mut Conn<'_>, shared: &Shared) -> Result<Flow> {
    let listings: Vec<CodecListing> = shared
        .registry
        .iter()
        .map(|e| CodecListing {
            name: e.name().to_string(),
            thread_scalable: e.is_thread_scalable(),
            block_capable: e.is_block_capable(),
        })
        .collect();
    let body = match protocol::encode_listings(&listings) {
        Ok(b) => b,
        Err(e) => return fail_continue(conn, &e),
    };
    conn.count_ok();
    protocol::write_ok_reply(conn, &body)?;
    Ok(Flow::Continue)
}

fn handle_stats(conn: &mut Conn<'_>, shared: &Shared) -> Result<Flow> {
    // Snapshot first so a STATS reply never counts itself, then count
    // before replying like every other verb.
    let body = match shared.stats.snapshot().encode() {
        Ok(b) => b,
        Err(e) => return fail_continue(conn, &e),
    };
    conn.count_ok();
    protocol::write_ok_reply(conn, &body)?;
    Ok(Flow::Continue)
}

fn handle_stats_v2(conn: &mut Conn<'_>, shared: &Shared) -> Result<Flow> {
    // Snapshot-then-count, like STATS: a STATS_V2 reply never counts
    // itself. The body carries the whole registry — pool, frame-stream,
    // and serve metrics, with sparse histogram buckets.
    let body = match protocol::encode_stats_v2(&shared.metrics.registry.snapshot()) {
        Ok(b) => b,
        Err(e) => return fail_continue(conn, &e),
    };
    conn.count_ok();
    protocol::write_ok_reply(conn, &body)?;
    Ok(Flow::Continue)
}

/// The engine a request for this codec runs on: the shared pool for
/// `thread_scalable` entries, inline on the handler thread otherwise
/// (GPU-simulated kernels already model device-wide parallelism — the same
/// gate registry-built pipelines apply).
fn engine_for(entry: &RegistryEntry, shared: &Shared) -> Option<Arc<WorkerPool>> {
    entry.is_thread_scalable().then(|| Arc::clone(&shared.pool))
}

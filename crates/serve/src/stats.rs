//! Serving counters surfaced by the `STATS` verb.
//!
//! Since the telemetry spine landed, [`ServerStats`] is a *view* over
//! pre-resolved handles on the server's [`Registry`] — the same registry
//! the pool and frame streams record into — rather than a second,
//! parallel set of atomics. The `STATS` v1 wire reply is byte-identical
//! to what the plain-atomics version produced; `STATS_V2` exposes the
//! whole registry (see [`protocol::encode_stats_v2`](crate::protocol)).

use crate::protocol::{decode_name, encode_name, read_u16, read_u64};
use fcbench_core::{CodecRegistry, Error, Result};
use fcbench_telemetry::{Counter, Gauge, GaugeGuard, Registry};

/// Pre-resolved serving handles, updated lock-free by every connection
/// handler. Per-codec request counts are a fixed vector parallel to the
/// codec registry's registration order, so bumping one is a single
/// `fetch_add` on a pre-resolved counter.
pub struct ServerStats {
    bytes_in: Counter,
    bytes_out: Counter,
    requests_ok: Counter,
    requests_failed: Counter,
    connections_accepted: Counter,
    connections_active: Gauge,
    codec_names: Vec<&'static str>,
    codec_requests: Vec<Counter>,
}

impl ServerStats {
    /// Resolve the serving handles on `metrics`, one per-codec counter for
    /// each entry of `registry`. (Handles onto an existing registry start
    /// from whatever the registry already holds — a fresh registry per
    /// server keeps them zero.)
    pub fn new(registry: &CodecRegistry, metrics: &Registry) -> Self {
        let codec_names = registry.names();
        let codec_requests = codec_names
            .iter()
            .map(|name| metrics.counter(&format!("serve.requests.codec.{name}")))
            .collect();
        ServerStats {
            bytes_in: metrics.counter("serve.bytes.in"),
            bytes_out: metrics.counter("serve.bytes.out"),
            requests_ok: metrics.counter("serve.requests.ok"),
            requests_failed: metrics.counter("serve.requests.failed"),
            connections_accepted: metrics.counter("serve.connections.accepted"),
            connections_active: metrics.gauge("serve.connections.active"),
            codec_names,
            codec_requests,
        }
    }

    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.add(n);
    }

    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.add(n);
    }

    pub fn request_ok(&self) {
        self.requests_ok.inc();
    }

    pub fn request_failed(&self) {
        self.requests_failed.inc();
    }

    /// Book one accepted connection and return the RAII guard holding its
    /// slot in the active-connection gauge: the gauge decrements when the
    /// guard drops, however the handler exits — there is no code path that
    /// can leak an increment.
    #[must_use]
    pub fn connection_opened(&self) -> GaugeGuard {
        self.connections_accepted.inc();
        self.connections_active.inc_scoped()
    }

    /// Count one served request against `codec` (no-op for names outside
    /// the registry — those failed before reaching a codec).
    pub fn count_codec(&self, codec: &str) {
        if let Some(i) = self.codec_names.iter().position(|n| *n == codec) {
            if let Some(c) = self.codec_requests.get(i) {
                c.inc();
            }
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            requests_ok: self.requests_ok.get(),
            requests_failed: self.requests_failed.get(),
            connections_accepted: self.connections_accepted.get(),
            connections_active: self.connections_active.get(),
            per_codec: self
                .codec_names
                .iter()
                .zip(self.codec_requests.iter())
                .map(|(name, count)| (name.to_string(), count.get()))
                .collect(),
        }
    }
}

/// What `STATS` reports: totals plus per-codec request counts in
/// registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub requests_ok: u64,
    /// Requests refused with a typed error reply, plus connections that
    /// died with a request in flight (mid-body disconnects, reply write
    /// failures) — server work consumed without a served reply.
    pub requests_failed: u64,
    pub connections_accepted: u64,
    pub connections_active: u64,
    pub per_codec: Vec<(String, u64)>,
}

impl StatsSnapshot {
    /// Encode as a `STATS` reply body. Errors (`NameTooLong`) rather than
    /// silently truncating a codec name the client would decode differently.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut body = Vec::new();
        for v in [
            self.bytes_in,
            self.bytes_out,
            self.requests_ok,
            self.requests_failed,
            self.connections_accepted,
            self.connections_active,
        ] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        body.extend_from_slice(&(self.per_codec.len().min(u16::MAX as usize) as u16).to_le_bytes());
        for (name, count) in self.per_codec.iter().take(u16::MAX as usize) {
            encode_name(name, &mut body)?;
            body.extend_from_slice(&count.to_le_bytes());
        }
        Ok(body)
    }

    /// Decode a `STATS` reply body.
    pub fn decode(body: &[u8]) -> Result<Self> {
        let mut src = body;
        let bytes_in = read_u64(&mut src)?;
        let bytes_out = read_u64(&mut src)?;
        let requests_ok = read_u64(&mut src)?;
        let requests_failed = read_u64(&mut src)?;
        let connections_accepted = read_u64(&mut src)?;
        let connections_active = read_u64(&mut src)?;
        let count = usize::from(read_u16(&mut src)?);
        // lint: claim-checked(count is u16-bounded, at most 65535 small rows)
        let mut per_codec = Vec::with_capacity(count);
        for _ in 0..count {
            let name = decode_name(&mut src)?;
            per_codec.push((name, read_u64(&mut src)?));
        }
        if !src.is_empty() {
            return Err(Error::Corrupt("trailing bytes after stats body".into()));
        }
        Ok(StatsSnapshot {
            bytes_in,
            bytes_out,
            requests_ok,
            requests_failed,
            connections_accepted,
            connections_active,
            per_codec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
    use fcbench_core::{Compressor, DataDesc, FloatData};
    use std::sync::Arc;

    struct Fake(&'static str);

    impl Compressor for Fake {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: self.0,
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let registry = CodecRegistry::new().with(Fake("a")).with(Fake("b"));
        let metrics = Arc::new(Registry::new());
        let stats = ServerStats::new(&registry, &metrics);
        let active = stats.connection_opened();
        stats.add_bytes_in(100);
        stats.add_bytes_out(40);
        stats.request_ok();
        stats.count_codec("b");
        stats.count_codec("nope"); // ignored: never reached a codec
        stats.request_failed();
        let snap = stats.snapshot();
        assert_eq!(snap.bytes_in, 100);
        assert_eq!(snap.bytes_out, 40);
        assert_eq!(snap.requests_ok, 1);
        assert_eq!(snap.requests_failed, 1);
        assert_eq!(snap.connections_accepted, 1);
        assert_eq!(snap.connections_active, 1);
        assert_eq!(
            snap.per_codec,
            vec![("a".to_string(), 0), ("b".to_string(), 1)]
        );
        drop(active);
        assert_eq!(stats.snapshot().connections_active, 0);
        // Everything also landed on the shared registry, where the
        // exposition dump and STATS_V2 read it.
        let reg = metrics.snapshot();
        assert_eq!(reg.counter("serve.bytes.in"), Some(100));
        assert_eq!(reg.counter("serve.requests.codec.b"), Some(1));
        assert_eq!(reg.gauge("serve.connections.active"), Some(0));
    }

    #[test]
    fn active_gauge_cannot_leak_past_its_guard() {
        let registry = CodecRegistry::new().with(Fake("a"));
        let metrics = Arc::new(Registry::new());
        let stats = ServerStats::new(&registry, &metrics);
        {
            let _a = stats.connection_opened();
            let _b = stats.connection_opened();
            assert_eq!(stats.snapshot().connections_active, 2);
        }
        assert_eq!(stats.snapshot().connections_active, 0);
        assert_eq!(stats.snapshot().connections_accepted, 2);
    }

    #[test]
    fn snapshot_round_trips_on_the_wire() {
        let snap = StatsSnapshot {
            bytes_in: 1,
            bytes_out: 2,
            requests_ok: 3,
            requests_failed: 4,
            connections_accepted: 5,
            connections_active: 6,
            per_codec: vec![("gorilla".into(), 7), ("chimp128".into(), 0)],
        };
        let wire = snap.encode().unwrap();
        assert_eq!(StatsSnapshot::decode(&wire).unwrap(), snap);
        assert!(StatsSnapshot::decode(&wire[..10]).is_err());
    }

    #[test]
    fn v1_wire_reply_is_byte_identical_to_the_pre_telemetry_layout() {
        // The v1 body is a fixed hand-computable layout: 6 u64 counters,
        // u16 codec count, then (u8 len + name + u64) per codec. Pin it so
        // the registry migration can never drift the wire.
        let registry = CodecRegistry::new().with(Fake("ab"));
        let metrics = Arc::new(Registry::new());
        let stats = ServerStats::new(&registry, &metrics);
        stats.add_bytes_in(7);
        stats.request_ok();
        stats.count_codec("ab");
        let wire = stats.snapshot().encode().unwrap();
        let mut expect = Vec::new();
        for v in [7u64, 0, 1, 0, 0, 0] {
            expect.extend_from_slice(&v.to_le_bytes());
        }
        expect.extend_from_slice(&1u16.to_le_bytes());
        expect.push(2);
        expect.extend_from_slice(b"ab");
        expect.extend_from_slice(&1u64.to_le_bytes());
        assert_eq!(wire, expect);
    }
}

//! Atomic serving counters surfaced by the `STATS` verb.

use crate::protocol::{decode_name, encode_name, read_u16, read_u64};
use fcbench_core::{CodecRegistry, Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters updated by every connection handler. Per-codec
/// request counts are a fixed array parallel to the registry's
/// registration order, so bumping one is a single `fetch_add`.
pub struct ServerStats {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    requests_ok: AtomicU64,
    requests_failed: AtomicU64,
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    codec_names: Vec<&'static str>,
    codec_requests: Box<[AtomicU64]>,
}

impl ServerStats {
    /// Counters for the codecs of `registry`, all zero.
    pub fn new(registry: &CodecRegistry) -> Self {
        let codec_names = registry.names();
        let codec_requests = codec_names.iter().map(|_| AtomicU64::new(0)).collect();
        ServerStats {
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            requests_ok: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            codec_names,
            codec_requests,
        }
    }

    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    pub fn request_ok(&self) {
        self.requests_ok.fetch_add(1, Ordering::Relaxed);
    }

    pub fn request_failed(&self) {
        self.requests_failed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn connection_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    pub fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Count one served request against `codec` (no-op for names outside
    /// the registry — those failed before reaching a codec).
    pub fn count_codec(&self, codec: &str) {
        if let Some(i) = self.codec_names.iter().position(|n| *n == codec) {
            self.codec_requests[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            per_codec: self
                .codec_names
                .iter()
                .zip(self.codec_requests.iter())
                .map(|(name, count)| (name.to_string(), count.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// What `STATS` reports: totals plus per-codec request counts in
/// registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub requests_ok: u64,
    /// Requests refused with a typed error reply, plus connections that
    /// died with a request in flight (mid-body disconnects, reply write
    /// failures) — server work consumed without a served reply.
    pub requests_failed: u64,
    pub connections_accepted: u64,
    pub connections_active: u64,
    pub per_codec: Vec<(String, u64)>,
}

impl StatsSnapshot {
    /// Encode as a `STATS` reply body. Errors (`NameTooLong`) rather than
    /// silently truncating a codec name the client would decode differently.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut body = Vec::new();
        for v in [
            self.bytes_in,
            self.bytes_out,
            self.requests_ok,
            self.requests_failed,
            self.connections_accepted,
            self.connections_active,
        ] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        body.extend_from_slice(&(self.per_codec.len().min(u16::MAX as usize) as u16).to_le_bytes());
        for (name, count) in self.per_codec.iter().take(u16::MAX as usize) {
            encode_name(name, &mut body)?;
            body.extend_from_slice(&count.to_le_bytes());
        }
        Ok(body)
    }

    /// Decode a `STATS` reply body.
    pub fn decode(body: &[u8]) -> Result<Self> {
        let mut src = body;
        let bytes_in = read_u64(&mut src)?;
        let bytes_out = read_u64(&mut src)?;
        let requests_ok = read_u64(&mut src)?;
        let requests_failed = read_u64(&mut src)?;
        let connections_accepted = read_u64(&mut src)?;
        let connections_active = read_u64(&mut src)?;
        let count = usize::from(read_u16(&mut src)?);
        // lint: claim-checked(count is u16-bounded, at most 65535 small rows)
        let mut per_codec = Vec::with_capacity(count);
        for _ in 0..count {
            let name = decode_name(&mut src)?;
            per_codec.push((name, read_u64(&mut src)?));
        }
        if !src.is_empty() {
            return Err(Error::Corrupt("trailing bytes after stats body".into()));
        }
        Ok(StatsSnapshot {
            bytes_in,
            bytes_out,
            requests_ok,
            requests_failed,
            connections_accepted,
            connections_active,
            per_codec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcbench_core::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
    use fcbench_core::{Compressor, DataDesc, FloatData};

    struct Fake(&'static str);

    impl Compressor for Fake {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: self.0,
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let registry = CodecRegistry::new().with(Fake("a")).with(Fake("b"));
        let stats = ServerStats::new(&registry);
        stats.connection_opened();
        stats.add_bytes_in(100);
        stats.add_bytes_out(40);
        stats.request_ok();
        stats.count_codec("b");
        stats.count_codec("nope"); // ignored: never reached a codec
        stats.request_failed();
        let snap = stats.snapshot();
        assert_eq!(snap.bytes_in, 100);
        assert_eq!(snap.bytes_out, 40);
        assert_eq!(snap.requests_ok, 1);
        assert_eq!(snap.requests_failed, 1);
        assert_eq!(snap.connections_accepted, 1);
        assert_eq!(snap.connections_active, 1);
        assert_eq!(
            snap.per_codec,
            vec![("a".to_string(), 0), ("b".to_string(), 1)]
        );
        stats.connection_closed();
        assert_eq!(stats.snapshot().connections_active, 0);
    }

    #[test]
    fn snapshot_round_trips_on_the_wire() {
        let snap = StatsSnapshot {
            bytes_in: 1,
            bytes_out: 2,
            requests_ok: 3,
            requests_failed: 4,
            connections_accepted: 5,
            connections_active: 6,
            per_codec: vec![("gorilla".into(), 7), ("chimp128".into(), 0)],
        };
        let wire = snap.encode().unwrap();
        assert_eq!(StatsSnapshot::decode(&wire).unwrap(), snap);
        assert!(StatsSnapshot::decode(&wire[..10]).is_err());
    }
}

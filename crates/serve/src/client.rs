//! The `FCS1` client library: a thin, blocking wrapper over one TCP
//! connection. Used by the integration tests, benches, and examples — and
//! by anything else that wants compression as a network call.

use crate::protocol::{self, CodecListing};
use crate::stats::StatsSnapshot;
use fcbench_core::{Error, FloatData, Result};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to an `FCS1` server. Requests run strictly in sequence
/// on the connection (open several clients for concurrency — the server
/// multiplexes them onto its one engine).
pub struct Client {
    stream: TcpStream,
    /// The server's advertised request-size ceiling (from the handshake).
    server_max: u64,
}

impl Client {
    /// Connect and complete the `FCS1` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            server_max: u64::MAX,
        };
        client.stream.write_all(&protocol::client_hello())?;
        client.stream.flush()?;
        let body = protocol::read_reply(&mut client.stream)?;
        let (_version, server_max) = protocol::check_hello_body(&body)?;
        client.server_max = server_max;
        Ok(client)
    }

    /// The server's advertised request-size ceiling in bytes: the raw
    /// element bytes of a `COMPRESS`. A `DECOMPRESS` stream gets expansion
    /// headroom on top ([`protocol::stream_cap`]) so a stream the server
    /// itself produced always fits back through it.
    pub fn server_max_request_bytes(&self) -> u64 {
        self.server_max
    }

    /// Refuse a request the server already told us it will cut off —
    /// the typed error the server would send, without streaming a body
    /// whose rejection would reset the connection mid-upload.
    fn check_request_size(&self, bytes: usize, cap: u64) -> Result<()> {
        if bytes as u64 > cap {
            return Err(Error::Unsupported(format!(
                "request is {bytes} bytes; the server accepts at most {cap}"
            )));
        }
        Ok(())
    }

    /// The reply-body ceiling for this connection: the protocol default,
    /// widened when the server's advertised request cap means a `COMPRESS`
    /// reply (stream bytes, with expansion headroom) can legitimately
    /// exceed it — refusing such a reply unread would desync the framing.
    fn reply_cap(&self) -> usize {
        let stream = usize::try_from(protocol::stream_cap(self.server_max)).unwrap_or(usize::MAX);
        protocol::MAX_REPLY_BYTES.max(stream)
    }

    fn read_reply(&mut self) -> Result<Vec<u8>> {
        let cap = self.reply_cap();
        protocol::read_reply_capped(&mut self.stream, cap)
    }

    /// Compress `data` on the server with `codec`, split into
    /// `block_elems`-element blocks. Returns the compressed `FCB3` stream
    /// — self-describing, so it can be decoded by
    /// [`decompress`](Client::decompress), by a local
    /// [`FrameReader`](fcbench_core::stream::FrameReader), or stored as-is.
    pub fn compress(
        &mut self,
        codec: &str,
        data: &FloatData,
        block_elems: usize,
    ) -> Result<Vec<u8>> {
        self.check_request_size(data.bytes().len(), self.server_max)?;
        let mut req = Vec::with_capacity(32 + codec.len());
        req.push(protocol::VERB_COMPRESS);
        protocol::encode_name(codec, &mut req)?;
        protocol::encode_desc(data.desc(), &mut req)?;
        req.extend_from_slice(&(block_elems as u64).to_le_bytes());
        self.stream.write_all(&req)?;
        self.stream.write_all(data.bytes())?;
        self.stream.flush()?;
        self.read_reply()
    }

    /// Decompress an `FCB3` stream on the server (its prologue names the
    /// codec). Returns the restored container.
    pub fn decompress(&mut self, stream: &[u8]) -> Result<FloatData> {
        self.check_request_size(stream.len(), protocol::stream_cap(self.server_max))?;
        let mut req = Vec::with_capacity(9);
        req.push(protocol::VERB_DECOMPRESS);
        req.extend_from_slice(&(stream.len() as u64).to_le_bytes());
        self.stream.write_all(&req)?;
        self.stream.write_all(stream)?;
        self.stream.flush()?;
        let body = self.read_reply()?;
        let mut cursor = &body[..];
        let desc = protocol::decode_desc(&mut cursor)?;
        if cursor.len() != desc.byte_len() {
            return Err(Error::Corrupt(format!(
                "reply carries {} element bytes but its descriptor implies {}",
                cursor.len(),
                desc.byte_len()
            )));
        }
        FloatData::from_bytes(desc, cursor.to_vec())
    }

    /// Round-trip helper: compress, then decompress, on the server;
    /// asserts nothing — callers compare against the original.
    pub fn roundtrip(
        &mut self,
        codec: &str,
        data: &FloatData,
        block_elems: usize,
    ) -> Result<FloatData> {
        let compressed = self.compress(codec, data, block_elems)?;
        self.decompress(&compressed)
    }

    /// The server's codec catalogue with per-entry capabilities.
    pub fn list_codecs(&mut self) -> Result<Vec<CodecListing>> {
        self.stream.write_all(&[protocol::VERB_LIST_CODECS])?;
        self.stream.flush()?;
        let body = self.read_reply()?;
        protocol::decode_listings(&body)
    }

    /// The server's live counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        self.stream.write_all(&[protocol::VERB_STATS])?;
        self.stream.flush()?;
        let body = self.read_reply()?;
        StatsSnapshot::decode(&body)
    }

    /// The server's full telemetry registry: every counter, gauge, and
    /// latency histogram across the serve, frame-stream, and pool layers.
    /// Histograms arrive as complete (sparse) bucket snapshots, so the
    /// caller takes its own quantiles — `p50()`, `p99()` — or merges
    /// snapshots across servers.
    pub fn stats_v2(&mut self) -> Result<protocol::StatsV2> {
        self.stream.write_all(&[protocol::VERB_STATS_V2])?;
        self.stream.flush()?;
        let body = self.read_reply()?;
        protocol::decode_stats_v2(&body)
    }

    /// Raw access for protocol (and hostile-input) tests: send arbitrary
    /// bytes on the connection and read one reply frame.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<Vec<u8>> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        self.read_reply()
    }
}

//! The `FCS1` client library: a thin, blocking wrapper over one TCP
//! connection. Used by the integration tests, benches, and examples — and
//! by anything else that wants compression as a network call.
//!
//! Resilience is configured per client through [`ClientConfig`]:
//!
//! - **Deadlines.** Every socket operation runs under the configured
//!   connect/read/write timeouts (all on by default), so a dead or silent
//!   peer surfaces as a typed [`Error::Io`] instead of hanging the caller
//!   forever.
//! - **Retries.** A [`RetryPolicy`] re-runs *idempotent* requests —
//!   `COMPRESS`, `DECOMPRESS`, `LIST_CODECS`, `STATS`, `STATS_V2`, all
//!   pure reads or pure functions of their payload — after retryable
//!   failures: the server's `ERR_BUSY` shed reply (honouring its
//!   retry-after hint as a floor) and transport-level I/O errors. Each
//!   retry waits out a jittered exponential backoff and reconnects, since
//!   the failed exchange may have desynced the old connection's framing.
//!   [`Client::send_raw`] — arbitrary bytes, unknowable semantics — is
//!   never retried. Retries are off by default
//!   ([`RetryPolicy::default`]); opt in with [`RetryPolicy::retries`].

use crate::protocol::{self, CodecListing};
use crate::stats::StatsSnapshot;
use fcbench_core::fault::Rng;
use fcbench_core::{Error, FloatData, Result};
use fcbench_telemetry::{Counter, Registry};
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// When (and how patiently) a [`Client`] retries idempotent requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt; `0` disables retrying.
    pub max_retries: u32,
    /// First backoff; doubles per retry up to
    /// [`max_backoff`](Self::max_backoff).
    pub base_backoff: Duration,
    /// Ceiling on one backoff wait.
    pub max_backoff: Duration,
    /// Seed for the deterministic backoff jitter (vary it across a fleet
    /// of clients so shed retries do not re-arrive in lockstep).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Retries disabled; errors surface to the caller on first failure.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy retrying up to `max_retries` times (10ms base, 1s cap).
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// Is `err` worth retrying at all? Shed replies and transport
    /// failures are; every other typed error is a property of the request
    /// itself and would only fail again.
    fn retryable(err: &Error) -> Option<Duration> {
        match err {
            Error::Busy { retry_after_ms } => Some(Duration::from_millis(*retry_after_ms)),
            Error::Io(_) => Some(Duration::ZERO),
            _ => None,
        }
    }

    /// The wait before retry number `attempt` (0-based) of `err`, or
    /// `None` to give up: budget exhausted, or the error is not
    /// retryable. Exponential with deterministic jitter in the upper half
    /// of the window, floored at a busy reply's retry-after hint.
    pub fn delay_for(&self, attempt: u32, err: &Error) -> Option<Duration> {
        let floor = Self::retryable(err)?;
        if attempt >= self.max_retries {
            return None;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let nanos = u64::try_from(exp.as_nanos()).unwrap_or(u64::MAX);
        let mut rng = Rng::new(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9E37));
        let jittered = nanos / 2 + rng.below(nanos / 2 + 1);
        Some(Duration::from_nanos(jittered).max(floor))
    }
}

/// Connection and resilience knobs for a [`Client`].
#[derive(Clone)]
pub struct ClientConfig {
    /// Deadline on establishing the TCP connection (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Socket read deadline: a reply (or any part of one) later than this
    /// fails the request with a typed I/O error instead of hanging.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline for request bodies.
    pub write_timeout: Option<Duration>,
    /// Retry policy for idempotent requests.
    pub retry: RetryPolicy,
    /// Registry the `client.retries` counter is recorded on (e.g. to
    /// assert retry behaviour in tests, or to merge client-side telemetry
    /// with a process-wide registry). `None` counts locally only
    /// ([`Client::retries`]).
    pub telemetry: Option<Arc<Registry>>,
}

impl Default for ClientConfig {
    /// Deadlines on (10s connect, 30s read/write), retries off.
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
            telemetry: None,
        }
    }
}

impl std::fmt::Debug for ClientConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientConfig")
            .field("connect_timeout", &self.connect_timeout)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("retry", &self.retry)
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

/// One connection to an `FCS1` server. Requests run strictly in sequence
/// on the connection (open several clients for concurrency — the server
/// multiplexes them onto its one engine).
pub struct Client {
    stream: TcpStream,
    /// The server's advertised request-size ceiling (from the handshake).
    server_max: u64,
    /// Resolved peer addresses, kept for retry reconnects.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    retry_counter: Counter,
    retries: u64,
}

impl Client {
    /// Connect and complete the `FCS1` handshake with default deadlines
    /// and no retries ([`ClientConfig::default`]).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect and complete the `FCS1` handshake under `config`'s
    /// deadlines and retry policy.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Client::open(&addrs, &config)?;
        let retry_counter = config
            .telemetry
            .as_ref()
            .map_or_else(Counter::detached, |reg| reg.counter("client.retries"));
        let mut client = Client {
            stream,
            server_max: u64::MAX,
            addrs,
            config,
            retry_counter,
            retries: 0,
        };
        client.handshake()?;
        Ok(client)
    }

    /// Open a socket to the first answering address, under the configured
    /// connect deadline, with the read/write deadlines installed.
    fn open(addrs: &[SocketAddr], config: &ClientConfig) -> Result<TcpStream> {
        let mut last: Option<std::io::Error> = None;
        for addr in addrs {
            let attempt = match config.connect_timeout {
                Some(t) => TcpStream::connect_timeout(addr, t),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(config.read_timeout)?;
                    stream.set_write_timeout(config.write_timeout)?;
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last
            .map(Error::from)
            .unwrap_or_else(|| Error::Io("address resolved to no socket addresses".into())))
    }

    fn handshake(&mut self) -> Result<()> {
        self.stream.write_all(&protocol::client_hello())?;
        self.stream.flush()?;
        let body = protocol::read_reply(&mut self.stream)?;
        let (_version, server_max) = protocol::check_hello_body(&body)?;
        self.server_max = server_max;
        Ok(())
    }

    /// Replace the connection with a fresh handshaken one (retry path —
    /// the failed exchange may have desynced the old framing).
    fn reconnect(&mut self) -> Result<()> {
        self.stream = Client::open(&self.addrs, &self.config)?;
        self.handshake()
    }

    /// Run an idempotent request under the retry policy: on a retryable
    /// failure, wait out the backoff, reconnect, and re-run. A failed
    /// reconnect is itself the next error the policy judges.
    fn retrying<T>(&mut self, mut op: impl FnMut(&mut Client) -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        let mut pending: Option<Error> = None;
        loop {
            let err = match pending.take() {
                Some(e) => e,
                None => match op(self) {
                    Ok(v) => return Ok(v),
                    Err(e) => e,
                },
            };
            let Some(delay) = self.config.retry.delay_for(attempt, &err) else {
                return Err(err);
            };
            attempt += 1;
            self.retries += 1;
            self.retry_counter.inc();
            std::thread::sleep(delay);
            if let Err(e) = self.reconnect() {
                pending = Some(e);
            }
        }
    }

    /// Retries performed over this client's lifetime (also on the
    /// configured telemetry registry as `client.retries`).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The server's advertised request-size ceiling in bytes: the raw
    /// element bytes of a `COMPRESS`. A `DECOMPRESS` stream gets expansion
    /// headroom on top ([`protocol::stream_cap`]) so a stream the server
    /// itself produced always fits back through it.
    pub fn server_max_request_bytes(&self) -> u64 {
        self.server_max
    }

    /// Refuse a request the server already told us it will cut off —
    /// the typed error the server would send, without streaming a body
    /// whose rejection would reset the connection mid-upload.
    fn check_request_size(&self, bytes: usize, cap: u64) -> Result<()> {
        if bytes as u64 > cap {
            return Err(Error::Unsupported(format!(
                "request is {bytes} bytes; the server accepts at most {cap}"
            )));
        }
        Ok(())
    }

    /// The reply-body ceiling for this connection: the protocol default,
    /// widened when the server's advertised request cap means a `COMPRESS`
    /// reply (stream bytes, with expansion headroom) can legitimately
    /// exceed it — refusing such a reply unread would desync the framing.
    fn reply_cap(&self) -> usize {
        let stream = usize::try_from(protocol::stream_cap(self.server_max)).unwrap_or(usize::MAX);
        protocol::MAX_REPLY_BYTES.max(stream)
    }

    fn read_reply(&mut self) -> Result<Vec<u8>> {
        let cap = self.reply_cap();
        protocol::read_reply_capped(&mut self.stream, cap)
    }

    /// Compress `data` on the server with `codec`, split into
    /// `block_elems`-element blocks. Returns the compressed `FCB3` stream
    /// — self-describing, so it can be decoded by
    /// [`decompress`](Client::decompress), by a local
    /// [`FrameReader`](fcbench_core::stream::FrameReader), or stored as-is.
    /// Idempotent: retried under the policy.
    pub fn compress(
        &mut self,
        codec: &str,
        data: &FloatData,
        block_elems: usize,
    ) -> Result<Vec<u8>> {
        self.retrying(|c| c.compress_once(codec, data, block_elems))
    }

    fn compress_once(
        &mut self,
        codec: &str,
        data: &FloatData,
        block_elems: usize,
    ) -> Result<Vec<u8>> {
        self.check_request_size(data.bytes().len(), self.server_max)?;
        let mut req = Vec::with_capacity(32 + codec.len());
        req.push(protocol::VERB_COMPRESS);
        protocol::encode_name(codec, &mut req)?;
        protocol::encode_desc(data.desc(), &mut req)?;
        req.extend_from_slice(&(block_elems as u64).to_le_bytes());
        self.stream.write_all(&req)?;
        self.stream.write_all(data.bytes())?;
        self.stream.flush()?;
        self.read_reply()
    }

    /// Decompress an `FCB3` stream on the server (its prologue names the
    /// codec). Returns the restored container. Idempotent: retried under
    /// the policy.
    pub fn decompress(&mut self, stream: &[u8]) -> Result<FloatData> {
        self.retrying(|c| c.decompress_once(stream))
    }

    fn decompress_once(&mut self, stream: &[u8]) -> Result<FloatData> {
        self.check_request_size(stream.len(), protocol::stream_cap(self.server_max))?;
        let mut req = Vec::with_capacity(9);
        req.push(protocol::VERB_DECOMPRESS);
        req.extend_from_slice(&(stream.len() as u64).to_le_bytes());
        self.stream.write_all(&req)?;
        self.stream.write_all(stream)?;
        self.stream.flush()?;
        let body = self.read_reply()?;
        let mut cursor = &body[..];
        let desc = protocol::decode_desc(&mut cursor)?;
        if cursor.len() != desc.byte_len() {
            return Err(Error::Corrupt(format!(
                "reply carries {} element bytes but its descriptor implies {}",
                cursor.len(),
                desc.byte_len()
            )));
        }
        FloatData::from_bytes(desc, cursor.to_vec())
    }

    /// Round-trip helper: compress, then decompress, on the server;
    /// asserts nothing — callers compare against the original.
    pub fn roundtrip(
        &mut self,
        codec: &str,
        data: &FloatData,
        block_elems: usize,
    ) -> Result<FloatData> {
        let compressed = self.compress(codec, data, block_elems)?;
        self.decompress(&compressed)
    }

    /// The server's codec catalogue with per-entry capabilities.
    /// Idempotent: retried under the policy.
    pub fn list_codecs(&mut self) -> Result<Vec<CodecListing>> {
        self.retrying(|c| {
            c.stream.write_all(&[protocol::VERB_LIST_CODECS])?;
            c.stream.flush()?;
            let body = c.read_reply()?;
            protocol::decode_listings(&body)
        })
    }

    /// The server's live counters. Idempotent: retried under the policy.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        self.retrying(|c| {
            c.stream.write_all(&[protocol::VERB_STATS])?;
            c.stream.flush()?;
            let body = c.read_reply()?;
            StatsSnapshot::decode(&body)
        })
    }

    /// The server's full telemetry registry: every counter, gauge, and
    /// latency histogram across the serve, frame-stream, and pool layers.
    /// Histograms arrive as complete (sparse) bucket snapshots, so the
    /// caller takes its own quantiles — `p50()`, `p99()` — or merges
    /// snapshots across servers. Idempotent: retried under the policy.
    pub fn stats_v2(&mut self) -> Result<protocol::StatsV2> {
        self.retrying(|c| {
            c.stream.write_all(&[protocol::VERB_STATS_V2])?;
            c.stream.flush()?;
            let body = c.read_reply()?;
            protocol::decode_stats_v2(&body)
        })
    }

    /// Raw access for protocol (and hostile-input) tests: send arbitrary
    /// bytes on the connection and read one reply frame. **Never
    /// retried** — arbitrary bytes have arbitrary semantics, and blindly
    /// replaying them could repeat a non-idempotent effect.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<Vec<u8>> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        self.read_reply()
    }
}

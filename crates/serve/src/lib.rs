//! # fcbench-serve
//!
//! Compression as a service boundary: a TCP server speaking the small
//! length-prefixed [`FCS1` protocol](protocol) that multiplexes many
//! client streams onto **one** shared
//! [`WorkerPool`](fcbench_core::pool::WorkerPool) engine — the request
//! front-end FCBench's Table 11 / dbsim experiments frame but only expose
//! as offline CLIs.
//!
//! - [`Server`] owns the engine (size it with
//!   [`PoolConfig::for_host`](fcbench_core::PoolConfig::for_host)); each
//!   connection handler feeds its stream through the core
//!   `FrameWriter`/`FrameReader` under the shared-pool saturation
//!   discipline, capped per connection so no client pins every job slot.
//! - [`Client`] is the matching blocking library.
//! - [`ServerStats`] (the `STATS` verb) counts bytes, requests, and
//!   per-codec traffic on the server's telemetry registry — the same
//!   registry the pool and frame streams record latency histograms
//!   into, exposed whole over the wire by the `STATS_V2` verb
//!   ([`Client::stats_v2`] → [`StatsV2`]).
//!
//! Every protocol error — unknown codec, oversized record, malformed
//! header, truncated stream — fails the *request* with a typed reply; the
//! server keeps serving.
//!
//! ```
//! use fcbench_core::registry::{CodecRegistry, RegistryEntry};
//! use fcbench_core::{Domain, FloatData, PoolConfig, WorkerPool};
//! use fcbench_serve::{Client, ServeConfig, Server};
//! use std::sync::Arc;
//! # use fcbench_core::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
//! # use fcbench_core::{Compressor, DataDesc, Result};
//! # struct Store;
//! # impl Compressor for Store {
//! #     fn info(&self) -> CodecInfo {
//! #         CodecInfo { name: "store", year: 2024, community: Community::General,
//! #                     class: CodecClass::Delta, platform: Platform::Cpu,
//! #                     parallel: false, precisions: PrecisionSupport::Both }
//! #     }
//! #     fn compress(&self, data: &FloatData) -> Result<Vec<u8>> { Ok(data.bytes().to_vec()) }
//! #     fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
//! #         FloatData::from_bytes(desc.clone(), payload.to_vec())
//! #     }
//! # }
//! let registry = Arc::new(CodecRegistry::new().with(RegistryEntry::new(Store).thread_scalable()));
//! let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(2)));
//! let server = Server::bind("127.0.0.1:0", registry, pool, ServeConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let running = server.spawn();
//!
//! let mut client = Client::connect(addr).unwrap();
//! let data = FloatData::from_f64(&[1.0, 2.0, 3.0], vec![3], Domain::TimeSeries).unwrap();
//! let compressed = client.compress("store", &data, 2).unwrap();
//! let restored = client.decompress(&compressed).unwrap();
//! assert_eq!(restored.bytes(), data.bytes());
//!
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.requests_ok, 2);
//! drop(client);
//! running.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, ClientConfig, RetryPolicy};
pub use protocol::{CodecListing, StatsV2};
pub use server::{RunningServer, ServeConfig, Server, ServerHandle};
pub use stats::{ServerStats, StatsSnapshot};

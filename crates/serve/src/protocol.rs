//! The `FCS1` wire protocol shared by [`Server`](crate::Server) and
//! [`Client`](crate::Client).
//!
//! `FCS1` is a small length-prefixed binary protocol over TCP (all integers
//! little-endian). A connection opens with a handshake, then carries any
//! number of requests in sequence:
//!
//! ```text
//! client hello     magic "FCS1" + u16 version
//! server reply     status u8 (0 = ok) + u64 body len + body
//!                  (ok body: magic "FCS1" + u16 negotiated version)
//!
//! request          verb u8, then verb-specific header/payload:
//!   1 COMPRESS     u8 name len + codec name, descriptor, u64 block elems,
//!                  then exactly desc.byte_len() raw element bytes
//!   2 DECOMPRESS   u64 stream len, then an FCB3 stream (self-describing:
//!                  its prologue names the codec, shape, and block size)
//!   3 LIST_CODECS  (no payload)
//!   4 STATS        (no payload)
//!   5 STATS_V2     (no payload)
//!
//! descriptor       u8 precision (0 single / 1 double), u8 domain (0..=3),
//!                  u8 ndims, ndims x u64 dims
//!
//! reply            status u8 + u64 body len + body
//!   COMPRESS ok    the compressed FCB3 stream
//!   DECOMPRESS ok  descriptor, then the raw element bytes
//!   LIST_CODECS ok u16 count, per codec: u8 name len + name + u8 flags
//!                  (bit 0 thread-scalable, bit 1 block-capable)
//!   STATS ok       6 x u64 counters + u16 count + per codec
//!                  (u8 name len + name + u64 requests)
//!   STATS_V2 ok    the server's full telemetry registry snapshot:
//!                  u16 counter count + (u16 name len + name + u64) each,
//!                  u16 gauge count   + (u16 name len + name + u64) each,
//!                  u16 histogram count + per histogram: u16 name len +
//!                  name + u64 total count + u64 sum + u64 max + u16
//!                  nonzero-bucket count + (u16 bucket index + u64 bucket
//!                  count) each — sparse, so an idle histogram costs a
//!                  few bytes, not its full 1312-bucket table
//!   error          status is an error code; body is the UTF-8 message,
//!                  except UNKNOWN_CODEC whose body is structured so the
//!                  client rebuilds the typed error (u16 requested len +
//!                  requested + u16 count + (u16 len + name) each), and
//!                  BUSY (code 8) whose body leads with a u64 retry-after
//!                  hint in milliseconds (then the message) — the server
//!                  shed the request under load; retry after the hint
//! ```
//!
//! Every error is a *request* failure: the server replies and (whenever the
//! request body was fully consumed, so framing is intact) keeps serving the
//! connection. Only unrecoverable framing — garbage handshake, unknown
//! verb, a body too large to skip — closes the connection, and never the
//! server.

use fcbench_core::{DataDesc, Domain, Error, Precision, Result};
use fcbench_telemetry::{HistogramSnapshot, Snapshot};
use std::io::{Read, Write};

/// Protocol magic, first on the wire in both directions.
pub const MAGIC: &[u8; 4] = b"FCS1";

/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;

/// Request verbs.
pub const VERB_COMPRESS: u8 = 1;
pub const VERB_DECOMPRESS: u8 = 2;
pub const VERB_LIST_CODECS: u8 = 3;
pub const VERB_STATS: u8 = 4;
pub const VERB_STATS_V2: u8 = 5;

/// Reply status codes. `0` is success; everything else maps onto a
/// [`fcbench_core::Error`] variant on the client side.
pub const STATUS_OK: u8 = 0;
pub const ERR_PROTOCOL: u8 = 1;
pub const ERR_UNKNOWN_CODEC: u8 = 2;
pub const ERR_BAD_DESCRIPTOR: u8 = 3;
pub const ERR_UNSUPPORTED: u8 = 4;
pub const ERR_CORRUPT: u8 = 5;
pub const ERR_WORKER_PANIC: u8 = 6;
pub const ERR_IO: u8 = 7;
/// The server shed the request under load; the body carries a u64
/// retry-after hint (milliseconds) followed by the display message.
pub const ERR_BUSY: u8 = 8;

/// Ceiling a client accepts for one reply body (a compressed stream never
/// legitimately expands a request beyond the reader-side record caps).
pub const MAX_REPLY_BYTES: usize = 1 << 30;

/// The `DECOMPRESS` stream-byte ceiling implied by a raw-byte ceiling.
///
/// `COMPRESS` caps *raw element bytes* at `max_request_bytes`, but a codec
/// may expand incompressible input, and the `FCB3` framing adds per-block
/// record headers — so a stream the server itself produced from an in-cap
/// request can exceed `max_request_bytes`. The worst legal case is
/// `block_elems = 1`: one record per element, where the frame layer's own
/// decode gate tolerates up to 8x per-block payload expansion plus an
/// 8-byte record length per 8-byte block — ≤ 9x the raw bytes overall.
/// Capping at that bound (plus a fixed prologue allowance) keeps every
/// stream this server could produce from an in-cap request decompressible
/// on the same server, while costing nothing real: stream bytes are read
/// incrementally as they arrive ([`read_sized`]), and the stream's
/// *decoded-size* claim — the allocation that matters — is still gated at
/// `max_request_bytes`. Both endpoints use this one formula: the server to
/// size `read_sized`, the client to refuse locally.
pub fn stream_cap(max_request_bytes: u64) -> u64 {
    max_request_bytes.saturating_mul(9).saturating_add(1 << 16)
}

/// Read exactly `buf.len()` bytes, mapping I/O failures to typed errors.
pub fn read_exact<R: Read>(src: &mut R, buf: &mut [u8]) -> Result<()> {
    src.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Corrupt("connection closed mid-message".into())
        } else {
            Error::Io(e.to_string())
        }
    })
}

pub fn read_u8<R: Read>(src: &mut R) -> Result<u8> {
    let mut b = [0u8; 1];
    read_exact(src, &mut b)?;
    Ok(b[0])
}

pub fn read_u16<R: Read>(src: &mut R) -> Result<u16> {
    let mut b = [0u8; 2];
    read_exact(src, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

pub fn read_u64<R: Read>(src: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    read_exact(src, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Growth step for length-prefixed bodies: memory is committed as bytes
/// actually arrive, so a 9-byte request *claiming* a huge (but in-cap)
/// body cannot pin that allocation while sending nothing.
const READ_SIZED_STEP: usize = 1 << 20;

/// Read a length-prefixed buffer, rejecting declared lengths above `cap`
/// before allocating for them, and growing the buffer incrementally so
/// the allocation tracks delivered bytes rather than the declared claim.
pub fn read_sized<R: Read>(src: &mut R, cap: usize) -> Result<Vec<u8>> {
    let len = read_u64(src)?;
    let len = usize::try_from(len)
        .ok()
        .filter(|&l| l <= cap)
        .ok_or_else(|| {
            Error::Unsupported(format!(
                "message declares {len} bytes but this endpoint accepts at most {cap}"
            ))
        })?;
    let mut buf = Vec::new();
    let mut filled = 0usize;
    while filled < len {
        let step = READ_SIZED_STEP.min(len - filled);
        buf.resize(filled + step, 0);
        read_exact(src, &mut buf[filled..])?;
        filled += step;
    }
    Ok(buf)
}

/// Append a u8-length-prefixed codec name (the frame format's 255-byte
/// name limit applies on the wire too).
pub fn encode_name(name: &str, out: &mut Vec<u8>) -> Result<()> {
    if name.len() > 255 {
        return Err(Error::NameTooLong { len: name.len() });
    }
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
    Ok(())
}

/// Read a u8-length-prefixed UTF-8 codec name.
pub fn decode_name<R: Read>(src: &mut R) -> Result<String> {
    let len = usize::from(read_u8(src)?);
    // lint: claim-checked(len is u8-bounded, at most 255 bytes)
    let mut buf = vec![0u8; len];
    read_exact(src, &mut buf)?;
    String::from_utf8(buf).map_err(|_| Error::Corrupt("codec name is not UTF-8".into()))
}

/// Append a data descriptor in wire form.
pub fn encode_desc(desc: &DataDesc, out: &mut Vec<u8>) -> Result<()> {
    if desc.dims.len() > 255 {
        return Err(Error::TooManyDims {
            ndims: desc.dims.len(),
        });
    }
    out.push(match desc.precision {
        Precision::Single => 0,
        Precision::Double => 1,
    });
    out.push(match desc.domain {
        Domain::Hpc => 0,
        Domain::TimeSeries => 1,
        Domain::Observation => 2,
        Domain::Database => 3,
    });
    out.push(desc.dims.len() as u8);
    for &d in &desc.dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    Ok(())
}

/// Read a data descriptor, re-validating through [`DataDesc::new`] so
/// hostile dims (zero extents, overflowing products) become typed errors.
pub fn decode_desc<R: Read>(src: &mut R) -> Result<DataDesc> {
    let precision = match read_u8(src)? {
        0 => Precision::Single,
        1 => Precision::Double,
        b => return Err(Error::Corrupt(format!("bad precision byte {b}"))),
    };
    let domain = match read_u8(src)? {
        0 => Domain::Hpc,
        1 => Domain::TimeSeries,
        2 => Domain::Observation,
        3 => Domain::Database,
        b => return Err(Error::Corrupt(format!("bad domain byte {b}"))),
    };
    let ndims = usize::from(read_u8(src)?);
    if ndims == 0 {
        return Err(Error::Corrupt("descriptor has zero dimensions".into()));
    }
    // lint: claim-checked(ndims is u8-bounded, at most 255 u64 slots)
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = read_u64(src)?;
        let d = usize::try_from(d)
            .map_err(|_| Error::Corrupt(format!("dimension {d} exceeds the address space")))?;
        dims.push(d);
    }
    DataDesc::new(precision, dims, domain)
}

/// The client hello: magic plus the version the client speaks.
pub fn client_hello() -> [u8; 6] {
    let mut h = [0u8; 6];
    h[..4].copy_from_slice(MAGIC);
    h[4..].copy_from_slice(&VERSION.to_le_bytes());
    h
}

/// Validate a client hello; returns the client's version.
pub fn check_client_hello(hello: &[u8; 6]) -> Result<u16> {
    if &hello[..4] != MAGIC {
        return Err(Error::Corrupt(format!(
            "bad protocol magic {:?} (expected {MAGIC:?})",
            &hello[..4]
        )));
    }
    let version = u16::from_le_bytes([hello[4], hello[5]]);
    if version != VERSION {
        return Err(Error::Unsupported(format!(
            "protocol version {version} is not supported (server speaks {VERSION})"
        )));
    }
    Ok(version)
}

/// Body of the server's OK handshake reply: the echoed hello plus the
/// server's request-size ceiling, so clients can refuse oversized
/// requests with a typed error *before* streaming a body the server will
/// only cut off.
pub fn hello_body(max_request_bytes: u64) -> Vec<u8> {
    let mut body = client_hello().to_vec();
    body.extend_from_slice(&max_request_bytes.to_le_bytes());
    body
}

/// Validate the server's handshake body; returns the negotiated version
/// and the server's advertised request-size ceiling.
pub fn check_hello_body(body: &[u8]) -> Result<(u16, u64)> {
    if body.len() != 14 {
        return Err(Error::Corrupt("handshake reply has a wrong length".into()));
    }
    let hello = body
        .first_chunk::<6>()
        .ok_or_else(|| Error::Corrupt("handshake reply has a wrong length".into()))?;
    let version = check_client_hello(hello)?;
    let max = fcbench_core::wire::le_u64(body, 6)?;
    Ok((version, max))
}

/// The wire status code for an error.
pub fn error_code(err: &Error) -> u8 {
    match err {
        Error::UnknownCodec { .. } => ERR_UNKNOWN_CODEC,
        Error::BadDescriptor(_) => ERR_BAD_DESCRIPTOR,
        Error::Unsupported(_) | Error::UnsupportedPrecision { .. } => ERR_UNSUPPORTED,
        Error::WorkerPanic(_) => ERR_WORKER_PANIC,
        Error::Io(_) => ERR_IO,
        Error::Busy { .. } => ERR_BUSY,
        Error::Corrupt(_)
        | Error::ChecksumMismatch { .. }
        | Error::LosslessViolation { .. }
        | Error::NameTooLong { .. }
        | Error::TooManyDims { .. } => ERR_CORRUPT,
    }
}

/// Encode an error reply body. [`Error::UnknownCodec`] is structured so the
/// client reconstructs the typed error (with the available-codec listing);
/// every other code carries its display message.
pub fn encode_error_body(err: &Error) -> Vec<u8> {
    match err {
        Error::UnknownCodec {
            requested,
            available,
        } => {
            let mut body = Vec::new();
            body.extend_from_slice(&(requested.len().min(u16::MAX as usize) as u16).to_le_bytes());
            body.extend_from_slice(&requested.as_bytes()[..requested.len().min(u16::MAX as usize)]);
            body.extend_from_slice(&(available.len().min(u16::MAX as usize) as u16).to_le_bytes());
            for name in available.iter().take(u16::MAX as usize) {
                body.extend_from_slice(&(name.len().min(u16::MAX as usize) as u16).to_le_bytes());
                body.extend_from_slice(&name.as_bytes()[..name.len().min(u16::MAX as usize)]);
            }
            body
        }
        Error::Busy { retry_after_ms } => {
            let mut body = Vec::new();
            body.extend_from_slice(&retry_after_ms.to_le_bytes());
            body.extend_from_slice(err.to_string().as_bytes());
            body
        }
        other => other.to_string().into_bytes(),
    }
}

/// Rebuild the typed error from a non-OK reply.
pub fn decode_error(code: u8, body: &[u8]) -> Error {
    if code == ERR_UNKNOWN_CODEC {
        if let Some(err) = decode_unknown_codec(body) {
            return err;
        }
        return Error::Corrupt("malformed unknown-codec reply".into());
    }
    if code == ERR_BUSY {
        // Structured: the retry-after hint leads, the display message
        // trails (and is ignored — the typed error regenerates it).
        return match body.first_chunk::<8>() {
            Some(ms) => Error::Busy {
                retry_after_ms: u64::from_le_bytes(*ms),
            },
            None => Error::Corrupt("malformed busy reply".into()),
        };
    }
    let msg = String::from_utf8_lossy(body).into_owned();
    match code {
        ERR_PROTOCOL | ERR_CORRUPT => Error::Corrupt(msg),
        ERR_BAD_DESCRIPTOR => Error::BadDescriptor(msg),
        ERR_UNSUPPORTED => Error::Unsupported(msg),
        ERR_WORKER_PANIC => Error::WorkerPanic(msg),
        ERR_IO => Error::Io(msg),
        other => Error::Corrupt(format!("unknown error code {other}: {msg}")),
    }
}

fn decode_unknown_codec(body: &[u8]) -> Option<Error> {
    let mut src = body;
    let take_str = |src: &mut &[u8]| -> Option<String> {
        let len = usize::from(read_u16(src).ok()?);
        if src.len() < len {
            return None;
        }
        let (head, rest) = src.split_at(len);
        let s = String::from_utf8(head.to_vec()).ok()?;
        *src = rest;
        Some(s)
    };
    let requested = take_str(&mut src)?;
    let count = usize::from(read_u16(&mut src).ok()?);
    // lint: claim-checked(count is u16-bounded, at most 65535 entries)
    let mut available = Vec::with_capacity(count);
    for _ in 0..count {
        available.push(take_str(&mut src)?);
    }
    src.is_empty().then_some(Error::UnknownCodec {
        requested,
        available,
    })
}

/// One row of a `LIST_CODECS` reply: the codec name plus the registry
/// capabilities a client cares about when picking a method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecListing {
    pub name: String,
    /// May the server fan this codec's blocks across its pool workers?
    pub thread_scalable: bool,
    /// Is the codec driven block-at-a-time (Table 10's set)?
    pub block_capable: bool,
}

const FLAG_THREAD_SCALABLE: u8 = 1;
const FLAG_BLOCK_CAPABLE: u8 = 2;

/// Encode a `LIST_CODECS` reply body. Errors (`NameTooLong`) rather than
/// silently truncating a name the client would then decode differently.
pub fn encode_listings(listings: &[CodecListing]) -> Result<Vec<u8>> {
    let mut body = Vec::new();
    body.extend_from_slice(&(listings.len().min(u16::MAX as usize) as u16).to_le_bytes());
    for l in listings.iter().take(u16::MAX as usize) {
        encode_name(&l.name, &mut body)?;
        let mut flags = 0u8;
        if l.thread_scalable {
            flags |= FLAG_THREAD_SCALABLE;
        }
        if l.block_capable {
            flags |= FLAG_BLOCK_CAPABLE;
        }
        body.push(flags);
    }
    Ok(body)
}

/// Decode a `LIST_CODECS` reply body.
pub fn decode_listings(body: &[u8]) -> Result<Vec<CodecListing>> {
    let mut src = body;
    let count = usize::from(read_u16(&mut src)?);
    // lint: claim-checked(count is u16-bounded, at most 65535 small rows)
    let mut listings = Vec::with_capacity(count);
    for _ in 0..count {
        let name = decode_name(&mut src)?;
        let flags = read_u8(&mut src)?;
        listings.push(CodecListing {
            name,
            thread_scalable: flags & FLAG_THREAD_SCALABLE != 0,
            block_capable: flags & FLAG_BLOCK_CAPABLE != 0,
        });
    }
    if !src.is_empty() {
        return Err(Error::Corrupt("trailing bytes after codec listing".into()));
    }
    Ok(listings)
}

/// A decoded `STATS_V2` reply: every counter, gauge, and latency
/// histogram on the server's telemetry registry, by name — the pool,
/// frame-stream, and serve-layer metrics in one body, with full
/// [`HistogramSnapshot`]s so the *client* can take p50/p99/p999 (and
/// merge snapshots across servers) rather than receiving a few
/// pre-chosen quantiles.
#[derive(Debug, Clone, Default)]
pub struct StatsV2 {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl StatsV2 {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Append a u16-length-prefixed metric name (registry names compose
/// dotted paths and codec labels, so the codec-name u8 limit is too
/// tight here).
fn encode_metric_name(name: &str, out: &mut Vec<u8>) -> Result<()> {
    if name.len() > usize::from(u16::MAX) {
        return Err(Error::NameTooLong { len: name.len() });
    }
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    Ok(())
}

/// Read a u16-length-prefixed UTF-8 metric name from a slice (bounds are
/// checked against real bytes; nothing is reserved for the claim).
fn take_metric_name(src: &mut &[u8]) -> Result<String> {
    let len = usize::from(read_u16(src)?);
    if src.len() < len {
        return Err(Error::Corrupt("metric name truncated".into()));
    }
    let (head, rest) = src.split_at(len);
    let name = String::from_utf8(head.to_vec())
        .map_err(|_| Error::Corrupt("metric name is not UTF-8".into()))?;
    *src = rest;
    Ok(name)
}

/// Bound a declared row count by the bytes actually present: each row
/// occupies at least `min_row_bytes` on the wire, so a count beyond
/// `remaining / min_row_bytes` is hostile or corrupt — reject it before
/// reserving anything for it.
fn plausible_rows(count: usize, remaining: usize, min_row_bytes: usize) -> Result<usize> {
    if count > remaining / min_row_bytes.max(1) {
        return Err(Error::Corrupt(format!(
            "stats body claims {count} rows in {remaining} bytes"
        )));
    }
    Ok(count)
}

/// Encode a `STATS_V2` reply body from a registry [`Snapshot`].
/// Histograms ride sparse — only non-empty buckets — so an idle
/// histogram costs a few bytes instead of its full bucket table.
pub fn encode_stats_v2(snap: &Snapshot) -> Result<Vec<u8>> {
    let mut body = Vec::new();
    for rows in [&snap.counters, &snap.gauges] {
        body.extend_from_slice(&(rows.len().min(u16::MAX as usize) as u16).to_le_bytes());
        for (name, v) in rows.iter().take(u16::MAX as usize) {
            encode_metric_name(name, &mut body)?;
            body.extend_from_slice(&v.to_le_bytes());
        }
    }
    body.extend_from_slice(&(snap.histograms.len().min(u16::MAX as usize) as u16).to_le_bytes());
    for (name, h) in snap.histograms.iter().take(u16::MAX as usize) {
        encode_metric_name(name, &mut body)?;
        body.extend_from_slice(&h.count().to_le_bytes());
        body.extend_from_slice(&h.sum().to_le_bytes());
        body.extend_from_slice(&h.max().to_le_bytes());
        let rows = h.nonzero_len().min(u16::MAX as usize);
        body.extend_from_slice(&(rows as u16).to_le_bytes());
        for (i, c) in h.nonzero_buckets().take(rows) {
            // A bucket index is structurally < NUM_BUCKETS (1312); an
            // impossible one becomes u16::MAX, which decode rejects.
            body.extend_from_slice(&u16::try_from(i).unwrap_or(u16::MAX).to_le_bytes());
            body.extend_from_slice(&c.to_le_bytes());
        }
    }
    Ok(body)
}

/// Decode a `STATS_V2` reply body. Every declared count is bounded by
/// the bytes actually present (`plausible_rows`) before any
/// reservation, bucket indices are range-checked by
/// [`HistogramSnapshot::from_sparse`], and the declared total must agree
/// with the bucket counts — corrupt wire data becomes a typed error,
/// never an allocation or a panic.
pub fn decode_stats_v2(body: &[u8]) -> Result<StatsV2> {
    let mut src = body;
    let mut out = StatsV2::default();
    // Scalar row: 2-byte name length + 8-byte value, at minimum.
    for dst in [&mut out.counters, &mut out.gauges] {
        let count = plausible_rows(usize::from(read_u16(&mut src)?), src.len(), 10)?;
        dst.reserve(count);
        for _ in 0..count {
            let name = take_metric_name(&mut src)?;
            dst.push((name, read_u64(&mut src)?));
        }
    }
    // Histogram row: 2-byte name length + three u64s + 2-byte bucket count.
    let count = plausible_rows(usize::from(read_u16(&mut src)?), src.len(), 28)?;
    out.histograms.reserve(count);
    for _ in 0..count {
        let name = take_metric_name(&mut src)?;
        let total = read_u64(&mut src)?;
        let sum = read_u64(&mut src)?;
        let max = read_u64(&mut src)?;
        let rows = plausible_rows(usize::from(read_u16(&mut src)?), src.len(), 10)?;
        let mut pairs = Vec::with_capacity(rows);
        for _ in 0..rows {
            let i = read_u16(&mut src)?;
            pairs.push((i, read_u64(&mut src)?));
        }
        let snap = HistogramSnapshot::from_sparse(&pairs, sum, max)
            .ok_or_else(|| Error::Corrupt("histogram bucket index out of range".into()))?;
        if snap.count() != total {
            return Err(Error::Corrupt(
                "histogram bucket counts disagree with the declared total".into(),
            ));
        }
        out.histograms.push((name, snap));
    }
    if !src.is_empty() {
        return Err(Error::Corrupt("trailing bytes after stats_v2 body".into()));
    }
    Ok(out)
}

/// Write an OK reply frame around `body`.
pub fn write_ok_reply<W: Write>(sink: &mut W, body: &[u8]) -> Result<()> {
    fcbench_core::fault::fail_point("serve.reply_write")?;
    sink.write_all(&[STATUS_OK])?;
    sink.write_all(&(body.len() as u64).to_le_bytes())?;
    sink.write_all(body)?;
    sink.flush()?;
    Ok(())
}

/// Write an error reply frame for `err`.
pub fn write_err_reply<W: Write>(sink: &mut W, err: &Error) -> Result<()> {
    let body = encode_error_body(err);
    sink.write_all(&[error_code(err)])?;
    sink.write_all(&(body.len() as u64).to_le_bytes())?;
    sink.write_all(&body)?;
    sink.flush()?;
    Ok(())
}

/// Read one reply frame: the OK body on success, the decoded typed error on
/// a non-OK status. Bodies above [`MAX_REPLY_BYTES`] are refused; a client
/// that has handshaken with a server advertising a larger request cap
/// should use [`read_reply_capped`] with the matching [`stream_cap`].
pub fn read_reply<R: Read>(src: &mut R) -> Result<Vec<u8>> {
    read_reply_capped(src, MAX_REPLY_BYTES)
}

/// [`read_reply`] with an explicit body ceiling — a `COMPRESS` reply from a
/// server whose `max_request_bytes` is near [`MAX_REPLY_BYTES`] can
/// legitimately exceed the default (expansion headroom, [`stream_cap`]),
/// and refusing it without reading would leave the unread body desyncing
/// every later frame on the connection.
pub fn read_reply_capped<R: Read>(src: &mut R, cap: usize) -> Result<Vec<u8>> {
    let status = read_u8(src)?;
    let body = read_sized(src, cap)?;
    if status == STATUS_OK {
        Ok(body)
    } else {
        Err(decode_error(status, &body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_round_trips_on_the_wire() {
        let desc = DataDesc::new(Precision::Double, vec![3, 5, 7], Domain::Observation).unwrap();
        let mut wire = Vec::new();
        encode_desc(&desc, &mut wire).unwrap();
        let back = decode_desc(&mut &wire[..]).unwrap();
        assert_eq!(back, desc);
    }

    #[test]
    fn hostile_desc_is_rejected_typed() {
        // Zero-extent dimension.
        let wire = [1u8, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(decode_desc(&mut &wire[..]).is_err());
        // Overflowing element count: 2^63 x 2^63 doubles.
        let mut wire = vec![1u8, 0, 2];
        wire.extend_from_slice(&(1u64 << 63).to_le_bytes());
        wire.extend_from_slice(&(1u64 << 63).to_le_bytes());
        assert!(matches!(
            decode_desc(&mut &wire[..]),
            Err(Error::BadDescriptor(_))
        ));
        // Bad precision byte.
        assert!(decode_desc(&mut &[9u8, 0, 1][..]).is_err());
    }

    #[test]
    fn handshake_round_trips_and_rejects_garbage() {
        assert_eq!(check_client_hello(&client_hello()).unwrap(), VERSION);
        assert_eq!(
            check_hello_body(&hello_body(1 << 26)).unwrap(),
            (VERSION, 1 << 26)
        );
        assert!(check_hello_body(&hello_body(7)[..6]).is_err());
        let mut bad = client_hello();
        bad[0] = b'X';
        assert!(matches!(check_client_hello(&bad), Err(Error::Corrupt(_))));
        let mut wrong_version = client_hello();
        wrong_version[4] = 0xEE;
        wrong_version[5] = 0xEE;
        assert!(matches!(
            check_client_hello(&wrong_version),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_codec_errors_survive_the_wire_typed() {
        let err = Error::UnknownCodec {
            requested: "zstd-22".into(),
            available: vec!["gorilla".into(), "chimp128".into(), "pfpc".into()],
        };
        let code = error_code(&err);
        assert_eq!(code, ERR_UNKNOWN_CODEC);
        let back = decode_error(code, &encode_error_body(&err));
        assert_eq!(back, err);
    }

    #[test]
    fn busy_errors_carry_their_retry_hint_typed() {
        let err = Error::Busy { retry_after_ms: 75 };
        assert_eq!(error_code(&err), ERR_BUSY);
        let body = encode_error_body(&err);
        // The hint leads so clients parse it without touching the text.
        assert_eq!(&body[..8], &75u64.to_le_bytes());
        assert_eq!(decode_error(ERR_BUSY, &body), err);
        // A truncated busy body degrades to a typed Corrupt, not a panic.
        assert!(matches!(
            decode_error(ERR_BUSY, &body[..4]),
            Error::Corrupt(_)
        ));
        // And through a full reply frame.
        let mut wire = Vec::new();
        write_err_reply(&mut wire, &err).unwrap();
        assert_eq!(read_reply(&mut &wire[..]).unwrap_err(), err);
    }

    #[test]
    fn other_errors_map_to_stable_codes() {
        for (err, code) in [
            (Error::Corrupt("x".into()), ERR_CORRUPT),
            (Error::BadDescriptor("x".into()), ERR_BAD_DESCRIPTOR),
            (Error::Unsupported("x".into()), ERR_UNSUPPORTED),
            (Error::WorkerPanic("x".into()), ERR_WORKER_PANIC),
            (Error::Io("x".into()), ERR_IO),
        ] {
            assert_eq!(error_code(&err), code);
            let back = decode_error(code, &encode_error_body(&err));
            assert_eq!(error_code(&back), code);
            assert!(back.to_string().contains('x'));
        }
    }

    #[test]
    fn codec_listings_round_trip() {
        let listings = vec![
            CodecListing {
                name: "gorilla".into(),
                thread_scalable: true,
                block_capable: true,
            },
            CodecListing {
                name: "gfc".into(),
                thread_scalable: false,
                block_capable: false,
            },
        ];
        let wire = encode_listings(&listings).unwrap();
        assert_eq!(decode_listings(&wire).unwrap(), listings);
        assert!(decode_listings(&wire[..5]).is_err());
        let long = vec![CodecListing {
            name: "x".repeat(256),
            thread_scalable: false,
            block_capable: false,
        }];
        assert!(matches!(
            encode_listings(&long),
            Err(Error::NameTooLong { len: 256 })
        ));
    }

    #[test]
    fn replies_round_trip() {
        let mut wire = Vec::new();
        write_ok_reply(&mut wire, b"payload").unwrap();
        assert_eq!(read_reply(&mut &wire[..]).unwrap(), b"payload");

        let mut wire = Vec::new();
        write_err_reply(&mut wire, &Error::BadDescriptor("bad dims".into())).unwrap();
        let err = read_reply(&mut &wire[..]).unwrap_err();
        assert!(matches!(err, Error::BadDescriptor(m) if m.contains("bad dims")));
    }

    #[test]
    fn stream_cap_covers_worst_case_legal_expansion_and_saturates() {
        // A stream produced from a cap-sized raw request must fit back
        // through the DECOMPRESS gate even at block_elems = 1 (8-byte
        // record header per 8-byte block) with the frame layer's maximum
        // tolerated 8x per-block payload expansion: ≤ 9x overall.
        let raw_cap = 64u64 * 1024 * 1024;
        assert!(stream_cap(raw_cap) >= raw_cap * 9);
        // Tiny caps still leave room for the stream prologue alone.
        assert!(stream_cap(16) > 16 * 9 + 64);
        // No overflow at the extreme.
        assert_eq!(stream_cap(u64::MAX), u64::MAX);
    }

    #[test]
    fn stats_v2_round_trips_quantiles_through_the_wire() {
        let reg = fcbench_telemetry::Registry::new();
        reg.counter("serve.requests.ok").add(41);
        reg.gauge("serve.connections.active").add(3);
        let h = reg.histogram("serve.request.compress");
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        let wire = encode_stats_v2(&reg.snapshot()).unwrap();
        let back = decode_stats_v2(&wire).unwrap();
        assert_eq!(back.counter("serve.requests.ok"), Some(41));
        assert_eq!(back.gauge("serve.connections.active"), Some(3));
        let hist = back.histogram("serve.request.compress").unwrap();
        assert_eq!(hist.count(), 5);
        assert_eq!(
            hist.max(),
            reg.snapshot()
                .histogram("serve.request.compress")
                .unwrap()
                .max()
        );
        // Quantiles survive intact: the client recomputes them from the
        // same buckets the server holds.
        assert_eq!(
            hist.p99(),
            reg.snapshot()
                .histogram("serve.request.compress")
                .unwrap()
                .p99()
        );
        assert!(back.histogram("no.such.metric").is_none());
    }

    #[test]
    fn stats_v2_rejects_hostile_claims_before_allocating() {
        // A body declaring 65535 counters with no bytes behind them.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            decode_stats_v2(&wire),
            Err(Error::Corrupt(m)) if m.contains("rows")
        ));

        // An out-of-range bucket index inside an otherwise valid body.
        let mut wire = Vec::new();
        wire.extend_from_slice(&0u16.to_le_bytes()); // counters
        wire.extend_from_slice(&0u16.to_le_bytes()); // gauges
        wire.extend_from_slice(&1u16.to_le_bytes()); // one histogram
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.push(b'h');
        wire.extend_from_slice(&1u64.to_le_bytes()); // total
        wire.extend_from_slice(&5u64.to_le_bytes()); // sum
        wire.extend_from_slice(&5u64.to_le_bytes()); // max
        wire.extend_from_slice(&1u16.to_le_bytes()); // one bucket row
        wire.extend_from_slice(&u16::MAX.to_le_bytes()); // index 65535 >= NUM_BUCKETS
        wire.extend_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            decode_stats_v2(&wire),
            Err(Error::Corrupt(m)) if m.contains("bucket index")
        ));

        // Bucket counts that disagree with the declared total.
        let mut wire = Vec::new();
        wire.extend_from_slice(&0u16.to_le_bytes());
        wire.extend_from_slice(&0u16.to_le_bytes());
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.push(b'h');
        wire.extend_from_slice(&9u64.to_le_bytes()); // claims 9 samples
        wire.extend_from_slice(&5u64.to_le_bytes());
        wire.extend_from_slice(&5u64.to_le_bytes());
        wire.extend_from_slice(&1u16.to_le_bytes());
        wire.extend_from_slice(&3u16.to_le_bytes());
        wire.extend_from_slice(&1u64.to_le_bytes()); // buckets hold 1
        assert!(matches!(
            decode_stats_v2(&wire),
            Err(Error::Corrupt(m)) if m.contains("disagree")
        ));
    }

    #[test]
    fn oversized_reply_lengths_are_rejected_before_allocation() {
        let mut wire = vec![STATUS_OK];
        wire.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_reply(&mut &wire[..]),
            Err(Error::Unsupported(_))
        ));
    }
}

//! `zzip` — a zstd-class general-purpose codec: LZ77 match stage with a
//! large window followed by a canonical-Huffman entropy stage, with
//! per-frame mode selection.
//!
//! The paper benchmarks `bitshuffle::zstd`. zstd itself is a large format
//! (FSE, multiple streams, dictionaries); what matters for the benchmark's
//! findings is its *class*: long-range dictionary matching plus an entropy
//! coder, giving a better ratio than LZ4 at lower compression speed and
//! similar decompression speed. `zzip` reproduces that profile from
//! scratch — like zstd, each frame is stored in whichever mode is
//! smallest:
//!
//! | mode | body |
//! |---|---|
//! | 0 | raw LZ77 stream (deep hash-chain search, wide window) |
//! | 1 | Huffman-coded LZ77 stream |
//! | 2 | Huffman-coded raw input (entropy-only; wins on match-free data, where match-stage framing would only dilute the byte statistics) |
//! | 3 | stored (incompressible) |
//! | 4 | raw LZ4 stream (cheap literal runs; wins on mixed blocks) |
//! | 5 | Huffman-coded LZ4 stream |
//!
//! Evaluating several match stages and entropy pairings per frame is what
//! makes zzip strictly stronger than LZ4 in ratio and slower to compress —
//! the zstd-vs-LZ4 relationship the paper measures.
//!
//! Frame: `magic (1) | mode (1) | raw_len (u32) | body_len (u32) | body`.

use crate::huffman;
use crate::lz4;
use crate::lz77::{self, Lz77Config};

const MAGIC: u8 = 0x5A; // 'Z'

const MODE_LZ_RAW: u8 = 0;
const MODE_LZ_HUFF: u8 = 1;
const MODE_HUFF_ONLY: u8 = 2;
const MODE_STORED: u8 = 3;
const MODE_LZ4_RAW: u8 = 4;
const MODE_LZ4_HUFF: u8 = 5;

/// Error from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZzipError(pub String);

impl std::fmt::Display for ZzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zzip: {}", self.0)
    }
}

impl std::error::Error for ZzipError {}

/// Compress with the default thorough configuration.
pub fn compress(input: &[u8]) -> Vec<u8> {
    compress_with(input, Lz77Config::thorough())
}

// The match-stage candidates and the winning Huffman body, staged in
// per-thread buffers: a bitshuffle/pipeline worker compresses many
// frames, so the staging capacity is allocated once per thread instead of
// per frame.
thread_local! {
    static CANDIDATE_SCRATCH: std::cell::RefCell<[Vec<u8>; 3]> =
        const { std::cell::RefCell::new([const { Vec::new() }; 3]) };
}

/// Compress with an explicit LZ77 configuration.
///
/// Mode selection prices the three Huffman candidates via
/// [`huffman::encoded_len`] (one histogram pass each, exact by
/// construction) and materializes only the winning body — the selected
/// mode and emitted frame are identical to encoding all six candidates
/// and keeping the smallest, at roughly half the entropy-stage work.
pub fn compress_with(input: &[u8], cfg: Lz77Config) -> Vec<u8> {
    CANDIDATE_SCRATCH.with_borrow_mut(|[lz, l4, huff]| {
        lz77::compress_into(input, cfg, lz);
        lz4::compress_into(input, l4);

        // Candidate sizes in mode order; first strict minimum wins, so
        // ties resolve exactly as the materialize-everything fold did.
        let sizes: [(u8, usize); 6] = [
            (MODE_LZ_RAW, lz.len()),
            (MODE_LZ_HUFF, huffman::encoded_len(lz)),
            (MODE_HUFF_ONLY, huffman::encoded_len(input)),
            (MODE_STORED, input.len()),
            (MODE_LZ4_RAW, l4.len()),
            (MODE_LZ4_HUFF, huffman::encoded_len(l4)),
        ];
        let (mode, body_len) =
            sizes
                .iter()
                .skip(1)
                .fold(&sizes[0], |best, c| if c.1 < best.1 { c } else { best });

        let body: &[u8] = match *mode {
            MODE_LZ_RAW => lz,
            MODE_LZ_HUFF => {
                huffman::encode_into(lz, huff);
                huff
            }
            MODE_HUFF_ONLY => {
                huffman::encode_into(input, huff);
                huff
            }
            MODE_LZ4_RAW => l4,
            MODE_LZ4_HUFF => {
                huffman::encode_into(l4, huff);
                huff
            }
            _ => input, // MODE_STORED
        };
        debug_assert_eq!(body.len(), *body_len);

        let mut out = Vec::with_capacity(10 + body.len());
        out.push(MAGIC);
        out.push(*mode);
        out.extend_from_slice(&(input.len() as u32).to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(body);
        out
    })
}

/// Decompress a [`compress`] stream.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, ZzipError> {
    if input.len() < 10 {
        return Err(ZzipError("frame shorter than header".into()));
    }
    if input[0] != MAGIC {
        return Err(ZzipError("bad magic".into()));
    }
    let mode = input[1];
    let raw_len = u32::from_le_bytes([input[2], input[3], input[4], input[5]]) as usize;
    let body_len = u32::from_le_bytes([input[6], input[7], input[8], input[9]]) as usize;
    let body = input
        .get(10..10 + body_len)
        .ok_or_else(|| ZzipError("body truncated".into()))?;
    if 10 + body_len != input.len() {
        return Err(ZzipError("trailing bytes after body".into()));
    }

    let out = match mode {
        MODE_LZ_RAW => lz77::decompress(body, raw_len).map_err(|e| ZzipError(e.to_string()))?,
        MODE_LZ_HUFF => {
            let lz = huffman::decode(body).map_err(|e| ZzipError(e.to_string()))?;
            lz77::decompress(&lz, raw_len).map_err(|e| ZzipError(e.to_string()))?
        }
        MODE_HUFF_ONLY => huffman::decode(body).map_err(|e| ZzipError(e.to_string()))?,
        MODE_STORED => body.to_vec(),
        MODE_LZ4_RAW => lz4::decompress(body, raw_len).map_err(|e| ZzipError(e.to_string()))?,
        MODE_LZ4_HUFF => {
            let l4 = huffman::decode(body).map_err(|e| ZzipError(e.to_string()))?;
            lz4::decompress(&l4, raw_len).map_err(|e| ZzipError(e.to_string()))?
        }
        b => return Err(ZzipError(format!("unknown mode byte {b}"))),
    };
    if out.len() != raw_len {
        return Err(ZzipError(format!(
            "decoded {} bytes, header claims {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_small() {
        round_trip(&[]);
        round_trip(b"a");
        round_trip(b"hello zzip");
    }

    #[test]
    fn beats_lz4_on_structured_float_data() {
        // Smooth float ramp: big-window LZ + entropy stage should win.
        let mut data = Vec::new();
        for i in 0..50_000 {
            data.extend_from_slice(&((i / 10) as f32).to_le_bytes());
        }
        let z = compress(&data);
        let l = crate::lz4::compress(&data);
        assert!(
            z.len() < l.len(),
            "zzip ({}) should beat lz4 ({}) on structured data",
            z.len(),
            l.len()
        );
        round_trip(&data);
    }

    #[test]
    fn entropy_only_mode_wins_on_skewed_matchless_data() {
        // Skewed byte distribution with no repeats longer than 3: LZ77
        // finds nothing; Huffman-only must win over both LZ modes and
        // over LZ4.
        let mut x = 0x2222_7777u64;
        let data: Vec<u8> = (0..40_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Two-peak distribution over 16 symbols.
                let r = (x >> 59) as u8;
                if r < 12 {
                    r % 4
                } else {
                    16 + (x >> 33) as u8 % 16
                }
            })
            .collect();
        let z = compress(&data);
        let l = crate::lz4::compress(&data);
        assert!(z.len() < l.len(), "zzip {} vs lz4 {}", z.len(), l.len());
        // ~4.3-bit entropy over a skewed alphabet: Huffman must engage.
        assert!(
            z.len() < data.len() * 3 / 4,
            "entropy stage must engage: {}",
            z.len()
        );
        round_trip(&data);
    }

    #[test]
    fn stored_mode_bounds_expansion() {
        let mut x = 0x1357_9BDFu32;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 8) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(
            c.len() <= data.len() + 10,
            "stored mode caps expansion at the header"
        );
        round_trip(&data);
    }

    #[test]
    fn text_compresses_strongly() {
        let text = b"floating point compression benchmark study ".repeat(500);
        let c = compress(&text);
        assert!(c.len() < text.len() / 5);
        round_trip(&text);
    }

    #[test]
    fn rejects_corruption() {
        let c = compress(b"some valid data some valid data");
        assert!(decompress(&c[..5]).is_err());
        let mut bad = c.clone();
        bad[0] = 0;
        assert!(decompress(&bad).is_err());
        let mut bad = c.clone();
        bad[1] = 77; // unknown mode
        assert!(decompress(&bad).is_err());
        let mut bad = c.clone();
        bad.push(7);
        assert!(decompress(&bad).is_err());
        // Corrupt the declared raw length: the mode decoder must complain.
        let mut bad = c.clone();
        bad[2] = bad[2].wrapping_add(1);
        assert!(decompress(&bad).is_err());
    }

    #[test]
    fn fast_config_round_trips() {
        let data = b"fast config data ".repeat(300);
        let c = compress_with(&data, Lz77Config::fast());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn all_modes_reachable() {
        // stored: pure noise (tested above); lz-raw: tiny input where the
        // Huffman table never pays.
        let tiny = compress(b"abcabcabc");
        assert_eq!(tiny[1], MODE_LZ_RAW);
        // huff-only or lz-huff on larger structured data.
        let text = compress(&b"benchmark ".repeat(2000));
        assert!(text[1] == MODE_LZ_HUFF || text[1] == MODE_LZ_RAW);
    }
}

//! # fcbench-entropy
//!
//! Entropy-coding substrates for FCBench-rs, all implemented from scratch
//! (the benchmark's offline build permits no third-party compression
//! crates):
//!
//! - [`bits`] — MSB-first bit writer/reader (Gorilla/Chimp/BUFF streams);
//! - [`lz4`] — the LZ4 block format with greedy hash-table matching;
//! - [`lz77`] — configurable-window hash-chain LZ77 (SPDP's `LZa6`);
//! - [`huffman`] — canonical, length-limited Huffman over byte symbols;
//! - [`range`] — carry-less range coder + adaptive models (fpzip, Dzip);
//! - [`zzip`] — the zstd-class LZ77+Huffman codec used by
//!   `bitshuffle::zstd`'s backend.

pub mod bits;
pub mod huffman;
pub mod lz4;
pub mod lz77;
pub mod range;
pub mod zzip;

pub use bits::{BitReader, BitSink, BitWriter};
pub use range::{AdaptiveModel, RangeDecoder, RangeEncoder};

//! # fcbench-entropy
//!
//! Entropy-coding substrates for FCBench-rs, all implemented from scratch
//! (the benchmark's offline build permits no third-party compression
//! crates):
//!
//! - [`bits`] — word-at-a-time MSB-first bit writer/reader built on a
//!   64-bit accumulator (Gorilla/Chimp control streams, fpzip verbatim
//!   tails); the pre-rewrite byte-granular code survives as
//!   [`bits::reference`] for differential testing and the `bitstream`
//!   microbench;
//! - [`lz4`] — the LZ4 block format with greedy hash-table matching;
//! - [`lz77`] — configurable-window hash-chain LZ77 (SPDP's `LZa6`);
//! - [`huffman`] — canonical, length-limited Huffman over byte symbols;
//! - [`range`] — carry-less range coder + adaptive models (fpzip, Dzip);
//! - [`zzip`] — the zstd-class LZ77+Huffman codec used by
//!   `bitshuffle::zstd`'s backend.

// The bit engine's unaligned word I/O is all `from_be_bytes`/`to_be_bytes`
// on fixed arrays — it benches within noise of raw pointer loads, so the
// whole crate stays free of `unsafe` (CI's clippy -D warnings plus this
// attribute enforce it).
#![forbid(unsafe_code)]

pub mod bits;
pub mod huffman;
pub mod lz4;
pub mod lz77;
pub mod range;
pub mod zzip;

pub use bits::{BitReader, BitSink, BitWriter};
pub use range::{AdaptiveModel, RangeDecoder, RangeEncoder};

//! Carry-less range coder (Martin 1979 / Subbotin variant) with adaptive
//! frequency models.
//!
//! fpzip encodes residual sign/leading-zero symbols with "a fast range
//! coding method \[49\]" (§3.1); Dzip drives the same coder with
//! RNN-predicted distributions (§4.5). Range coding is the byte-oriented
//! formulation of arithmetic coding (§2.2(3)).

const TOP: u32 = 1 << 24;
const BOTTOM: u32 = 1 << 16;

/// Maximum allowed total frequency of a model (must stay below `BOTTOM`
/// so the range never underflows).
pub const MAX_TOTAL_FREQ: u32 = BOTTOM - 1;

/// Streaming range encoder.
pub struct RangeEncoder {
    low: u32,
    range: u32,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            out: Vec::new(),
        }
    }

    /// Encode a symbol occupying `[cum, cum + freq)` of a total of `total`.
    ///
    /// Requires `freq > 0`, `cum + freq <= total`, `total <= MAX_TOTAL_FREQ`.
    #[inline]
    pub fn encode(&mut self, cum: u32, freq: u32, total: u32) {
        debug_assert!(freq > 0);
        debug_assert!(cum.checked_add(freq).is_some_and(|e| e <= total));
        debug_assert!(total <= MAX_TOTAL_FREQ);
        self.range /= total;
        self.low = self.low.wrapping_add(cum.wrapping_mul(self.range));
        self.range = self.range.wrapping_mul(freq);
        self.normalize();
    }

    #[inline]
    fn normalize(&mut self) {
        loop {
            if (self.low ^ self.low.wrapping_add(self.range)) < TOP {
                // Top byte settled.
            } else if self.range < BOTTOM {
                // Underflow: clamp range to the distance to the next
                // BOTTOM boundary (Subbotin's carry-less trick).
                self.range = self.low.wrapping_neg() & (BOTTOM - 1);
            } else {
                break;
            }
            self.out.push((self.low >> 24) as u8);
            self.low = self.low.wrapping_shl(8);
            self.range = self.range.wrapping_shl(8);
        }
    }

    /// Flush the final state and return the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..4 {
            self.out.push((self.low >> 24) as u8);
            self.low = self.low.wrapping_shl(8);
        }
        self.out
    }
}

/// Streaming range decoder over a byte slice.
pub struct RangeDecoder<'a> {
    low: u32,
    range: u32,
    code: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Start decoding. Short inputs are zero-extended (matching the
    /// encoder's flush padding).
    pub fn new(input: &'a [u8]) -> Self {
        let mut d = RangeDecoder {
            low: 0,
            range: u32::MAX,
            code: 0,
            input,
            pos: 0,
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// The cumulative-frequency bucket of the next symbol, in `[0, total)`.
    #[inline]
    pub fn decode_freq(&mut self, total: u32) -> u32 {
        debug_assert!(total <= MAX_TOTAL_FREQ);
        self.range /= total;
        let v = self.code.wrapping_sub(self.low) / self.range;
        v.min(total - 1)
    }

    /// Commit the symbol identified from [`Self::decode_freq`].
    #[inline]
    pub fn decode_update(&mut self, cum: u32, freq: u32) {
        self.low = self.low.wrapping_add(cum.wrapping_mul(self.range));
        self.range = self.range.wrapping_mul(freq);
        loop {
            if (self.low ^ self.low.wrapping_add(self.range)) < TOP {
                // Settled byte.
            } else if self.range < BOTTOM {
                self.range = self.low.wrapping_neg() & (BOTTOM - 1);
            } else {
                break;
            }
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.low = self.low.wrapping_shl(8);
            self.range = self.range.wrapping_shl(8);
        }
    }

    /// Bytes consumed so far (for diagnostics).
    pub fn consumed(&self) -> usize {
        self.pos.min(self.input.len())
    }
}

/// Adaptive frequency model over `n` symbols with periodic halving.
///
/// Frequencies start at 1 (every symbol encodable) and bump by
/// [`Self::INCREMENT`] per occurrence; when the total would exceed
/// [`MAX_TOTAL_FREQ`], all frequencies halve (staying ≥ 1).
#[derive(Debug, Clone)]
pub struct AdaptiveModel {
    freq: Vec<u32>,
    total: u32,
}

impl AdaptiveModel {
    pub const INCREMENT: u32 = 32;

    pub fn new(n: usize) -> Self {
        assert!(n >= 1 && n as u32 <= MAX_TOTAL_FREQ);
        AdaptiveModel {
            freq: vec![1; n],
            total: n as u32,
        }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.freq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.freq.is_empty()
    }

    /// `(cum, freq, total)` triple for `symbol`.
    #[inline]
    pub fn lookup(&self, symbol: usize) -> (u32, u32, u32) {
        let cum: u32 = self.freq[..symbol].iter().sum();
        (cum, self.freq[symbol], self.total)
    }

    /// Find the symbol whose bucket contains `target`; returns
    /// `(symbol, cum, freq, total)`.
    #[inline]
    pub fn find(&self, target: u32) -> (usize, u32, u32, u32) {
        let mut cum = 0u32;
        for (i, &f) in self.freq.iter().enumerate() {
            if target < cum + f {
                return (i, cum, f, self.total);
            }
            cum += f;
        }
        let last = self.freq.len() - 1;
        (
            last,
            self.total - self.freq[last],
            self.freq[last],
            self.total,
        )
    }

    /// Record one occurrence of `symbol`.
    #[inline]
    pub fn update(&mut self, symbol: usize) {
        self.freq[symbol] += Self::INCREMENT;
        self.total += Self::INCREMENT;
        if self.total > MAX_TOTAL_FREQ {
            self.total = 0;
            for f in self.freq.iter_mut() {
                *f = (*f).div_ceil(2);
                self.total += *f;
            }
        }
    }

    /// Encode `symbol` through `enc` and adapt.
    #[inline]
    pub fn encode(&mut self, enc: &mut RangeEncoder, symbol: usize) {
        let (cum, freq, total) = self.lookup(symbol);
        enc.encode(cum, freq, total);
        self.update(symbol);
    }

    /// Decode one symbol through `dec` and adapt.
    #[inline]
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> usize {
        let target = dec.decode_freq(self.total);
        let (sym, cum, freq, _) = self.find(target);
        dec.decode_update(cum, freq);
        self.update(sym);
        sym
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_symbols(symbols: &[usize], n: usize) {
        let mut model = AdaptiveModel::new(n);
        let mut enc = RangeEncoder::new();
        for &s in symbols {
            model.encode(&mut enc, s);
        }
        let bytes = enc.finish();

        let mut model = AdaptiveModel::new(n);
        let mut dec = RangeDecoder::new(&bytes);
        for &expected in symbols {
            assert_eq!(model.decode(&mut dec), expected);
        }
    }

    #[test]
    fn empty_stream() {
        round_trip_symbols(&[], 4);
    }

    #[test]
    fn single_symbol_repeated() {
        round_trip_symbols(&[3; 5000], 8);
        // Highly predictable => strong compression.
        let mut model = AdaptiveModel::new(8);
        let mut enc = RangeEncoder::new();
        for _ in 0..5000 {
            model.encode(&mut enc, 3);
        }
        let bytes = enc.finish();
        assert!(bytes.len() < 300, "got {} bytes", bytes.len());
    }

    #[test]
    fn alternating_symbols() {
        let syms: Vec<usize> = (0..2000).map(|i| i % 2).collect();
        round_trip_symbols(&syms, 2);
    }

    #[test]
    fn uniform_random_symbols() {
        let mut x = 42u64;
        let syms: Vec<usize> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as usize % 64
            })
            .collect();
        round_trip_symbols(&syms, 64);
    }

    #[test]
    fn skewed_distribution_compresses_below_uniform() {
        // 90% zeros in a 16-symbol alphabet.
        let mut x = 1u64;
        let syms: Vec<usize> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                if (x >> 60) < 14 {
                    0
                } else {
                    ((x >> 33) % 16) as usize
                }
            })
            .collect();
        let mut model = AdaptiveModel::new(16);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            model.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        // Uniform would need 4 bits/symbol = 10_000 bytes; skew should beat it.
        assert!(bytes.len() < 10_000, "got {} bytes", bytes.len());
        round_trip_symbols(&syms, 16);
    }

    #[test]
    fn large_alphabet() {
        let syms: Vec<usize> = (0..3000).map(|i| (i * 37) % 256).collect();
        round_trip_symbols(&syms, 256);
    }

    #[test]
    fn model_halving_keeps_symbols_encodable() {
        let mut m = AdaptiveModel::new(4);
        // Hammer one symbol until several halvings occur.
        for _ in 0..100_000 {
            m.update(0);
        }
        let (_, f1, total) = m.lookup(1);
        assert!(f1 >= 1, "rare symbol frequency must stay >= 1");
        assert!(total <= MAX_TOTAL_FREQ);
        // And the stream still round-trips.
        round_trip_symbols(&[0, 0, 0, 1, 2, 3, 0, 0], 4);
    }

    #[test]
    fn find_and_lookup_agree() {
        let mut m = AdaptiveModel::new(10);
        for i in 0..10 {
            for _ in 0..i {
                m.update(i);
            }
        }
        for sym in 0..10 {
            let (cum, freq, total) = m.lookup(sym);
            let (s2, c2, f2, t2) = m.find(cum);
            assert_eq!((s2, c2, f2, t2), (sym, cum, freq, total));
            let (s3, ..) = m.find(cum + freq - 1);
            assert_eq!(s3, sym);
        }
    }

    #[test]
    fn explicit_cdf_coding_without_model() {
        // Dzip-style: caller supplies (cum, freq, total) directly.
        let cdf = [(0u32, 10u32), (10, 20), (30, 5), (35, 65)];
        let total = 100u32;
        let seq = [0usize, 1, 3, 3, 2, 0, 1, 1, 3];
        let mut enc = RangeEncoder::new();
        for &s in &seq {
            enc.encode(cdf[s].0, cdf[s].1, total);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &s in &seq {
            let t = dec.decode_freq(total);
            let sym = cdf.iter().position(|&(c, f)| t >= c && t < c + f).unwrap();
            assert_eq!(sym, s);
            dec.decode_update(cdf[sym].0, cdf[sym].1);
        }
    }
}

//! MSB-first bit-granular writer and reader, word-at-a-time.
//!
//! These are the backbone of Gorilla/Chimp control-bit streams, BUFF's
//! padded sub-columns, and the verbatim-bit tails of fpzip/pFPC/GFC — the
//! innermost loops of every XOR-family codec, which is why they are built
//! around a **64-bit accumulator** instead of the byte-granular loop the
//! first implementation used (retained as [`mod@reference`] for differential
//! testing and the `bitstream` microbench):
//!
//! - [`BitWriter`]/[`BitSink`] stage bits in a `u64` whose **top** `nbits`
//!   bits are the pending stream suffix; a field of any width `n <= 64`
//!   lands with one shift+or, and a whole word spills to the byte buffer
//!   with a single big-endian store — one capacity check per *word*
//!   instead of one per *byte*, and no per-bit branching.
//! - [`BitReader`] extracts fields from an unaligned big-endian `u64`
//!   window loaded at the cursor's byte; `read_bits` is a load, two
//!   shifts, and a cursor add — no division or per-byte loop. The
//!   [`BitReader::peek_bits`]/[`BitReader::consume`] pair lets
//!   variable-length control-code dispatch (Gorilla, Chimp, the timestamp
//!   codec) read the stream once and branch on the result.
//!
//! The wire layout is exactly the MSB-first layout of the reference
//! implementation — every FCB1/FCB2/FCB3 stream and FCS1 reply produced
//! before the rewrite round-trips byte-identically (enforced by the
//! differential proptests in `tests/proptests.rs`).
//!
//! No `unsafe` anywhere: the unaligned loads/stores are
//! `u64::from_be_bytes`/`to_be_bytes` on fixed-size arrays, which compile
//! to single unaligned word accesses on every target we care about.

/// Writes bits MSB-first into a growable byte buffer.
///
/// Invariant: `nbits < 64`, the top `nbits` bits of `acc` are the staged
/// stream suffix, and all lower bits of `acc` are zero.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Staged bits, MSB-aligned.
    acc: u64,
    /// Number of valid bits in `acc` (0..=63).
    nbits: u32,
}

/// Writes bits MSB-first by **appending to a caller-owned byte buffer** —
/// the zero-allocation sibling of [`BitWriter`], used by codecs whose
/// `compress_into` emits straight into a reused output vector. The sink
/// starts byte-aligned after whatever the buffer already holds.
///
/// Staged bits are held in the accumulator until a whole word (or the
/// sink's end of life) spills them, so the final partial word reaches the
/// buffer when the sink is dropped or [`BitSink::finish`]ed — callers
/// reading `buf.len()` must let the sink go first.
#[derive(Debug)]
pub struct BitSink<'a> {
    buf: &'a mut Vec<u8>,
    start: usize,
    /// Staged bits, MSB-aligned.
    acc: u64,
    /// Number of valid bits in `acc` (0..=63).
    nbits: u32,
}

/// Append the low `n` bits of `value` to an accumulator/buffer pair.
/// Shared by [`BitWriter`] and [`BitSink`]; the single hot branch is
/// "does the field fit the accumulator's free space".
#[inline]
fn push_bits_acc(buf: &mut Vec<u8>, acc: &mut u64, nbits: &mut u32, value: u64, n: u32) {
    debug_assert!(n <= 64);
    if n == 0 {
        return;
    }
    debug_assert!(n == 64 || value >> n == 0, "value has bits above the field");
    let space = 64 - *nbits; // 1..=64
    if n < space {
        *acc |= value << (space - n);
        *nbits += n;
    } else {
        // The field completes (and possibly overflows) the word: spill.
        let word = *acc | (value >> (n - space));
        buf.extend_from_slice(&word.to_be_bytes());
        let rem = n - space; // 0..=63
        *acc = if rem == 0 { 0 } else { value << (64 - rem) };
        *nbits = rem;
    }
}

/// Append a single bit — the fully-inlined one-branch form of
/// [`push_bits_acc`].
#[inline]
fn push_bit_acc(buf: &mut Vec<u8>, acc: &mut u64, nbits: &mut u32, bit: bool) {
    let space = 64 - *nbits;
    if space > 1 {
        *acc |= (bit as u64) << (space - 1);
        *nbits += 1;
    } else {
        let word = *acc | bit as u64;
        buf.extend_from_slice(&word.to_be_bytes());
        *acc = 0;
        *nbits = 0;
    }
}

/// Zero-pad the staged bits to a byte boundary (bits beyond `nbits` are
/// already zero by invariant, so only the count moves).
#[inline]
fn align_acc(buf: &mut Vec<u8>, acc: &mut u64, nbits: &mut u32) {
    let aligned = (*nbits + 7) & !7;
    if aligned == 64 {
        buf.extend_from_slice(&acc.to_be_bytes());
        *acc = 0;
        *nbits = 0;
    } else {
        *nbits = aligned;
    }
}

/// Spill the staged partial word: `ceil(nbits / 8)` big-endian bytes.
#[inline]
fn flush_acc(buf: &mut Vec<u8>, acc: &mut u64, nbits: &mut u32) {
    let bytes = (*nbits as usize).div_ceil(8);
    buf.extend_from_slice(&acc.to_be_bytes()[..bytes]);
    *acc = 0;
    *nbits = 0;
}

/// Bulk-append whole bytes; the stream must be byte-aligned. Used for the
/// aligned runs inside bit streams (e.g. the leading 64-bit header fields
/// of the timestamp codec) so they cost a `memcpy`, not a bit loop.
#[inline]
fn extend_aligned_acc(buf: &mut Vec<u8>, acc: &mut u64, nbits: &mut u32, bytes: &[u8]) {
    assert_eq!(
        *nbits % 8,
        0,
        "extend_aligned requires a byte-aligned stream"
    );
    flush_acc(buf, acc, nbits);
    buf.extend_from_slice(bytes);
}

impl<'a> BitSink<'a> {
    /// Append bits after the current contents of `buf`.
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        let start = buf.len();
        BitSink {
            buf,
            start,
            acc: 0,
            nbits: 0,
        }
    }

    /// Bits written through this sink so far.
    pub fn bit_len(&self) -> usize {
        (self.buf.len() - self.start) * 8 + self.nbits as usize
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        push_bit_acc(self.buf, &mut self.acc, &mut self.nbits, bit);
    }

    /// Append the low `n` bits of `value`, MSB of that field first. `n <= 64`.
    #[inline]
    pub fn push_bits(&mut self, value: u64, n: u32) {
        push_bits_acc(self.buf, &mut self.acc, &mut self.nbits, value, n);
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        align_acc(self.buf, &mut self.acc, &mut self.nbits);
    }

    /// Bulk-append whole bytes. The sink must be byte-aligned (panics
    /// otherwise — a misaligned bulk copy would silently corrupt the
    /// stream).
    pub fn extend_aligned(&mut self, bytes: &[u8]) {
        extend_aligned_acc(self.buf, &mut self.acc, &mut self.nbits, bytes);
    }

    /// Flush the staged partial word into the buffer and release the
    /// borrow. Equivalent to dropping the sink; spelled out so the flush
    /// point is visible at call sites that read `buf.len()` right after.
    pub fn finish(self) {}
}

impl Drop for BitSink<'_> {
    fn drop(&mut self) {
        flush_acc(self.buf, &mut self.acc, &mut self.nbits);
    }
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Bytes the finished stream will occupy (final partial byte included).
    pub fn byte_len(&self) -> usize {
        self.bit_len().div_ceil(8)
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        push_bit_acc(&mut self.buf, &mut self.acc, &mut self.nbits, bit);
    }

    /// Append the low `n` bits of `value`, MSB of that field first. `n <= 64`.
    #[inline]
    pub fn push_bits(&mut self, value: u64, n: u32) {
        push_bits_acc(&mut self.buf, &mut self.acc, &mut self.nbits, value, n);
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        align_acc(&mut self.buf, &mut self.acc, &mut self.nbits);
    }

    /// Bulk-append whole bytes. The writer must be byte-aligned (panics
    /// otherwise).
    pub fn extend_aligned(&mut self, bytes: &[u8]) {
        extend_aligned_acc(&mut self.buf, &mut self.acc, &mut self.nbits, bytes);
    }

    /// Finish, returning the backing bytes (final partial byte zero-padded).
    pub fn into_bytes(mut self) -> Vec<u8> {
        flush_acc(&mut self.buf, &mut self.acc, &mut self.nbits);
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor; never exceeds `buf.len() * 8`.
    pos: usize,
}

/// Big-endian `u64` at byte offset `byte`, zero-padded past the end of
/// `buf`. In-bounds loads compile to a single unaligned word access.
#[inline]
fn load_be_u64(buf: &[u8], byte: usize) -> u64 {
    match buf.get(byte..).and_then(|t| t.first_chunk::<8>()) {
        Some(w) => u64::from_be_bytes(*w),
        None => {
            let mut tmp = [0u8; 8];
            if byte < buf.len() {
                let tail = &buf[byte..];
                tmp[..tail.len()].copy_from_slice(tail);
            }
            u64::from_be_bytes(tmp)
        }
    }
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        (self.buf.len() * 8).saturating_sub(self.pos)
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The next `n` bits at the cursor, zero-padded past end of stream.
    /// `n` must be 1..=64 (enforced upstream by the public callers).
    #[inline]
    fn extract(&self, n: u32) -> u64 {
        let byte = self.pos >> 3;
        let off = (self.pos & 7) as u32;
        // `w` holds the next `64 - off` stream bits MSB-aligned; its low
        // `off` bits are zero.
        let w = load_be_u64(self.buf, byte) << off;
        let have = 64 - off;
        if n <= have {
            w >> (64 - n)
        } else {
            // Only reachable for n > 57 at an unaligned cursor: the field
            // spills into a ninth byte.
            let extra = n - have; // 1..=7
            let next = u64::from(*self.buf.get(byte + 8).unwrap_or(&0));
            (w >> (64 - n)) | (next >> (8 - extra))
        }
    }

    /// Read one bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.buf.get(self.pos >> 3)?;
        let bit = (byte >> (7 - (self.pos & 7))) & 1;
        self.pos += 1;
        Some(bit == 1)
    }

    /// Read `n` bits (MSB-first) into the low bits of a u64. `n <= 64`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Some(0);
        }
        if self.remaining() < n as usize {
            return None;
        }
        let out = self.extract(n);
        self.pos += n as usize;
        Some(out)
    }

    /// The next `n` bits without advancing, zero-padded past end of
    /// stream. Pair with [`BitReader::consume`] for control-code dispatch:
    /// peek the widest prefix once, branch, then consume the actual code
    /// width (`consume` still bounds-checks, so truncated streams surface
    /// as errors exactly where a plain `read_bits` would have failed).
    #[inline]
    pub fn peek_bits(&self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        if n == 0 {
            return 0;
        }
        self.extract(n)
    }

    /// Advance the cursor by `n` bits; `None` if fewer remain (cursor
    /// unchanged).
    #[inline]
    pub fn consume(&mut self, n: u32) -> Option<()> {
        if self.remaining() < n as usize {
            return None;
        }
        self.pos += n as usize;
        Some(())
    }

    /// Borrow the next `len` whole bytes and advance past them. The
    /// cursor must be byte-aligned and the bytes present; `None`
    /// otherwise. The aligned dual of [`BitSink::extend_aligned`].
    #[inline]
    pub fn read_aligned_bytes(&mut self, len: usize) -> Option<&'a [u8]> {
        if self.pos % 8 != 0 {
            return None;
        }
        let start = self.pos / 8;
        let s = self.buf.get(start..start + len)?;
        self.pos += len * 8;
        Some(s)
    }

    /// Skip to the next byte boundary, clamped to end of stream (aligning
    /// an exhausted reader must not push the cursor past the buffer, or
    /// `remaining`/`position` would disagree about the stream length).
    pub fn align_byte(&mut self) {
        self.pos = (self.pos.div_ceil(8) * 8).min(self.buf.len() * 8);
    }
}

/// The original byte-granular implementation, verbatim. Kept as the
/// wire-format oracle: the differential proptests in `tests/proptests.rs`
/// prove the accumulator engine above produces and consumes byte-identical
/// streams, and `benches/bitstream.rs` measures the speedup against it.
/// Not for production use.
pub mod reference {
    /// Append one bit to `(buf, used)` state shared by writer/sink.
    #[inline]
    fn push_bit_raw(buf: &mut Vec<u8>, used: &mut u32, bit: bool) {
        if *used == 0 {
            buf.push(0);
            *used = 8;
        }
        *used -= 1;
        if bit {
            if let Some(last) = buf.last_mut() {
                *last |= 1 << *used;
            }
        }
    }

    /// Append the low `n` bits of `value` (MSB of the field first). `n <= 64`.
    #[inline]
    fn push_bits_raw(buf: &mut Vec<u8>, used: &mut u32, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        if n < 64 {
            debug_assert_eq!(value >> n, 0, "value has bits above the field width");
        }
        let mut remaining = n;
        while remaining > 0 {
            if *used == 0 {
                buf.push(0);
                *used = 8;
            }
            let take = remaining.min(*used);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            if let Some(last) = buf.last_mut() {
                *last |= chunk << (*used - take);
            }
            *used -= take;
            remaining -= take;
        }
    }

    /// Byte-granular MSB-first writer (the pre-rewrite `BitWriter`).
    #[derive(Debug, Default, Clone)]
    pub struct BitWriter {
        buf: Vec<u8>,
        /// Free bits remaining in the final byte (0..=8). 0 = aligned.
        used: u32,
    }

    impl BitWriter {
        pub fn new() -> Self {
            BitWriter::default()
        }

        /// Pre-sized constructor, mirroring the engine's, so benchmarks
        /// comparing the two measure bit I/O rather than `Vec` regrowth.
        pub fn with_capacity(bytes: usize) -> Self {
            BitWriter {
                buf: Vec::with_capacity(bytes),
                used: 0,
            }
        }

        pub fn bit_len(&self) -> usize {
            self.buf.len() * 8 - self.used as usize
        }

        #[inline]
        pub fn push_bit(&mut self, bit: bool) {
            push_bit_raw(&mut self.buf, &mut self.used, bit);
        }

        #[inline]
        pub fn push_bits(&mut self, value: u64, n: u32) {
            push_bits_raw(&mut self.buf, &mut self.used, value, n);
        }

        pub fn align_byte(&mut self) {
            self.used = 0;
        }

        pub fn into_bytes(self) -> Vec<u8> {
            self.buf
        }
    }

    /// Byte-granular appending sink (the pre-rewrite `BitSink`).
    #[derive(Debug)]
    pub struct BitSink<'a> {
        buf: &'a mut Vec<u8>,
        start: usize,
        used: u32,
    }

    impl<'a> BitSink<'a> {
        pub fn new(buf: &'a mut Vec<u8>) -> Self {
            let start = buf.len();
            BitSink {
                buf,
                start,
                used: 0,
            }
        }

        pub fn bit_len(&self) -> usize {
            (self.buf.len() - self.start) * 8 - self.used as usize
        }

        #[inline]
        pub fn push_bit(&mut self, bit: bool) {
            push_bit_raw(self.buf, &mut self.used, bit);
        }

        #[inline]
        pub fn push_bits(&mut self, value: u64, n: u32) {
            push_bits_raw(self.buf, &mut self.used, value, n);
        }

        pub fn align_byte(&mut self) {
            self.used = 0;
        }
    }

    /// Byte-granular MSB-first reader (the pre-rewrite `BitReader`).
    #[derive(Debug, Clone)]
    pub struct BitReader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> BitReader<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            BitReader { buf, pos: 0 }
        }

        pub fn remaining(&self) -> usize {
            self.buf.len() * 8 - self.pos
        }

        pub fn position(&self) -> usize {
            self.pos
        }

        #[inline]
        pub fn read_bit(&mut self) -> Option<bool> {
            if self.pos >= self.buf.len() * 8 {
                return None;
            }
            let byte = self.buf[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            self.pos += 1;
            Some(bit == 1)
        }

        #[inline]
        pub fn read_bits(&mut self, n: u32) -> Option<u64> {
            debug_assert!(n <= 64);
            if n == 0 {
                return Some(0);
            }
            if self.remaining() < n as usize {
                return None;
            }
            let mut out: u64 = 0;
            let mut remaining = n;
            while remaining > 0 {
                let byte = self.buf[self.pos / 8];
                let avail = 8 - (self.pos % 8) as u32;
                let take = remaining.min(avail);
                let shift = avail - take;
                let chunk = ((byte >> shift) as u64) & ((1u64 << take) - 1);
                out = (out << take) | chunk;
                self.pos += take as usize;
                remaining -= take;
            }
            Some(out)
        }

        pub fn align_byte(&mut self) {
            self.pos = self.pos.div_ceil(8) * 8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let pattern = [
            true, false, true, true, false, false, true, false, true, true,
        ];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_fields_round_trip() {
        let fields: [(u64, u32); 7] = [
            (0b101, 3),
            (0xFFFF_FFFF, 32),
            (0, 1),
            (0x1234_5678_9ABC_DEF0, 64),
            (1, 1),
            (0x7F, 7),
            (0b11, 2),
        ];
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.push_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n), Some(v), "field {v:#x}/{n}");
        }
    }

    #[test]
    fn zero_width_fields_are_noops() {
        let mut w = BitWriter::new();
        w.push_bits(0, 0);
        w.push_bits(0b1, 1);
        w.push_bits(0, 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0), Some(0));
        assert_eq!(r.read_bit(), Some(true));
    }

    #[test]
    fn reader_stops_at_end() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1010_0000)); // zero padding readable
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn alignment() {
        let mut w = BitWriter::new();
        w.push_bits(0b1, 1);
        w.align_byte();
        w.push_bits(0xAB, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000, 0xAB]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(true));
        r.align_byte();
        assert_eq!(r.read_bits(8), Some(0xAB));
        // align on an already-aligned reader is a no-op
        r.align_byte();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn align_at_eof_is_clamped() {
        // The regression the rewrite fixes: aligning an exhausted reader
        // must leave position() == buf.len() * 8 and remaining() == 0, not
        // push the cursor past the buffer.
        let bytes = [0xFFu8, 0x01];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(16), Some(0xFF01));
        r.align_byte();
        assert_eq!(r.position(), 16);
        assert_eq!(r.remaining(), 0);
        r.align_byte();
        r.align_byte();
        assert_eq!(r.position(), 16);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_bit(), None);

        // Empty buffer: align is a no-op at position 0.
        let mut r = BitReader::new(&[]);
        r.align_byte();
        assert_eq!(r.position(), 0);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bit_len_accounting() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.push_bit(true);
        assert_eq!(w.bit_len(), 1);
        assert_eq!(w.byte_len(), 1);
        w.push_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        assert_eq!(w.byte_len(), 1);
        w.push_bits(0b111, 3);
        assert_eq!(w.bit_len(), 11);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn msb_first_layout_matches_expectation() {
        let mut w = BitWriter::new();
        w.push_bits(0b1, 1); // 1.......
        w.push_bits(0b01, 2); // 101.....
        w.push_bits(0b10110, 5); // 10110110
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1011_0110]);
    }

    #[test]
    fn accumulator_spills_across_word_boundaries() {
        // 63 + 3 bits: the second push straddles the first word spill.
        let mut w = BitWriter::new();
        w.push_bits((1u64 << 63) - 1, 63); // 63 ones
        w.push_bits(0b101, 3);
        let bytes = w.into_bytes();
        assert_eq!(w_bits(&bytes, 0, 63), (1u64 << 63) - 1);
        assert_eq!(w_bits(&bytes, 63, 3), 0b101);
        assert_eq!(bytes.len(), 9); // 66 bits -> 9 bytes

        // Exact word fill then continue.
        let mut w = BitWriter::new();
        w.push_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        w.push_bits(0x5, 4);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[..8], &0xDEAD_BEEF_CAFE_F00Du64.to_be_bytes());
        assert_eq!(bytes[8], 0x50);
    }

    /// Read `n` bits at bit offset `pos` from `bytes` (test helper).
    fn w_bits(bytes: &[u8], pos: usize, n: u32) -> u64 {
        let mut r = BitReader::new(bytes);
        r.consume(pos as u32).expect("in range");
        r.read_bits(n).expect("in range")
    }

    #[test]
    fn sink_appends_after_existing_bytes() {
        let mut buf = vec![0x11, 0x22];
        {
            let mut s = BitSink::new(&mut buf);
            assert_eq!(s.bit_len(), 0);
            s.push_bits(0b1, 1);
            s.push_bits(0b01, 2);
            s.push_bits(0b10110, 5);
            s.push_bit(true);
            s.align_byte();
            s.push_bits(0xAB, 8);
            assert_eq!(s.bit_len(), 24);
        }
        assert_eq!(buf, vec![0x11, 0x22, 0b1011_0110, 0b1000_0000, 0xAB]);
    }

    #[test]
    fn sink_finish_flushes_partial_word() {
        let mut buf = Vec::new();
        let s = {
            let mut s = BitSink::new(&mut buf);
            s.push_bits(0b11, 2);
            s
        };
        s.finish();
        assert_eq!(buf, vec![0b1100_0000]);
    }

    #[test]
    fn sink_and_writer_produce_identical_streams() {
        let fields: [(u64, u32); 5] = [
            (0b101, 3),
            (0xFFFF_FFFF, 32),
            (0x1234_5678_9ABC_DEF0, 64),
            (1, 1),
            (0x7F, 7),
        ];
        let mut w = BitWriter::new();
        let mut buf = Vec::new();
        {
            let mut s = BitSink::new(&mut buf);
            for &(v, n) in &fields {
                w.push_bits(v, n);
                s.push_bits(v, n);
            }
        }
        assert_eq!(w.into_bytes(), buf);
    }

    #[test]
    fn position_tracking() {
        let bytes = [0xFF, 0x00];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.position(), 0);
        r.read_bits(5);
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }

    #[test]
    fn peek_then_consume_matches_read() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011_0110, 8);
        w.push_bits(0x1234, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(2), 0b10);
        assert_eq!(r.peek_bits(2), 0b10, "peek does not advance");
        r.consume(2).unwrap();
        assert_eq!(r.peek_bits(6), 0b110110);
        assert_eq!(r.read_bits(6), Some(0b110110));
        assert_eq!(r.read_bits(16), Some(0x1234));
        // Past end: peek zero-pads, consume refuses.
        assert_eq!(r.peek_bits(8), 0);
        assert_eq!(r.consume(1), None);
        assert_eq!(r.position(), 24);
    }

    #[test]
    fn peek_zero_pads_partial_tail() {
        let bytes = [0b1010_0000u8];
        let mut r = BitReader::new(&bytes);
        r.consume(3).unwrap();
        // 5 real bits left; peek 8 sees them plus 3 zeros.
        assert_eq!(r.peek_bits(8), 0b0000_0000);
        r.consume(5).unwrap();
        assert_eq!(r.peek_bits(64), 0);
        assert_eq!(r.consume(1), None);
    }

    #[test]
    fn wide_reads_at_every_offset() {
        // 64-bit reads starting at each bit offset 0..8 exercise the
        // ninth-byte path of the window extractor.
        for off in 0..8u32 {
            let mut w = BitWriter::new();
            w.push_bits(0, off);
            w.push_bits(0xA5A5_5A5A_DEAD_BEEF, 64);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_bits(off), Some(0));
            assert_eq!(r.read_bits(64), Some(0xA5A5_5A5A_DEAD_BEEF), "off {off}");
        }
    }

    #[test]
    fn aligned_byte_runs_round_trip() {
        let mut buf = Vec::new();
        {
            let mut s = BitSink::new(&mut buf);
            s.extend_aligned(&[0xDE, 0xAD]);
            s.push_bits(0b101, 3);
            s.align_byte();
            s.extend_aligned(&[0xBE, 0xEF]);
        }
        assert_eq!(buf, vec![0xDE, 0xAD, 0b1010_0000, 0xBE, 0xEF]);

        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_aligned_bytes(2), Some(&[0xDE, 0xAD][..]));
        assert_eq!(r.read_bits(3), Some(0b101));
        // Misaligned bulk read refuses without moving the cursor.
        assert_eq!(r.read_aligned_bytes(1), None);
        assert_eq!(r.position(), 19);
        r.align_byte();
        assert_eq!(r.read_aligned_bytes(2), Some(&[0xBE, 0xEF][..]));
        // Past end refuses.
        assert_eq!(r.read_aligned_bytes(1), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "byte-aligned")]
    fn extend_aligned_rejects_misaligned_writer() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.extend_aligned(&[0xFF]);
    }

    #[test]
    fn writer_matches_reference_on_known_fields() {
        let fields: [(u64, u32); 8] = [
            (0, 1),
            (0x7F, 7),
            (0xFFFF_FFFF_FFFF_FFFF, 64),
            (0b1, 1),
            (0x155, 9),
            (0x0, 13),
            (0x1FFF_FFFF, 29),
            (0x3, 2),
        ];
        let mut new_w = BitWriter::new();
        let mut ref_w = reference::BitWriter::new();
        for &(v, n) in &fields {
            new_w.push_bits(v, n);
            ref_w.push_bits(v, n);
        }
        assert_eq!(new_w.into_bytes(), ref_w.into_bytes());
    }
}

//! MSB-first bit-granular writer and reader.
//!
//! These are the backbone of Gorilla/Chimp control-bit streams, BUFF's
//! padded sub-columns, and the verbatim-bit tails of fpzip/pFPC/GFC.

/// Append one bit to `(buf, used)` state shared by [`BitWriter`]/[`BitSink`].
#[inline]
fn push_bit_raw(buf: &mut Vec<u8>, used: &mut u32, bit: bool) {
    if *used == 0 {
        buf.push(0);
        *used = 8;
    }
    *used -= 1;
    if bit {
        let last = buf.last_mut().expect("buffer nonempty after push");
        *last |= 1 << *used;
    }
}

/// Append the low `n` bits of `value` (MSB of the field first). `n <= 64`.
#[inline]
fn push_bits_raw(buf: &mut Vec<u8>, used: &mut u32, value: u64, n: u32) {
    debug_assert!(n <= 64);
    if n == 0 {
        return;
    }
    if n < 64 {
        debug_assert_eq!(value >> n, 0, "value has bits above the field width");
    }
    let mut remaining = n;
    while remaining > 0 {
        if *used == 0 {
            buf.push(0);
            *used = 8;
        }
        let take = remaining.min(*used);
        let shift = remaining - take;
        let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
        let last = buf.last_mut().expect("buffer nonempty");
        *last |= chunk << (*used - take);
        *used -= take;
        remaining -= take;
    }
}

/// Writes bits MSB-first into a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Free bits remaining in the final byte (0..=8). 0 means byte-aligned.
    used: u32,
}

/// Writes bits MSB-first by **appending to a caller-owned byte buffer** —
/// the zero-allocation sibling of [`BitWriter`], used by codecs whose
/// `compress_into` emits straight into a reused output vector. The sink
/// starts byte-aligned after whatever the buffer already holds.
#[derive(Debug)]
pub struct BitSink<'a> {
    buf: &'a mut Vec<u8>,
    start: usize,
    /// Free bits remaining in the final byte (0..=8). 0 means byte-aligned.
    used: u32,
}

impl<'a> BitSink<'a> {
    /// Append bits after the current contents of `buf`.
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        let start = buf.len();
        BitSink {
            buf,
            start,
            used: 0,
        }
    }

    /// Bits written through this sink so far.
    pub fn bit_len(&self) -> usize {
        (self.buf.len() - self.start) * 8 - self.used as usize
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        push_bit_raw(self.buf, &mut self.used, bit);
    }

    /// Append the low `n` bits of `value`, MSB of that field first. `n <= 64`.
    #[inline]
    pub fn push_bits(&mut self, value: u64, n: u32) {
        push_bits_raw(self.buf, &mut self.used, value, n);
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.used = 0;
    }
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter {
            buf: Vec::new(),
            used: 0,
        }
    }

    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            used: 0,
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 - self.used as usize
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        push_bit_raw(&mut self.buf, &mut self.used, bit);
    }

    /// Append the low `n` bits of `value`, MSB of that field first. `n <= 64`.
    #[inline]
    pub fn push_bits(&mut self, value: u64, n: u32) {
        push_bits_raw(&mut self.buf, &mut self.used, value, n);
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.used = 0;
    }

    /// Finish, returning the backing bytes (final partial byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far (final partial byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read one bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.buf.len() * 8 {
            return None;
        }
        let byte = self.buf[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit == 1)
    }

    /// Read `n` bits (MSB-first) into the low bits of a u64. `n <= 64`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Some(0);
        }
        if self.remaining() < n as usize {
            return None;
        }
        let mut out: u64 = 0;
        let mut remaining = n;
        while remaining > 0 {
            let byte = self.buf[self.pos / 8];
            let avail = 8 - (self.pos % 8) as u32;
            let take = remaining.min(avail);
            let shift = avail - take;
            let chunk = ((byte >> shift) as u64) & ((1u64 << take) - 1);
            out = (out << take) | chunk;
            self.pos += take as usize;
            remaining -= take;
        }
        Some(out)
    }

    /// Skip to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let pattern = [
            true, false, true, true, false, false, true, false, true, true,
        ];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_fields_round_trip() {
        let fields: [(u64, u32); 7] = [
            (0b101, 3),
            (0xFFFF_FFFF, 32),
            (0, 1),
            (0x1234_5678_9ABC_DEF0, 64),
            (1, 1),
            (0x7F, 7),
            (0b11, 2),
        ];
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.push_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n), Some(v), "field {v:#x}/{n}");
        }
    }

    #[test]
    fn zero_width_fields_are_noops() {
        let mut w = BitWriter::new();
        w.push_bits(0, 0);
        w.push_bits(0b1, 1);
        w.push_bits(0, 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0), Some(0));
        assert_eq!(r.read_bit(), Some(true));
    }

    #[test]
    fn reader_stops_at_end() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1010_0000)); // zero padding readable
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn alignment() {
        let mut w = BitWriter::new();
        w.push_bits(0b1, 1);
        w.align_byte();
        w.push_bits(0xAB, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000, 0xAB]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(true));
        r.align_byte();
        assert_eq!(r.read_bits(8), Some(0xAB));
        // align on an already-aligned reader is a no-op
        r.align_byte();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bit_len_accounting() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.push_bit(true);
        assert_eq!(w.bit_len(), 1);
        w.push_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.push_bits(0b111, 3);
        assert_eq!(w.bit_len(), 11);
    }

    #[test]
    fn msb_first_layout_matches_expectation() {
        let mut w = BitWriter::new();
        w.push_bits(0b1, 1); // 1.......
        w.push_bits(0b01, 2); // 101.....
        w.push_bits(0b10110, 5); // 10110110
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1011_0110]);
    }

    #[test]
    fn sink_appends_after_existing_bytes() {
        let mut buf = vec![0x11, 0x22];
        {
            let mut s = BitSink::new(&mut buf);
            assert_eq!(s.bit_len(), 0);
            s.push_bits(0b1, 1);
            s.push_bits(0b01, 2);
            s.push_bits(0b10110, 5);
            s.push_bit(true);
            s.align_byte();
            s.push_bits(0xAB, 8);
            assert_eq!(s.bit_len(), 24);
        }
        assert_eq!(buf, vec![0x11, 0x22, 0b1011_0110, 0b1000_0000, 0xAB]);
    }

    #[test]
    fn sink_and_writer_produce_identical_streams() {
        let fields: [(u64, u32); 5] = [
            (0b101, 3),
            (0xFFFF_FFFF, 32),
            (0x1234_5678_9ABC_DEF0, 64),
            (1, 1),
            (0x7F, 7),
        ];
        let mut w = BitWriter::new();
        let mut buf = Vec::new();
        let mut s = BitSink::new(&mut buf);
        for &(v, n) in &fields {
            w.push_bits(v, n);
            s.push_bits(v, n);
        }
        assert_eq!(w.into_bytes(), buf);
    }

    #[test]
    fn position_tracking() {
        let bytes = [0xFF, 0x00];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.position(), 0);
        r.read_bits(5);
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }
}

//! LZ4 block-format codec, implemented from scratch.
//!
//! The block format follows the published LZ4 specification: a stream of
//! sequences, each `token | literal-length ext | literals | 2-byte offset |
//! match-length ext`, with the end-of-block rules (final sequence is
//! literals-only; the last 5 bytes are always literals; no match starts
//! within the last 12 bytes). Compression uses a 4-byte hash table with
//! greedy matching — the same strategy as the reference `LZ4_compress_default`.
//!
//! This is the dictionary backend of `bitshuffle::LZ4` (§3.7) and the
//! payload codec of the simulated `nvCOMP::LZ4` (§4.3).

use std::cell::RefCell;

/// Minimum match length in the LZ4 format.
const MIN_MATCH: usize = 4;
/// No match may start within this many bytes of the end.
const MF_LIMIT: usize = 12;
/// The final literals run must cover at least this many bytes.
const LAST_LITERALS: usize = 5;
/// Maximum back-reference distance (64 KB window).
const MAX_DISTANCE: usize = 65_535;

const HASH_LOG: u32 = 16;

#[inline]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(2654435761) >> (32 - HASH_LOG)) as usize
}

#[inline]
fn read_u32(data: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]])
}

/// In-bounds unaligned 8-byte little-endian load (callers guarantee
/// `i + 8 <= data.len()`; a short read yields 0, never a panic).
#[inline]
fn read_u64(data: &[u8], i: usize) -> u64 {
    match data.get(i..).and_then(|t| t.first_chunk::<8>()) {
        Some(w) => u64::from_le_bytes(*w),
        None => 0,
    }
}

// Reusable hash table: one 256 KB allocation per thread instead of per
// call. Must be zeroed per call (0 means empty).
thread_local! {
    static LZ4_TABLE: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Compress `input` into LZ4 block format.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    compress_into(input, &mut out);
    out
}

/// Like [`compress`] but into a caller-owned buffer (contents replaced,
/// capacity reused) — the zero-copy hot path.
pub fn compress_into(input: &[u8], out: &mut Vec<u8>) {
    let n = input.len();
    out.clear();
    out.reserve(n / 2 + 16);
    if n == 0 {
        // A single empty-literals token terminates the block.
        out.push(0);
        return;
    }
    if n < MF_LIMIT + 1 {
        emit_final_literals(out, input);
        return;
    }

    let mut anchor = 0usize; // start of pending literals
    LZ4_TABLE.with_borrow_mut(|table| {
        table.resize(1 << HASH_LOG, 0);
        table.fill(0);
        // `table` stores position+1; 0 means empty.
        let match_limit = n - MF_LIMIT; // last position where a match may start
        let mut i = 0usize;

        while i < match_limit {
            let h = hash4(read_u32(input, i));
            let candidate = table[h] as usize;
            table[h] = (i + 1) as u32;

            let matched = candidate != 0
                && i - (candidate - 1) <= MAX_DISTANCE
                && read_u32(input, candidate - 1) == read_u32(input, i);

            if !matched {
                i += 1;
                continue;
            }
            let m = candidate - 1;

            // Extend the match forward a u64 word at a time, but never
            // into the last-literals zone.
            let max_len = n - LAST_LITERALS - i;
            let mut len = MIN_MATCH;
            while len + 8 <= max_len {
                let a = read_u64(input, m + len);
                let b = read_u64(input, i + len);
                let x = a ^ b;
                if x != 0 {
                    len += (x.trailing_zeros() >> 3) as usize;
                    break;
                }
                len += 8;
            }
            while len < max_len && input[m + len] == input[i + len] {
                len += 1;
            }

            emit_sequence(out, &input[anchor..i], (i - m) as u16, len);
            i += len;
            anchor = i;

            // Prime the table at the end of the match, as the reference does.
            if i < match_limit {
                let h2 = hash4(read_u32(input, i.saturating_sub(2)));
                table[h2] = (i.saturating_sub(2) + 1) as u32;
            }
        }
    });

    emit_final_literals(out, &input[anchor..]);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    debug_assert!(match_len >= MIN_MATCH);
    debug_assert!(offset >= 1);
    let lit_len = literals.len();
    let ml_code = match_len - MIN_MATCH;

    let token_lit = lit_len.min(15) as u8;
    let token_ml = ml_code.min(15) as u8;
    out.push((token_lit << 4) | token_ml);

    if lit_len >= 15 {
        emit_length(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    if ml_code >= 15 {
        emit_length(out, ml_code - 15);
    }
}

fn emit_final_literals(out: &mut Vec<u8>, literals: &[u8]) {
    let lit_len = literals.len();
    out.push((lit_len.min(15) as u8) << 4);
    if lit_len >= 15 {
        emit_length(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
}

#[inline]
fn emit_length(out: &mut Vec<u8>, mut rest: usize) {
    while rest >= 255 {
        out.push(255);
        rest -= 255;
    }
    out.push(rest as u8);
}

/// Error from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lz4Error(pub String);

impl std::fmt::Display for Lz4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lz4: {}", self.0)
    }
}

impl std::error::Error for Lz4Error {}

/// Decompress an LZ4 block produced by [`compress`].
///
/// `expected_len` is the known decompressed size (the block format does not
/// embed it); output is validated against it.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, Lz4Error> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;

    loop {
        let token = *input
            .get(pos)
            .ok_or_else(|| Lz4Error("truncated token".into()))?;
        pos += 1;

        // Literals.
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_length(input, &mut pos)?;
        }
        if pos + lit_len > input.len() {
            return Err(Lz4Error("literals overrun input".into()));
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;

        if pos == input.len() {
            break; // final literals-only sequence
        }

        // Match.
        if pos + 2 > input.len() {
            return Err(Lz4Error("truncated offset".into()));
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 {
            return Err(Lz4Error("zero match offset".into()));
        }
        if offset > out.len() {
            return Err(Lz4Error(format!(
                "offset {offset} exceeds output length {}",
                out.len()
            )));
        }

        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len += read_length(input, &mut pos)?;
        }
        match_len += MIN_MATCH;

        // Bulk match copy; offsets < match_len overlap and use doubling
        // self-extension (the copy source grows as the output grows).
        let start = out.len() - offset;
        if offset >= match_len {
            out.extend_from_within(start..start + match_len);
        } else {
            let mut remaining = match_len;
            while remaining > 0 {
                let avail = out.len() - start;
                let take = avail.min(remaining);
                out.extend_from_within(start..start + take);
                remaining -= take;
            }
        }
        if out.len() > expected_len {
            return Err(Lz4Error("output exceeds expected length".into()));
        }
    }

    if out.len() != expected_len {
        return Err(Lz4Error(format!(
            "decompressed {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[inline]
fn read_length(input: &[u8], pos: &mut usize) -> Result<usize, Lz4Error> {
    let mut total = 0usize;
    loop {
        let b = *input
            .get(*pos)
            .ok_or_else(|| Lz4Error("truncated length extension".into()))?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data, "round trip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_input() {
        round_trip(&[]);
    }

    #[test]
    fn tiny_inputs() {
        for n in 1..=16 {
            let data: Vec<u8> = (0..n as u8).collect();
            round_trip(&data);
        }
    }

    #[test]
    fn highly_repetitive_compresses_well() {
        let data = vec![42u8; 10_000];
        let c = compress(&data);
        assert!(
            c.len() < 100,
            "repetitive data should shrink, got {}",
            c.len()
        );
        round_trip(&data);
    }

    #[test]
    fn incompressible_random_survives() {
        // xorshift-generated pseudo-random bytes
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn periodic_pattern() {
        let data: Vec<u8> = (0..20_000).map(|i| (i % 7) as u8).collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4);
        round_trip(&data);
    }

    #[test]
    fn overlapping_match_rle_case() {
        // "aaaa..." forces offset-1 overlapping copies.
        let mut data = vec![b'x'];
        data.extend(std::iter::repeat_n(b'a', 1000));
        round_trip(&data);
    }

    #[test]
    fn long_literal_runs_use_length_extensions() {
        // > 15 literals triggers the 255-extension path.
        let mut x = 99u32;
        let data: Vec<u8> = (0..600)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn long_matches_use_length_extensions() {
        let mut data = Vec::new();
        let unit: Vec<u8> = (0..64u8).collect();
        for _ in 0..100 {
            data.extend_from_slice(&unit);
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 8);
        round_trip(&data);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[], 10).is_err());
        // token promising literals beyond input
        assert!(decompress(&[0xF0], 100).is_err());
        // match offset of zero
        assert!(decompress(&[0x10, b'a', 0x00, 0x00], 100).is_err());
        // offset pointing before output start
        assert!(decompress(&[0x10, b'a', 0x05, 0x00], 100).is_err());
    }

    #[test]
    fn decompress_length_mismatch_detected() {
        let data = vec![7u8; 100];
        let c = compress(&data);
        assert!(decompress(&c, 99).is_err());
        assert!(decompress(&c, 101).is_err());
    }

    #[test]
    fn float_like_data() {
        // Little-endian f32 of a smooth ramp — typical bitshuffle input.
        let mut data = Vec::new();
        for i in 0..5000 {
            data.extend_from_slice(&(i as f32 * 0.001).to_le_bytes());
        }
        round_trip(&data);
    }
}

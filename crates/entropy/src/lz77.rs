//! Sliding-window LZ77 with hash-chain matching (Ziv & Lempel 1977).
//!
//! This is the configurable-window dictionary coder behind SPDP's `LZa6`
//! reducer component (§3.2) and the match stage of [`crate::zzip`]. Deeper
//! chain search and larger windows raise the compression ratio at the cost
//! of throughput — exactly the trade-off the paper calls out for SPDP.
//!
//! Serialized format: a 1-byte header holding the offset width (2 for
//! windows ≤ 64 KiB, else 3), then groups of up to 8 items, each preceded
//! by a control byte whose bit *i* (LSB-first) marks item *i* as a match.
//! A literal item is one byte. A match item is a little-endian offset
//! (1-based distance) followed by a length byte: values 0..=254 encode
//! lengths `4..=258`; 255 is followed by a little-endian u16 extension.
//! The narrow-offset mode keeps matches as tight as LZ4's inside the
//! 64 KB blocks bitshuffle feeds this codec.
//!
//! The compressor walks hash chains exactly like the retained
//! [`reference`](mod@reference) implementation (same probe order, same depth budget, same
//! acceptance heuristics), but extends candidate matches a u64 word at a
//! time, emits items through fixed stack buffers instead of per-item heap
//! allocations, and reuses the chain tables across calls on the same
//! thread. The decompressor copies matches with bulk slice operations.
//! Both directions are byte-identical to the reference — proven by the
//! differential tests below and the proptests in `tests/proptests.rs`.

use std::cell::RefCell;

/// Minimum match length.
pub const MIN_MATCH: usize = 4;
/// Maximum supported window (3-byte offsets).
pub const MAX_WINDOW: usize = (1 << 24) - 1;

/// Matching effort configuration.
#[derive(Debug, Clone, Copy)]
pub struct Lz77Config {
    /// Sliding-window size in bytes (max [`MAX_WINDOW`]).
    pub window: usize,
    /// Maximum hash-chain positions probed per input position.
    pub chain_depth: usize,
}

impl Lz77Config {
    /// SPDP-style: 64 KiB window, shallow search (fast).
    pub fn fast() -> Self {
        Lz77Config {
            window: 1 << 16,
            chain_depth: 8,
        }
    }

    /// zzip-style: 1 MiB window, deeper search (better ratio).
    pub fn thorough() -> Self {
        Lz77Config {
            window: 1 << 20,
            chain_depth: 64,
        }
    }
}

const HASH_LOG: u32 = 16;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_LOG)) as usize
}

/// The byte-granular implementation this module's kernels replaced.
///
/// Retained verbatim so differential tests can prove the optimized
/// compressor emits byte-identical streams and the optimized decompressor
/// accepts exactly the same inputs — the discipline PR 5 established for
/// the bitstream engine. Not used on any production path.
pub mod reference {
    use super::{hash4, Lz77Config, Lz77Error, MAX_WINDOW, MIN_MATCH};

    /// Compress `input` with the given effort configuration.
    pub fn compress(input: &[u8], cfg: Lz77Config) -> Vec<u8> {
        let mut out = Vec::new();
        compress_into(input, cfg, &mut out);
        out
    }

    /// Byte-granular compressor: per-item heap buffers, one-byte-at-a-time
    /// match extension, chain tables allocated fresh per call.
    pub fn compress_into(input: &[u8], cfg: Lz77Config, out: &mut Vec<u8>) {
        assert!(cfg.window >= MIN_MATCH && cfg.window <= MAX_WINDOW);
        let offset_bytes: usize = if cfg.window <= u16::MAX as usize {
            2
        } else {
            3
        };
        let n = input.len();
        out.clear();
        out.reserve(n / 2 + 16);
        out.push(offset_bytes as u8);

        // Pending group of up to 8 items sharing one control byte.
        struct GroupBuf {
            control: u8,
            nitems: u32,
            bytes: Vec<u8>,
        }
        impl GroupBuf {
            fn push(&mut self, is_match: bool, item: &[u8], out: &mut Vec<u8>) {
                if is_match {
                    self.control |= 1 << self.nitems;
                }
                self.bytes.extend_from_slice(item);
                self.nitems += 1;
                if self.nitems == 8 {
                    self.flush(out);
                }
            }
            fn flush(&mut self, out: &mut Vec<u8>) {
                if self.nitems > 0 {
                    out.push(self.control);
                    out.extend_from_slice(&self.bytes);
                    self.control = 0;
                    self.nitems = 0;
                    self.bytes.clear();
                }
            }
        }
        let mut pending = GroupBuf {
            control: 0,
            nitems: 0,
            bytes: Vec::with_capacity(8 * 6),
        };

        // head[h] = most recent position+1 with hash h; prev[i % window] = chain.
        let mut head = vec![0u32; 1 << super::HASH_LOG];
        let mut prev = vec![0u32; cfg.window];

        let mut i = 0usize;
        while i < n {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;

            if i + MIN_MATCH <= n {
                let h = hash4(input, i);
                let mut candidate = head[h] as usize;
                let mut depth = cfg.chain_depth;
                let max_len = n - i;
                while candidate != 0 && depth > 0 {
                    let c = candidate - 1;
                    let dist = i - c;
                    if dist > cfg.window {
                        break;
                    }
                    // Quick check on the byte past the current best.
                    if best_len == 0 || input.get(c + best_len) == input.get(i + best_len) {
                        let mut l = 0usize;
                        while l < max_len && input[c + l] == input[i + l] {
                            l += 1;
                        }
                        if l >= MIN_MATCH && l > best_len {
                            best_len = l;
                            best_dist = dist;
                            if l >= max_len {
                                break;
                            }
                        }
                    }
                    candidate = prev[c % cfg.window] as usize;
                    depth -= 1;
                }
                // Insert current position into the chain.
                prev[i % cfg.window] = head[h];
                head[h] = (i + 1) as u32;
            }

            if best_len >= MIN_MATCH {
                let mut item = Vec::with_capacity(6);
                item.extend_from_slice(&(best_dist as u32).to_le_bytes()[..offset_bytes]);
                let code_len = best_len - MIN_MATCH;
                if code_len < 255 {
                    item.push(code_len as u8);
                } else {
                    item.push(255);
                    let ext = (code_len - 255).min(u16::MAX as usize);
                    item.extend_from_slice(&(ext as u16).to_le_bytes());
                }
                let actual_len = if code_len < 255 {
                    best_len
                } else {
                    MIN_MATCH + 255 + (code_len - 255).min(u16::MAX as usize)
                };
                pending.push(true, &item, out);

                // Insert skipped positions into the chain (sparsely for speed).
                let end = i + actual_len;
                let mut j = i + 1;
                while j < end && j + MIN_MATCH <= n {
                    let h = hash4(input, j);
                    prev[j % cfg.window] = head[h];
                    head[h] = (j + 1) as u32;
                    j += 1.max(actual_len / 16);
                }
                i = end;
            } else {
                pending.push(false, &[input[i]], out);
                i += 1;
            }
        }
        pending.flush(out);
    }

    /// Byte-granular decompressor: one output byte per loop iteration.
    pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, Lz77Error> {
        let mut out = Vec::with_capacity(expected_len);
        let offset_bytes = *input
            .first()
            .ok_or_else(|| Lz77Error("missing format header".into()))?
            as usize;
        if offset_bytes != 2 && offset_bytes != 3 {
            return Err(Lz77Error(format!("bad offset width {offset_bytes}")));
        }
        let mut pos = 1usize;

        while out.len() < expected_len {
            let control = *input
                .get(pos)
                .ok_or_else(|| Lz77Error("truncated control byte".into()))?;
            pos += 1;
            for bit in 0..8 {
                if out.len() >= expected_len {
                    break;
                }
                if control & (1 << bit) == 0 {
                    let b = *input
                        .get(pos)
                        .ok_or_else(|| Lz77Error("truncated literal".into()))?;
                    out.push(b);
                    pos += 1;
                } else {
                    if pos + offset_bytes + 1 > input.len() {
                        return Err(Lz77Error("truncated match".into()));
                    }
                    let mut le = [0u8; 4];
                    le[..offset_bytes].copy_from_slice(&input[pos..pos + offset_bytes]);
                    let dist = u32::from_le_bytes(le) as usize;
                    let mut len_code = input[pos + offset_bytes] as usize;
                    pos += offset_bytes + 1;
                    let len = if len_code == 255 {
                        if pos + 2 > input.len() {
                            return Err(Lz77Error("truncated length extension".into()));
                        }
                        let ext = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                        pos += 2;
                        len_code = 255 + ext;
                        MIN_MATCH + len_code
                    } else {
                        MIN_MATCH + len_code
                    };
                    if dist == 0 || dist > out.len() {
                        return Err(Lz77Error(format!(
                            "match distance {dist} invalid at output length {}",
                            out.len()
                        )));
                    }
                    if out.len() + len > expected_len {
                        return Err(Lz77Error("match overruns expected length".into()));
                    }
                    let start = out.len() - dist;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
            }
        }
        Ok(out)
    }
}

// Reusable hash-chain tables. A scoped worker (bitshuffle block thread,
// pfpc chunk thread) compresses many blocks over its lifetime; keeping the
// tables thread-local amortizes the two table allocations across every
// block the thread touches. `head` must be zeroed per call (it is probed
// before any insertion); `prev` never needs clearing: every chain
// traversal only reads slots written earlier in the same call, because a
// chain is entered through `head` and each inserted position writes its
// own `prev` slot.
thread_local! {
    static CHAIN_SCRATCH: RefCell<(Vec<u32>, Vec<u32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Chain-table slot for position `p`: an AND when the window is a power
/// of two (every production config), a division otherwise. `mask` is
/// `window - 1` for power-of-two windows and 0 otherwise (a window of at
/// least [`MIN_MATCH`] makes 0 unambiguous).
#[inline]
fn chain_slot(p: usize, window: usize, mask: usize) -> usize {
    if mask != 0 {
        p & mask
    } else {
        p % window
    }
}

/// In-bounds unaligned 8-byte little-endian load (callers guarantee
/// `i + 8 <= data.len()`; a short read yields 0, never a panic).
#[inline]
fn load_u64(data: &[u8], i: usize) -> u64 {
    match data.get(i..).and_then(|t| t.first_chunk::<8>()) {
        Some(w) => u64::from_le_bytes(*w),
        None => 0,
    }
}

/// Word-at-a-time match extension: compare 8 bytes per step, then locate
/// the first differing byte with `trailing_zeros`. Byte-for-byte
/// equivalent to the reference's one-byte loop.
#[inline]
fn match_len(input: &[u8], c: usize, i: usize, max_len: usize) -> usize {
    let mut l = 0usize;
    while l + 8 <= max_len {
        let a = load_u64(input, c + l);
        let b = load_u64(input, i + l);
        let x = a ^ b;
        if x != 0 {
            return l + (x.trailing_zeros() >> 3) as usize;
        }
        l += 8;
    }
    while l < max_len && input[c + l] == input[i + l] {
        l += 1;
    }
    l
}

/// Compress `input` with the given effort configuration.
pub fn compress(input: &[u8], cfg: Lz77Config) -> Vec<u8> {
    let mut out = Vec::new();
    compress_into(input, cfg, &mut out);
    out
}

/// Like [`compress`] but into a caller-owned buffer (contents replaced,
/// capacity reused) — the zero-copy `Compressor::compress_into` hot path.
///
/// Emits streams byte-identical to [`reference::compress_into`].
pub fn compress_into(input: &[u8], cfg: Lz77Config, out: &mut Vec<u8>) {
    assert!(cfg.window >= MIN_MATCH && cfg.window <= MAX_WINDOW);
    let offset_bytes: usize = if cfg.window <= u16::MAX as usize {
        2
    } else {
        3
    };
    let n = input.len();
    out.clear();
    out.reserve(n / 2 + 16);
    out.push(offset_bytes as u8);

    // Pending group of up to 8 items sharing one control byte, staged in a
    // fixed stack buffer (worst case: 8 items x 6 bytes each).
    let mut g_control = 0u8;
    let mut g_nitems = 0u32;
    let mut g_bytes = [0u8; 48];
    let mut g_len = 0usize;

    CHAIN_SCRATCH.with_borrow_mut(|(head, prev)| {
        head.resize(1 << HASH_LOG, 0);
        head.fill(0);
        if prev.len() < cfg.window {
            prev.resize(cfg.window, 0);
        }
        let mask = if cfg.window.is_power_of_two() {
            cfg.window - 1
        } else {
            0
        };

        let mut i = 0usize;
        while i < n {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;

            if i + MIN_MATCH <= n {
                let h = hash4(input, i);
                let mut candidate = head[h] as usize;
                let mut depth = cfg.chain_depth;
                let max_len = n - i;
                while candidate != 0 && depth > 0 {
                    let c = candidate - 1;
                    let dist = i - c;
                    if dist > cfg.window {
                        break;
                    }
                    // Quick check on the byte past the current best.
                    if best_len == 0 || input.get(c + best_len) == input.get(i + best_len) {
                        let l = match_len(input, c, i, max_len);
                        if l >= MIN_MATCH && l > best_len {
                            best_len = l;
                            best_dist = dist;
                            if l >= max_len {
                                break;
                            }
                        }
                    }
                    candidate = prev[chain_slot(c, cfg.window, mask)] as usize;
                    depth -= 1;
                }
                // Insert current position into the chain.
                prev[chain_slot(i, cfg.window, mask)] = head[h];
                head[h] = (i + 1) as u32;
            }

            if best_len >= MIN_MATCH {
                let item_start = g_len;
                g_bytes[g_len..g_len + 4].copy_from_slice(&(best_dist as u32).to_le_bytes());
                g_len = item_start + offset_bytes;
                let code_len = best_len - MIN_MATCH;
                let actual_len = if code_len < 255 {
                    g_bytes[g_len] = code_len as u8;
                    g_len += 1;
                    best_len
                } else {
                    let ext = (code_len - 255).min(u16::MAX as usize);
                    g_bytes[g_len] = 255;
                    g_bytes[g_len + 1..g_len + 3].copy_from_slice(&(ext as u16).to_le_bytes());
                    g_len += 3;
                    MIN_MATCH + 255 + ext
                };
                g_control |= 1 << g_nitems;
                g_nitems += 1;
                if g_nitems == 8 {
                    out.push(g_control);
                    out.extend_from_slice(&g_bytes[..g_len]);
                    g_control = 0;
                    g_nitems = 0;
                    g_len = 0;
                }

                // Insert skipped positions into the chain (sparsely for speed).
                let end = i + actual_len;
                let step = 1.max(actual_len / 16);
                let mut j = i + 1;
                while j < end && j + MIN_MATCH <= n {
                    let h = hash4(input, j);
                    prev[chain_slot(j, cfg.window, mask)] = head[h];
                    head[h] = (j + 1) as u32;
                    j += step;
                }
                i = end;
            } else {
                g_bytes[g_len] = input[i];
                g_len += 1;
                g_nitems += 1;
                if g_nitems == 8 {
                    out.push(g_control);
                    out.extend_from_slice(&g_bytes[..g_len]);
                    g_control = 0;
                    g_nitems = 0;
                    g_len = 0;
                }
                i += 1;
            }
        }
    });
    if g_nitems > 0 {
        out.push(g_control);
        out.extend_from_slice(&g_bytes[..g_len]);
    }
}

/// Error from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lz77Error(pub String);

impl std::fmt::Display for Lz77Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lz77: {}", self.0)
    }
}

impl std::error::Error for Lz77Error {}

/// Decompress a stream produced by [`compress`].
///
/// Accepts and rejects exactly the same inputs as
/// [`reference::decompress`], but copies matches with bulk slice
/// operations (doubling self-extension for overlapping matches) and takes
/// an 8-literal shortcut on all-literal control groups.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, Lz77Error> {
    let mut out = Vec::with_capacity(expected_len);
    let offset_bytes = *input
        .first()
        .ok_or_else(|| Lz77Error("missing format header".into()))? as usize;
    if offset_bytes != 2 && offset_bytes != 3 {
        return Err(Lz77Error(format!("bad offset width {offset_bytes}")));
    }
    let mut pos = 1usize;

    while out.len() < expected_len {
        let control = *input
            .get(pos)
            .ok_or_else(|| Lz77Error("truncated control byte".into()))?;
        pos += 1;
        // Fast path: a full group of 8 literals, all needed and present.
        if control == 0 && out.len() + 8 <= expected_len && pos + 8 <= input.len() {
            out.extend_from_slice(&input[pos..pos + 8]);
            pos += 8;
            continue;
        }
        for bit in 0..8 {
            if out.len() >= expected_len {
                break;
            }
            if control & (1 << bit) == 0 {
                let b = *input
                    .get(pos)
                    .ok_or_else(|| Lz77Error("truncated literal".into()))?;
                out.push(b);
                pos += 1;
            } else {
                if pos + offset_bytes + 1 > input.len() {
                    return Err(Lz77Error("truncated match".into()));
                }
                let mut le = [0u8; 4];
                le[..offset_bytes].copy_from_slice(&input[pos..pos + offset_bytes]);
                let dist = u32::from_le_bytes(le) as usize;
                let mut len_code = input[pos + offset_bytes] as usize;
                pos += offset_bytes + 1;
                let len = if len_code == 255 {
                    if pos + 2 > input.len() {
                        return Err(Lz77Error("truncated length extension".into()));
                    }
                    let ext = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                    pos += 2;
                    len_code = 255 + ext;
                    MIN_MATCH + len_code
                } else {
                    MIN_MATCH + len_code
                };
                if dist == 0 || dist > out.len() {
                    return Err(Lz77Error(format!(
                        "match distance {dist} invalid at output length {}",
                        out.len()
                    )));
                }
                if out.len() + len > expected_len {
                    return Err(Lz77Error("match overruns expected length".into()));
                }
                let start = out.len() - dist;
                if dist >= len {
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping match: the copy source grows as we write.
                    // Doubling self-extension replicates the pattern in
                    // O(log(len/dist)) bulk copies.
                    let mut remaining = len;
                    while remaining > 0 {
                        let avail = out.len() - start;
                        let take = avail.min(remaining);
                        out.extend_from_within(start..start + take);
                        remaining -= take;
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], cfg: Lz77Config) {
        let c = compress(data, cfg);
        let d = decompress(&c, data.len()).expect("decompress");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        for n in 0..10usize {
            let data: Vec<u8> = (0..n as u8).collect();
            round_trip(&data, Lz77Config::fast());
        }
    }

    #[test]
    fn repetitive_data() {
        let data = b"abcabcabcabcabcabcabcabcabc".repeat(100);
        let c = compress(&data, Lz77Config::fast());
        assert!(c.len() < data.len() / 4);
        round_trip(&data, Lz77Config::fast());
    }

    #[test]
    fn random_data_survives_both_configs() {
        let mut x = 0xABCDu32;
        let data: Vec<u8> = (0..40_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        round_trip(&data, Lz77Config::fast());
        round_trip(&data, Lz77Config::thorough());
    }

    #[test]
    fn thorough_config_never_worse_on_structured_data() {
        let mut data = Vec::new();
        for i in 0..30_000u32 {
            data.extend_from_slice(&(i / 7).to_le_bytes());
        }
        let fast = compress(&data, Lz77Config::fast());
        let thorough = compress(&data, Lz77Config::thorough());
        assert!(thorough.len() <= fast.len() + 64);
        round_trip(&data, Lz77Config::thorough());
    }

    #[test]
    fn very_long_match_uses_extension() {
        let mut data = vec![0u8; 100_000];
        data[0] = 1; // one literal then a gigantic run
        let c = compress(&data, Lz77Config::fast());
        assert!(c.len() < 1000);
        round_trip(&data, Lz77Config::fast());
    }

    #[test]
    fn window_limit_respected() {
        // Distance to the repeat exceeds a tiny window: must stay literal
        // (and still round-trip).
        let cfg = Lz77Config {
            window: 64,
            chain_depth: 8,
        };
        let mut data = Vec::new();
        let unit: Vec<u8> = (0..32u8).collect();
        data.extend_from_slice(&unit);
        data.extend(std::iter::repeat_n(0xEE, 200));
        data.extend_from_slice(&unit);
        round_trip(&data, cfg);
    }

    #[test]
    fn overlapping_matches() {
        let mut data = vec![b'q'];
        data.extend(std::iter::repeat_n(b'r', 5000));
        round_trip(&data, Lz77Config::fast());
    }

    #[test]
    fn decompress_rejects_corruption() {
        assert!(decompress(&[], 5).is_err());
        // bad offset-width header
        assert!(decompress(&[9, 0], 5).is_err());
        // control byte promising a match with no bytes
        assert!(decompress(&[3, 0b0000_0001], 5).is_err());
        // invalid distance 0 — crafted: header=3, control=1, dist=0, len=0
        assert!(decompress(&[3, 1, 0, 0, 0, 0], 5).is_err());
        // distance beyond output
        assert!(decompress(&[3, 1, 9, 0, 0, 0], 5).is_err());
        // same with 2-byte offsets
        assert!(decompress(&[2, 1, 9, 0, 0], 5).is_err());
    }

    #[test]
    fn float_pattern_round_trip() {
        let mut data = Vec::new();
        for i in 0..8000 {
            data.extend_from_slice(&(1000.0f64 + (i % 50) as f64).to_le_bytes());
        }
        let c = compress(&data, Lz77Config::thorough());
        assert!(c.len() < data.len() / 3);
        round_trip(&data, Lz77Config::thorough());
    }

    // ---- differential tests against the retained reference ----

    fn assert_identical(data: &[u8], cfg: Lz77Config) {
        let fast = compress(data, cfg);
        let slow = reference::compress(data, cfg);
        assert_eq!(
            fast,
            slow,
            "compressed stream diverged from reference ({} bytes, window {})",
            data.len(),
            cfg.window
        );
        let d_fast = decompress(&fast, data.len()).expect("fast decompress");
        let d_slow = reference::decompress(&fast, data.len()).expect("reference decompress");
        assert_eq!(d_fast, d_slow);
        assert_eq!(d_fast, data);
    }

    /// Patterned generator exercising literals, short matches, long runs,
    /// and near-boundary repeats for a given length.
    fn patterned(n: usize, seed: u32) -> Vec<u8> {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            match x % 4 {
                0 => data.push((x >> 8) as u8),
                1 => {
                    let run = 1 + (x as usize >> 16) % 40;
                    data.extend(std::iter::repeat_n((x >> 24) as u8, run));
                }
                2 if !data.is_empty() => {
                    let dist = 1 + (x as usize >> 12) % data.len();
                    let len = 1 + (x as usize >> 20) % 30;
                    let start = data.len() - dist;
                    for k in 0..len {
                        let b = data[start + (k % dist)];
                        data.push(b);
                    }
                }
                _ => data.extend_from_slice(&(x as f32).to_le_bytes()),
            }
        }
        data.truncate(n);
        data
    }

    #[test]
    fn exhaustive_small_sizes_match_reference() {
        // Every length through several group boundaries, three seeds each,
        // both offset widths.
        for n in 0..=96usize {
            for seed in [1u32, 0xDEAD, 0xBEEF7] {
                let data = patterned(n, seed.wrapping_add(n as u32));
                assert_identical(&data, Lz77Config::fast());
                assert_identical(&data, Lz77Config::thorough());
            }
        }
    }

    #[test]
    fn tiny_window_matches_reference() {
        // Small windows hit the dist > window chain break and the
        // prev-slot aliasing path (positions beyond one window wrap).
        for window in [4usize, 16, 64, 100] {
            let cfg = Lz77Config {
                window,
                chain_depth: 8,
            };
            for seed in [3u32, 0xACE] {
                let data = patterned(window * 5 + 7, seed);
                assert_identical(&data, cfg);
            }
        }
    }

    #[test]
    fn long_match_extension_matches_reference() {
        // Matches beyond 258 force the u16 length extension and the
        // sparse chain-insertion stride.
        let mut data = vec![7u8; 70_000];
        data[0] = 1;
        for (i, b) in data.iter_mut().enumerate().skip(40_000).take(300) {
            *b = (i % 251) as u8;
        }
        assert_identical(&data, Lz77Config::fast());
        assert_identical(&data, Lz77Config::thorough());
    }

    #[test]
    fn scratch_reuse_across_configs_matches_reference() {
        // Interleave configs on one thread: thread-local chain tables must
        // not leak state between calls with different windows.
        let a = patterned(20_000, 11);
        let b = patterned(5_000, 99);
        assert_identical(&a, Lz77Config::thorough());
        assert_identical(&b, Lz77Config::fast());
        assert_identical(
            &a,
            Lz77Config {
                window: 64,
                chain_depth: 4,
            },
        );
        assert_identical(&b, Lz77Config::thorough());
    }
}

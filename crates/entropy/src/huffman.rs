//! Canonical Huffman coding over byte symbols (§2.2(2) of the paper).
//!
//! Used as the entropy stage of [`crate::zzip`] (the zstd-class codec) and
//! available standalone. Code lengths are limited to [`MAX_CODE_LEN`] bits
//! by frequency damping; codes are canonical so the table header is just
//! 256 nibble lengths (128 bytes).

use crate::bits::BitReader;

/// Maximum code length in bits.
pub const MAX_CODE_LEN: u32 = 15;

/// Error type for Huffman decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanError(pub String);

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "huffman: {}", self.0)
    }
}

impl std::error::Error for HuffmanError {}

/// Compute Huffman code lengths for 256 byte symbols, limited to
/// [`MAX_CODE_LEN`]. Symbols with zero frequency get length 0 (no code).
pub fn code_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    let mut f: Vec<u64> = freqs.to_vec();
    loop {
        let lens = huffman_lengths_unbounded(&f);
        let max = lens.iter().copied().max().unwrap_or(0);
        if u32::from(max) <= MAX_CODE_LEN {
            let mut out = [0u8; 256];
            out.copy_from_slice(&lens);
            return out;
        }
        // Damp frequencies and retry; converges because the distribution
        // flattens toward uniform (max length 8 for 256 symbols).
        for v in f.iter_mut() {
            if *v > 0 {
                *v = (*v).div_ceil(2);
            }
        }
    }
}

/// Plain Huffman algorithm (two-queue over sorted leaves) with no limit.
fn huffman_lengths_unbounded(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let mut lens = vec![0u8; n];
    let active: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match active.len() {
        0 => return lens,
        1 => {
            // A single symbol still needs 1 bit on the wire.
            lens[active[0]] = 1;
            return lens;
        }
        _ => {}
    }

    // Node arena: leaves then internals; track parents to assign depths.
    #[derive(Clone, Copy)]
    struct Node {
        freq: u64,
        parent: usize,
    }
    const NO_PARENT: usize = usize::MAX;
    let mut nodes: Vec<Node> = active
        .iter()
        .map(|&i| Node {
            freq: freqs[i],
            parent: NO_PARENT,
        })
        .collect();

    // Min-heap of (freq, node index); tie-break on index for determinism.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = nodes
        .iter()
        .enumerate()
        .map(|(i, nd)| Reverse((nd.freq, i)))
        .collect();

    while heap.len() > 1 {
        let (Some(Reverse((fa, a))), Some(Reverse((fb, b)))) = (heap.pop(), heap.pop()) else {
            break;
        };
        let parent = nodes.len();
        nodes.push(Node {
            freq: fa + fb,
            parent: NO_PARENT,
        });
        nodes[a].parent = parent;
        nodes[b].parent = parent;
        heap.push(Reverse((fa + fb, parent)));
    }

    // Depth of each leaf = number of parent hops to the root.
    for (k, &sym) in active.iter().enumerate() {
        let mut depth = 0u8;
        let mut cur = k;
        while nodes[cur].parent != NO_PARENT {
            cur = nodes[cur].parent;
            depth += 1;
        }
        lens[sym] = depth.max(1);
    }
    lens
}

/// Canonical codes from code lengths: `(code, len)` per symbol.
pub fn canonical_codes(lens: &[u8; 256]) -> [(u16, u8); 256] {
    let mut count = [0u16; (MAX_CODE_LEN + 1) as usize];
    for &l in lens.iter() {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = [0u16; (MAX_CODE_LEN + 2) as usize];
    let mut code = 0u16;
    for bits in 1..=MAX_CODE_LEN as usize {
        code = (code + count[bits - 1]) << 1;
        next[bits] = code;
    }
    let mut out = [(0u16, 0u8); 256];
    for sym in 0..256 {
        let l = lens[sym];
        if l > 0 {
            out[sym] = (next[l as usize], l);
            next[l as usize] += 1;
        }
    }
    out
}

/// Encode `data`: 128-byte nibble-packed length table, u32 symbol count,
/// then the canonical-Huffman bitstream.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(data, &mut out);
    out
}

/// Exact length of [`encode`]`(data)` without materializing the stream:
/// the 132-byte header plus the code-length-weighted histogram, rounded
/// up to whole bytes. Lets callers evaluating several candidate encodings
/// (zzip mode selection) price a Huffman mode from one histogram pass.
pub fn encoded_len(data: &[u8]) -> usize {
    let mut freqs = [0u64; 256];
    histogram(data, &mut freqs);
    let lens = code_lengths(&freqs);
    let bits: u64 = freqs
        .iter()
        .zip(lens.iter())
        .map(|(&f, &l)| f * u64::from(l))
        .sum();
    128 + 4 + (bits as usize).div_ceil(8)
}

/// Four-lane byte histogram: independent counters break the
/// store-to-load dependency chain of a single table.
fn histogram(data: &[u8], freqs: &mut [u64; 256]) {
    let mut lanes = [[0u64; 256]; 4];
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        lanes[0][c[0] as usize] += 1;
        lanes[1][c[1] as usize] += 1;
        lanes[2][c[2] as usize] += 1;
        lanes[3][c[3] as usize] += 1;
    }
    for &b in chunks.remainder() {
        lanes[0][b as usize] += 1;
    }
    for (i, f) in freqs.iter_mut().enumerate() {
        *f = lanes[0][i] + lanes[1][i] + lanes[2][i] + lanes[3][i];
    }
}

/// Like [`encode`] but into a caller-owned buffer (contents replaced,
/// capacity reused) — no intermediate bitstream copy.
///
/// The hot loops are batched: the histogram counts into four lanes to
/// break the store-to-load dependency chain, and the emitter fuses four
/// symbols (≤ 60 bits at [`MAX_CODE_LEN`] 15) into one accumulator push.
/// Concatenating MSB-first codes in an accumulator is bit-exact with
/// pushing them one by one, so the stream is unchanged.
pub fn encode_into(data: &[u8], out: &mut Vec<u8>) {
    let mut freqs = [0u64; 256];
    histogram(data, &mut freqs);
    let lens = code_lengths(&freqs);
    let codes = canonical_codes(&lens);

    out.clear();
    out.reserve(128 + 4 + data.len() / 2);
    for pair in lens.chunks(2) {
        out.push((pair[0] << 4) | (pair[1] & 0x0F));
    }
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());

    let mut w = crate::bits::BitSink::new(out);
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        let (c0, l0) = codes[c[0] as usize];
        let (c1, l1) = codes[c[1] as usize];
        let (c2, l2) = codes[c[2] as usize];
        let (c3, l3) = codes[c[3] as usize];
        let mut acc = c0 as u64;
        acc = (acc << l1) | c1 as u64;
        acc = (acc << l2) | c2 as u64;
        acc = (acc << l3) | c3 as u64;
        w.push_bits(acc, (l0 + l1 + l2 + l3) as u32);
    }
    for &b in chunks.remainder() {
        let (code, len) = codes[b as usize];
        w.push_bits(code as u64, len as u32);
    }
    w.finish();
}

/// Decode a stream produced by [`encode`].
pub fn decode(input: &[u8]) -> Result<Vec<u8>, HuffmanError> {
    if input.len() < 132 {
        return Err(HuffmanError("stream shorter than header".into()));
    }
    let mut lens = [0u8; 256];
    for i in 0..128 {
        lens[2 * i] = input[i] >> 4;
        lens[2 * i + 1] = input[i] & 0x0F;
    }
    let count = u32::from_le_bytes([input[128], input[129], input[130], input[131]]) as usize;

    // Canonical decoding tables: first code and first symbol index per length.
    let mut bl_count = [0u32; (MAX_CODE_LEN + 1) as usize];
    for &l in lens.iter() {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let total_syms: u32 = bl_count.iter().sum();
    if total_syms == 0 {
        if count == 0 {
            return Ok(Vec::new());
        }
        return Err(HuffmanError("no codes but nonzero symbol count".into()));
    }

    let mut first_code = [0u32; (MAX_CODE_LEN + 1) as usize];
    let mut first_sym_idx = [0u32; (MAX_CODE_LEN + 1) as usize];
    let mut code = 0u32;
    let mut idx = 0u32;
    for bits in 1..=MAX_CODE_LEN as usize {
        code <<= 1;
        first_code[bits] = code;
        first_sym_idx[bits] = idx;
        code += bl_count[bits];
        idx += bl_count[bits];
    }
    // Symbols sorted by (length, symbol) — canonical order.
    let mut sym_by_idx = Vec::with_capacity(total_syms as usize);
    for bits in 1..=MAX_CODE_LEN {
        for (sym, &l) in lens.iter().enumerate() {
            if u32::from(l) == bits {
                sym_by_idx.push(sym as u8);
            }
        }
    }

    let mut r = BitReader::new(&input[132..]);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut code = 0u32;
        let mut len = 0usize;
        loop {
            let bit = r
                .read_bit()
                .ok_or_else(|| HuffmanError("bitstream exhausted".into()))?;
            code = (code << 1) | bit as u32;
            len += 1;
            if len > MAX_CODE_LEN as usize {
                return Err(HuffmanError("code longer than maximum".into()));
            }
            let n_at_len = bl_count[len];
            if n_at_len > 0 && code >= first_code[len] && code < first_code[len] + n_at_len {
                let sym = sym_by_idx[(first_sym_idx[len] + (code - first_code[len])) as usize];
                out.push(sym);
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let enc = encode(data);
        let dec = decode(&enc).expect("decode");
        assert_eq!(dec, data);
    }

    #[test]
    fn empty_round_trip() {
        round_trip(&[]);
    }

    #[test]
    fn single_symbol_stream() {
        round_trip(&[b'z'; 1000]);
        // Entropy ~0, so output should be near the 132-byte header.
        let enc = encode(&[b'z'; 1000]);
        assert!(enc.len() < 132 + 150);
    }

    #[test]
    fn two_symbol_skew() {
        let mut data = vec![0u8; 10_000];
        for i in (0..10_000).step_by(100) {
            data[i] = 1;
        }
        let enc = encode(&data);
        // ~0.08 bits/symbol entropy => far below 1 byte/symbol.
        assert!(enc.len() < 132 + 10_000 / 4);
        round_trip(&data);
    }

    #[test]
    fn all_bytes_uniform() {
        let data: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        round_trip(&data);
        // Uniform bytes cannot compress below 8 bits/symbol.
        let enc = encode(&data);
        assert!(enc.len() >= 8192);
    }

    #[test]
    fn random_data_round_trip() {
        let mut x = 0xDEADBEEFu32;
        let data: Vec<u8> = (0..30_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 16) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn text_like_data_compresses() {
        let text = b"the quick brown fox jumps over the lazy dog ".repeat(200);
        let enc = encode(&text);
        assert!(enc.len() < text.len() * 3 / 4);
        round_trip(&text);
    }

    #[test]
    fn code_lengths_respect_limit_under_pathological_skew() {
        // Fibonacci-like frequencies make plain Huffman arbitrarily deep.
        let mut freqs = [0u64; 256];
        let mut a = 1u64;
        let mut b = 1u64;
        for slot in freqs.iter_mut().take(40) {
            *slot = a;
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let lens = code_lengths(&freqs);
        assert!(lens.iter().all(|&l| u32::from(l) <= MAX_CODE_LEN));
        // Codes must form a valid prefix set (Kraft sum <= 1).
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft sum {kraft} exceeds 1");
    }

    #[test]
    fn kraft_inequality_on_random_frequencies() {
        let mut x = 7u64;
        let mut freqs = [0u64; 256];
        for slot in freqs.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *slot = x % 1000;
        }
        let lens = code_lengths(&freqs);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9);
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = encode(b"hello world hello world");
        assert!(decode(&enc[..50]).is_err());
        let mut bad = enc.clone();
        bad.truncate(enc.len() - 1);
        // Removing bitstream bytes must fail (count can no longer be met)...
        // unless padding made the last byte redundant; accept either failure
        // or correct output, but never a wrong success.
        if let Ok(out) = decode(&bad) {
            assert_eq!(out, b"hello world hello world");
        }
    }

    #[test]
    fn decode_rejects_empty() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0u8; 131]).is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freqs = [1u64; 256];
        freqs[0] = 1000;
        freqs[17] = 500;
        let lens = code_lengths(&freqs);
        let codes = canonical_codes(&lens);
        for (i, &(ci, li)) in codes.iter().enumerate() {
            for (j, &(cj, lj)) in codes.iter().enumerate() {
                if i == j || li == 0 || lj == 0 || li > lj {
                    continue;
                }
                // ci (shorter or equal) must not be a prefix of cj
                let shifted = cj >> (lj - li);
                assert!(
                    !(li < lj && shifted == ci),
                    "code {i} ({ci:b}/{li}) is a prefix of {j} ({cj:b}/{lj})"
                );
            }
        }
    }
}

//! Property tests for the entropy substrates: every coder must be an
//! exact inverse pair on arbitrary byte strings, and decoders must reject
//! (not panic on) malformed streams.

use fcbench_entropy::lz77::Lz77Config;
use fcbench_entropy::{huffman, lz4, lz77, zzip, AdaptiveModel, RangeDecoder, RangeEncoder};
use fcbench_entropy::{BitReader, BitWriter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_fields_round_trip(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 0..200)) {
        let mut w = BitWriter::new();
        let masked: Vec<(u64, u32)> = fields
            .iter()
            .map(|&(v, n)| (if n == 64 { v } else { v & ((1u64 << n) - 1) }, n))
            .collect();
        for &(v, n) in &masked {
            w.push_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &masked {
            prop_assert_eq!(r.read_bits(n), Some(v));
        }
    }

    #[test]
    fn lz4_inverse_pair(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = lz4::compress(&data);
        prop_assert_eq!(lz4::decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn lz77_inverse_pair_both_configs(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        for cfg in [Lz77Config::fast(), Lz77Config::thorough()] {
            let c = lz77::compress(&data, cfg);
            prop_assert_eq!(lz77::decompress(&c, data.len()).unwrap(), data.clone());
        }
    }

    #[test]
    fn huffman_inverse_pair(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = huffman::encode(&data);
        prop_assert_eq!(huffman::decode(&c).unwrap(), data);
    }

    #[test]
    fn zzip_inverse_pair(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = zzip::compress(&data);
        prop_assert_eq!(zzip::decompress(&c).unwrap(), data);
    }

    #[test]
    fn zzip_never_expands_beyond_header(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        // Stored mode bounds expansion at the 10-byte frame header.
        let c = zzip::compress(&data);
        prop_assert!(c.len() <= data.len() + 10);
    }

    #[test]
    fn range_coder_inverse_pair(
        symbols in prop::collection::vec(0usize..32, 0..2000),
    ) {
        let mut model = AdaptiveModel::new(32);
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            model.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut model = AdaptiveModel::new(32);
        let mut dec = RangeDecoder::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(model.decode(&mut dec), s);
        }
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..500)) {
        let _ = lz4::decompress(&bytes, 64);
        let _ = lz77::decompress(&bytes, 64);
        let _ = huffman::decode(&bytes);
        let _ = zzip::decompress(&bytes);
    }
}

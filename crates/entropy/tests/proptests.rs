//! Property tests for the entropy substrates: every coder must be an
//! exact inverse pair on arbitrary byte strings, and decoders must reject
//! (not panic on) malformed streams.

use fcbench_entropy::bits::reference;
use fcbench_entropy::lz77::Lz77Config;
use fcbench_entropy::{huffman, lz4, lz77, zzip, AdaptiveModel, RangeDecoder, RangeEncoder};
use fcbench_entropy::{BitReader, BitSink, BitWriter};
use proptest::prelude::*;

/// Mask a `(value, width)` pair so the value fits the field.
fn mask_fields(fields: &[(u64, u32)]) -> Vec<(u64, u32)> {
    fields
        .iter()
        .map(|&(v, n)| (if n == 64 { v } else { v & ((1u64 << n) - 1) }, n))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_fields_round_trip(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 0..200)) {
        let masked = mask_fields(&fields);
        let mut w = BitWriter::new();
        for &(v, n) in &masked {
            w.push_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &masked {
            prop_assert_eq!(r.read_bits(n), Some(v));
        }
    }

    // ---- differential tests: the u64-accumulator engine vs the retained
    // byte-granular reference implementation. The wire format must be
    // byte-identical in both directions for arbitrary programs.

    #[test]
    fn writer_matches_reference_byte_for_byte(
        fields in prop::collection::vec((any::<u64>(), 0u32..=64), 0..300),
        single_bits in prop::collection::vec(any::<bool>(), 0..64),
        align_every in 1usize..8,
    ) {
        let masked = mask_fields(&fields);
        let mut new_w = BitWriter::new();
        let mut ref_w = reference::BitWriter::new();
        for (i, &(v, n)) in masked.iter().enumerate() {
            new_w.push_bits(v, n);
            ref_w.push_bits(v, n);
            if i % align_every == 0 {
                new_w.align_byte();
                ref_w.align_byte();
            }
            prop_assert_eq!(new_w.bit_len(), ref_w.bit_len());
        }
        for &b in &single_bits {
            new_w.push_bit(b);
            ref_w.push_bit(b);
        }
        prop_assert_eq!(new_w.bit_len(), ref_w.bit_len());
        prop_assert_eq!(new_w.into_bytes(), ref_w.into_bytes());
    }

    #[test]
    fn sink_matches_reference_byte_for_byte(
        prefix in prop::collection::vec(any::<u8>(), 0..8),
        fields in prop::collection::vec((any::<u64>(), 0u32..=64), 0..300),
        align_every in 1usize..8,
    ) {
        let masked = mask_fields(&fields);
        let mut new_buf = prefix.clone();
        let mut ref_buf = prefix;
        {
            let mut new_s = BitSink::new(&mut new_buf);
            let mut ref_s = reference::BitSink::new(&mut ref_buf);
            for (i, &(v, n)) in masked.iter().enumerate() {
                new_s.push_bits(v, n);
                ref_s.push_bits(v, n);
                if i % align_every == 0 {
                    new_s.push_bit(true);
                    ref_s.push_bit(true);
                    new_s.align_byte();
                    ref_s.align_byte();
                }
                prop_assert_eq!(new_s.bit_len(), ref_s.bit_len());
            }
        }
        prop_assert_eq!(new_buf, ref_buf);
    }

    #[test]
    fn reader_matches_reference_on_random_programs(
        bytes in prop::collection::vec(any::<u8>(), 0..40),
        // Per step: 0 = read_bit, 1..=64 = read_bits(n), 65 = align_byte.
        program in prop::collection::vec(0u32..=65, 0..120),
    ) {
        let mut new_r = BitReader::new(&bytes);
        let mut ref_r = reference::BitReader::new(&bytes);
        for &step in &program {
            match step {
                0 => prop_assert_eq!(new_r.read_bit(), ref_r.read_bit()),
                65 => {
                    new_r.align_byte();
                    ref_r.align_byte();
                }
                n => {
                    // peek_bits must agree with a successful read_bits.
                    let peeked = new_r.peek_bits(n);
                    let got = new_r.read_bits(n);
                    prop_assert_eq!(got, ref_r.read_bits(n));
                    if let Some(v) = got {
                        prop_assert_eq!(peeked, v);
                    }
                }
            }
            prop_assert_eq!(new_r.position(), ref_r.position());
            prop_assert_eq!(new_r.remaining(), ref_r.remaining());
        }
    }

    #[test]
    fn peek_consume_equals_read(
        bytes in prop::collection::vec(any::<u8>(), 0..24),
        widths in prop::collection::vec(1u32..=64, 0..40),
    ) {
        let mut via_read = BitReader::new(&bytes);
        let mut via_peek = BitReader::new(&bytes);
        for &n in &widths {
            let read = via_read.read_bits(n);
            match read {
                Some(v) => {
                    prop_assert_eq!(via_peek.peek_bits(n), v);
                    prop_assert_eq!(via_peek.consume(n), Some(()));
                }
                None => {
                    prop_assert_eq!(via_peek.consume(n), None);
                    // Past-end peeks zero-pad: real prefix bits, zero tail.
                    let rem = via_peek.remaining() as u32;
                    let padded = via_peek.peek_bits(n);
                    if rem == 0 {
                        prop_assert_eq!(padded, 0);
                    } else {
                        let mut probe = via_peek.clone();
                        let prefix = probe.read_bits(rem).expect("remaining bits readable");
                        prop_assert_eq!(padded, prefix << (n - rem));
                    }
                }
            }
            prop_assert_eq!(via_peek.position(), via_read.position());
        }
    }

    #[test]
    fn aligned_runs_interleave_with_bit_fields(
        runs in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..12), any::<u64>(), 0u32..=64),
            0..20,
        ),
    ) {
        // Program: per run, an aligned byte blob then a bit field then
        // re-alignment. The sink's bulk path and the reference sink's
        // push_bits-per-byte path must produce identical streams, and the
        // reader's read_aligned_bytes must hand back the blobs verbatim.
        let mut new_buf = Vec::new();
        let mut ref_buf = Vec::new();
        {
            let mut new_s = BitSink::new(&mut new_buf);
            let mut ref_s = reference::BitSink::new(&mut ref_buf);
            for (blob, v, n) in &runs {
                new_s.extend_aligned(blob);
                for &b in blob {
                    ref_s.push_bits(u64::from(b), 8);
                }
                let v = if *n == 64 { *v } else { v & ((1u64 << n) - 1) };
                new_s.push_bits(v, *n);
                ref_s.push_bits(v, *n);
                new_s.align_byte();
                ref_s.align_byte();
            }
        }
        prop_assert_eq!(&new_buf, &ref_buf);

        let mut r = BitReader::new(&new_buf);
        for (blob, v, n) in &runs {
            prop_assert_eq!(r.read_aligned_bytes(blob.len()), Some(blob.as_slice()));
            let v = if *n == 64 { *v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.read_bits(*n), Some(v));
            r.align_byte();
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn lz4_inverse_pair(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = lz4::compress(&data);
        prop_assert_eq!(lz4::decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn lz77_inverse_pair_both_configs(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        for cfg in [Lz77Config::fast(), Lz77Config::thorough()] {
            let c = lz77::compress(&data, cfg);
            prop_assert_eq!(lz77::decompress(&c, data.len()).unwrap(), data.clone());
        }
    }

    // ---- differential: the word-at-a-time lz77 kernel vs the retained
    // byte-granular reference. Compressed streams must be byte-identical
    // and both decompressors must agree on arbitrary inputs.

    #[test]
    fn lz77_compress_matches_reference(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        for cfg in [Lz77Config::fast(), Lz77Config::thorough(),
                    Lz77Config { window: 64, chain_depth: 4 }] {
            let fast = lz77::compress(&data, cfg);
            let slow = lz77::reference::compress(&data, cfg);
            prop_assert_eq!(&fast, &slow);
            prop_assert_eq!(lz77::decompress(&fast, data.len()).unwrap(), data.clone());
        }
    }

    #[test]
    fn lz77_compressible_matches_reference(
        runs in prop::collection::vec((any::<u8>(), 1usize..60), 0..200),
    ) {
        let mut data = Vec::new();
        for &(b, n) in &runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        for cfg in [Lz77Config::fast(), Lz77Config::thorough()] {
            let fast = lz77::compress(&data, cfg);
            let slow = lz77::reference::compress(&data, cfg);
            prop_assert_eq!(&fast, &slow);
            prop_assert_eq!(
                lz77::decompress(&fast, data.len()).unwrap(),
                lz77::reference::decompress(&fast, data.len()).unwrap()
            );
        }
    }

    #[test]
    fn lz77_decompress_agrees_with_reference_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..500),
        expected in 0usize..256,
    ) {
        let fast = lz77::decompress(&bytes, expected);
        let slow = lz77::reference::decompress(&bytes, expected);
        match (fast, slow) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "fast {a:?} vs reference {b:?}"),
        }
    }

    #[test]
    fn huffman_inverse_pair(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = huffman::encode(&data);
        prop_assert_eq!(huffman::decode(&c).unwrap(), data);
    }

    #[test]
    fn zzip_inverse_pair(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let c = zzip::compress(&data);
        prop_assert_eq!(zzip::decompress(&c).unwrap(), data);
    }

    #[test]
    fn zzip_never_expands_beyond_header(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        // Stored mode bounds expansion at the 10-byte frame header.
        let c = zzip::compress(&data);
        prop_assert!(c.len() <= data.len() + 10);
    }

    #[test]
    fn range_coder_inverse_pair(
        symbols in prop::collection::vec(0usize..32, 0..2000),
    ) {
        let mut model = AdaptiveModel::new(32);
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            model.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut model = AdaptiveModel::new(32);
        let mut dec = RangeDecoder::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(model.decode(&mut dec), s);
        }
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..500)) {
        let _ = lz4::decompress(&bytes, 64);
        let _ = lz77::decompress(&bytes, 64);
        let _ = huffman::decode(&bytes);
        let _ = zzip::decompress(&bytes);
    }
}

/// Exhaustive (not property-based) boundary sweep: buffers of 0..=9 bytes,
/// every start offset, every width 1..=64. This walks the windowed
/// extractor across every final-partial-word shape — the exact territory
/// where an off-by-one in the refill/ninth-byte path would hide — and
/// checks it against the byte-granular reference reader bit for bit.
#[test]
fn read_bits_boundary_exhaustive() {
    for len in 0..=9usize {
        let bytes: Vec<u8> = (0..len)
            .map(|i| 0xA5u8.wrapping_mul(i as u8 + 1) ^ 0x3C)
            .collect();
        for start in 0..=len * 8 {
            for n in 1..=64u32 {
                let mut new_r = BitReader::new(&bytes);
                let mut ref_r = reference::BitReader::new(&bytes);
                for _ in 0..start {
                    assert_eq!(new_r.read_bit(), ref_r.read_bit());
                }
                let peeked = new_r.peek_bits(n);
                let got = new_r.read_bits(n);
                assert_eq!(got, ref_r.read_bits(n), "len {len} start {start} n {n}");
                if let Some(v) = got {
                    assert_eq!(peeked, v, "peek/read mismatch at {len}/{start}/{n}");
                }
                assert_eq!(new_r.position(), ref_r.position());
                assert_eq!(new_r.remaining(), ref_r.remaining());
                // Aligning at (or past) the tail stays clamped in bounds.
                new_r.align_byte();
                assert!(new_r.position() <= bytes.len() * 8);
            }
        }
    }
}

//! SIMT kernel execution: thread blocks scheduled over simulated SMs.
//!
//! The simulator executes a kernel as a grid of independent **thread
//! blocks** (the granularity at which every surveyed GPU compressor
//! parallelizes: GFC warps, MPC 1024-element chunks, ndzip hypercubes,
//! nvCOMP pages). Blocks are dispatched over a pool of host worker threads
//! standing in for SMs. Within a block, kernels run warp-cooperative code
//! sequentially but report **branch divergence** through [`KernelCtx`], so
//! the divergence penalty the paper attributes to dictionary methods
//! (Observation 3) is observable in kernel statistics.

use crate::config::GpuConfig;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-launch execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Thread blocks executed.
    pub blocks: u64,
    /// Divergence events reported by the kernel (lanes of one warp taking
    /// different control paths).
    pub divergence_events: u64,
    /// Simulated dynamic instruction count reported by the kernel.
    pub instructions: u64,
}

/// Handle passed to kernel code for reporting execution behaviour.
pub struct KernelCtx<'a> {
    block_id: usize,
    divergence: &'a AtomicU64,
    instructions: &'a AtomicU64,
}

impl KernelCtx<'_> {
    /// The block index within the launch grid.
    pub fn block_id(&self) -> usize {
        self.block_id
    }

    /// Report one warp-divergence event (e.g. a data-dependent branch in a
    /// match-search loop).
    pub fn report_divergence(&self) {
        self.divergence.fetch_add(1, Ordering::Relaxed);
    }

    /// Report `n` simulated instructions executed by this block.
    pub fn report_instructions(&self, n: u64) {
        self.instructions.fetch_add(n, Ordering::Relaxed);
    }
}

/// The simulated device: block scheduler + statistics.
pub struct Gpu {
    config: GpuConfig,
}

impl Gpu {
    pub fn new(config: GpuConfig) -> Self {
        Gpu { config }
    }

    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Launch a kernel over `items`, one thread block per item. Blocks are
    /// distributed over `sm_count` worker threads. Outputs preserve item
    /// order. The kernel must be `Sync` (device code has no host state).
    pub fn launch<T, R, K>(&self, items: Vec<T>, kernel: K) -> (Vec<R>, KernelStats)
    where
        T: Send,
        R: Send,
        K: Fn(&KernelCtx<'_>, T) -> R + Sync,
    {
        let nblocks = items.len();
        let divergence = AtomicU64::new(0);
        let instructions = AtomicU64::new(0);

        let mut slots: Vec<Option<R>> = Vec::with_capacity(nblocks);
        slots.resize_with(nblocks, || None);
        let workers = self.config.sm_count.min(nblocks).max(1);
        let per = nblocks.div_ceil(workers).max(1);

        // Move items into indexed chunks; each worker owns a contiguous run.
        let mut indexed: Vec<(usize, T)> = items.into_iter().enumerate().collect();
        std::thread::scope(|s| {
            let mut slot_rest: &mut [Option<R>] = &mut slots;
            let mut processed = 0usize;
            while !indexed.is_empty() {
                let take = per.min(indexed.len());
                let chunk: Vec<(usize, T)> = indexed.drain(..take).collect();
                let (head, tail) = slot_rest.split_at_mut(take);
                slot_rest = tail;
                let kernel = &kernel;
                let divergence = &divergence;
                let instructions = &instructions;
                s.spawn(move || {
                    for ((bid, item), slot) in chunk.into_iter().zip(head.iter_mut()) {
                        let ctx = KernelCtx {
                            block_id: bid,
                            divergence,
                            instructions,
                        };
                        *slot = Some(kernel(&ctx, item));
                    }
                });
                processed += take;
            }
            debug_assert_eq!(processed, nblocks);
        });

        let outputs: Vec<R> = slots
            .into_iter()
            .map(|s| s.expect("every block produced output"))
            .collect();
        let stats = KernelStats {
            blocks: nblocks as u64,
            divergence_events: divergence.load(Ordering::Relaxed),
            instructions: instructions.load(Ordering::Relaxed),
        };
        (outputs, stats)
    }
}

/// Work-efficient exclusive prefix sum (Blelloch scan) — the primitive
/// ndzip-GPU uses to compute per-chunk output offsets so decompression is
/// fully block-parallel (§4.4).
pub fn exclusive_prefix_sum(values: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u64;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_preserves_order() {
        let gpu = Gpu::new(GpuConfig::tiny());
        let items: Vec<u64> = (0..1000).collect();
        let (out, stats) = gpu.launch(items, |_ctx, x| x * 2);
        let expect: Vec<u64> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(out, expect);
        assert_eq!(stats.blocks, 1000);
    }

    #[test]
    fn empty_launch() {
        let gpu = Gpu::new(GpuConfig::tiny());
        let (out, stats) = gpu.launch(Vec::<u32>::new(), |_ctx, x| x);
        assert!(out.is_empty());
        assert_eq!(stats.blocks, 0);
    }

    #[test]
    fn divergence_and_instruction_reporting() {
        let gpu = Gpu::new(GpuConfig::tiny());
        let items: Vec<u32> = (0..64).collect();
        let (_, stats) = gpu.launch(items, |ctx, x| {
            ctx.report_instructions(10);
            if x % 2 == 0 {
                ctx.report_divergence();
            }
            x
        });
        assert_eq!(stats.divergence_events, 32);
        assert_eq!(stats.instructions, 640);
    }

    #[test]
    fn block_ids_cover_grid() {
        let gpu = Gpu::new(GpuConfig::tiny());
        let items: Vec<()> = vec![(); 50];
        let (ids, _) = gpu.launch(items, |ctx, ()| ctx.block_id());
        let expect: Vec<usize> = (0..50).collect();
        assert_eq!(ids, expect);
    }

    #[test]
    fn prefix_sum_matches_manual() {
        assert_eq!(exclusive_prefix_sum(&[]), Vec::<u64>::new());
        assert_eq!(exclusive_prefix_sum(&[5]), vec![0]);
        assert_eq!(exclusive_prefix_sum(&[3, 1, 4, 1, 5]), vec![0, 3, 4, 8, 9]);
    }

    #[test]
    fn heavy_parallel_launch_is_deterministic() {
        let gpu = Gpu::new(GpuConfig::rtx6000());
        let items: Vec<u64> = (0..10_000).collect();
        let (a, _) = gpu.launch(items.clone(), |_ctx, x| x.wrapping_mul(0x9E3779B9));
        let (b, _) = gpu.launch(items, |_ctx, x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(a, b);
    }
}

//! Simulated GPU device properties.
//!
//! Defaults model the paper's test card, an NVIDIA Quadro RTX 6000
//! (§5.5): 72 SMs, 32-lane warps, ~621 GB/s device memory bandwidth
//! (Fig. 11b roofline), and a PCIe 3.0 ×16 host link (~12 GB/s effective)
//! whose cost drives the paper's "host-to-device is slow" observation.

/// Static properties of the simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Marketing name, used in reports.
    pub name: String,
    /// Number of streaming multiprocessors (parallel block slots).
    pub sm_count: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Maximum resident threads per block.
    pub max_threads_per_block: usize,
    /// Device-memory bandwidth in GB/s (roofline ceiling).
    pub dram_gbs: f64,
    /// Host↔device link bandwidth in GB/s.
    pub pcie_gbs: f64,
    /// Per-transfer fixed latency in seconds (driver + DMA setup).
    pub transfer_latency_s: f64,
    /// Device memory capacity in bytes (allocation guard).
    pub vram_bytes: usize,
    /// Peak single-precision throughput in GFLOP/s (roofline ceiling).
    pub peak_fp32_gflops: f64,
    /// Peak double-precision throughput in GFLOP/s.
    pub peak_fp64_gflops: f64,
}

impl GpuConfig {
    /// The paper's Quadro RTX 6000 (Fig. 11b ceilings).
    pub fn rtx6000() -> Self {
        GpuConfig {
            name: "Quadro RTX 6000 (simulated)".to_string(),
            sm_count: 72,
            warp_size: 32,
            max_threads_per_block: 1024,
            dram_gbs: 621.5,
            pcie_gbs: 12.0,
            transfer_latency_s: 10e-6,
            vram_bytes: 24 * 1024 * 1024 * 1024,
            peak_fp32_gflops: 13_325.8,
            peak_fp64_gflops: 416.4,
        }
    }

    /// A small device for tests (tiny VRAM, slow link) so limits trigger.
    pub fn tiny() -> Self {
        GpuConfig {
            name: "test-gpu".to_string(),
            sm_count: 2,
            warp_size: 32,
            max_threads_per_block: 64,
            dram_gbs: 10.0,
            pcie_gbs: 1.0,
            transfer_latency_s: 1e-6,
            vram_bytes: 1024 * 1024,
            peak_fp32_gflops: 100.0,
            peak_fp64_gflops: 50.0,
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::rtx6000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx6000_matches_paper_rooflines() {
        let c = GpuConfig::rtx6000();
        assert_eq!(c.warp_size, 32);
        assert!((c.dram_gbs - 621.5).abs() < 1e-9);
        assert!((c.peak_fp32_gflops - 13_325.8).abs() < 1e-9);
        assert!((c.peak_fp64_gflops - 416.4).abs() < 1e-9);
    }

    #[test]
    fn default_is_rtx6000() {
        assert_eq!(GpuConfig::default(), GpuConfig::rtx6000());
    }
}

//! # fcbench-gpu-sim
//!
//! A SIMT execution simulator standing in for the paper's CUDA/SYCL
//! hardware (DESIGN.md documents the substitution). It models the three
//! GPU effects the paper's observations depend on:
//!
//! 1. **Massive block-level parallelism** — kernels launch one thread
//!    block per work item over a pool of simulated SMs ([`exec::Gpu`]);
//! 2. **Host↔device transfer cost** — every copy is priced against link
//!    bandwidth + latency and accumulated per operation
//!    ([`transfer::TransferLedger`]), driving the Table 6 end-to-end gap;
//! 3. **Branch divergence** — kernels report divergence events
//!    ([`exec::KernelCtx::report_divergence`]), making the dictionary-codec
//!    penalty of Observation 3 measurable.
//!
//! Device ceilings default to the paper's Quadro RTX 6000
//! ([`config::GpuConfig::rtx6000`]).

#![forbid(unsafe_code)]

pub mod config;
pub mod exec;
pub mod transfer;

pub use config::GpuConfig;
pub use exec::{exclusive_prefix_sum, Gpu, KernelCtx, KernelStats};
pub use transfer::{Dir, Transfer, TransferLedger};

//! Host↔device transfer cost model and per-device ledger.
//!
//! GPU compression in the paper is measured two ways: kernel-only
//! throughput (Table 5 / Fig. 8, where GPUs win by ~350×) and end-to-end
//! wall time *including* host-to-device copies (Table 6, where
//! bitshuffle on the CPU becomes competitive and ndzip-CPU beats
//! ndzip-GPU). The simulator reproduces that distinction by modelling
//! every `h2d`/`d2h` against link bandwidth + latency and accumulating the
//! cost in a ledger the codecs expose through
//! `fcbench_core`-style aux-time reporting.

use crate::config::GpuConfig;
use parking_lot::Mutex;

/// Direction of a modelled copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    HostToDevice,
    DeviceToHost,
}

/// One modelled transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    pub dir: Dir,
    pub bytes: usize,
    pub seconds: f64,
}

/// Accumulates modelled transfers; cleared per operation by the codecs.
#[derive(Debug, Default)]
pub struct TransferLedger {
    inner: Mutex<Vec<Transfer>>,
}

impl TransferLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Model a copy of `bytes` in direction `dir` and record it.
    pub fn record(&self, cfg: &GpuConfig, dir: Dir, bytes: usize) -> f64 {
        let seconds = cfg.transfer_latency_s + bytes as f64 / (cfg.pcie_gbs * 1e9);
        self.inner.lock().push(Transfer {
            dir,
            bytes,
            seconds,
        });
        seconds
    }

    /// Total modelled seconds per direction since the last [`Self::drain`].
    pub fn totals(&self) -> (f64, f64) {
        let inner = self.inner.lock();
        let h2d = inner
            .iter()
            .filter(|t| t.dir == Dir::HostToDevice)
            .map(|t| t.seconds)
            .sum();
        let d2h = inner
            .iter()
            .filter(|t| t.dir == Dir::DeviceToHost)
            .map(|t| t.seconds)
            .sum();
        (h2d, d2h)
    }

    /// Clear and return all recorded transfers.
    pub fn drain(&self) -> Vec<Transfer> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Number of recorded transfers.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let cfg = GpuConfig::tiny(); // 1 GB/s, 1 µs latency
        let ledger = TransferLedger::new();
        let t1 = ledger.record(&cfg, Dir::HostToDevice, 1_000_000);
        // 1 MB at 1 GB/s = 1 ms (+1 µs latency)
        assert!((t1 - 0.001_001).abs() < 1e-9);
        let t2 = ledger.record(&cfg, Dir::DeviceToHost, 2_000_000);
        assert!(t2 > t1);
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn latency_dominates_small_copies() {
        let cfg = GpuConfig::rtx6000();
        let ledger = TransferLedger::new();
        let t = ledger.record(&cfg, Dir::HostToDevice, 8);
        assert!(t >= cfg.transfer_latency_s);
        assert!(t < 2.0 * cfg.transfer_latency_s);
    }

    #[test]
    fn totals_split_by_direction() {
        let cfg = GpuConfig::tiny();
        let ledger = TransferLedger::new();
        ledger.record(&cfg, Dir::HostToDevice, 1_000_000);
        ledger.record(&cfg, Dir::HostToDevice, 1_000_000);
        ledger.record(&cfg, Dir::DeviceToHost, 1_000_000);
        let (h2d, d2h) = ledger.totals();
        assert!(h2d > d2h);
        assert!((h2d - 2.0 * d2h).abs() < 1e-6);
    }

    #[test]
    fn drain_empties_the_ledger() {
        let cfg = GpuConfig::tiny();
        let ledger = TransferLedger::new();
        ledger.record(&cfg, Dir::HostToDevice, 100);
        let drained = ledger.drain();
        assert_eq!(drained.len(), 1);
        assert!(ledger.is_empty());
        assert_eq!(ledger.totals(), (0.0, 0.0));
    }
}

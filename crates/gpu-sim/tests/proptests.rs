//! Property tests for the SIMT simulator: launches preserve order and
//! coverage for arbitrary grids; the transfer model is monotone in size.

use fcbench_gpu_sim::{exclusive_prefix_sum, Dir, Gpu, GpuConfig, TransferLedger};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn launch_is_an_order_preserving_map(items in prop::collection::vec(any::<u32>(), 0..500)) {
        let gpu = Gpu::new(GpuConfig::tiny());
        let expect: Vec<u64> = items.iter().map(|&x| x as u64 + 7).collect();
        let (out, stats) = gpu.launch(items.clone(), |_ctx, x| x as u64 + 7);
        prop_assert_eq!(out, expect);
        prop_assert_eq!(stats.blocks, items.len() as u64);
    }

    #[test]
    fn block_ids_are_an_identity(n in 0usize..300) {
        let gpu = Gpu::new(GpuConfig::rtx6000());
        let (ids, _) = gpu.launch(vec![(); n], |ctx, ()| ctx.block_id());
        prop_assert_eq!(ids, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn prefix_sum_matches_scan(values in prop::collection::vec(0u64..1000, 0..200)) {
        let out = exclusive_prefix_sum(&values);
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(out[i], acc);
            acc += v;
        }
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes(a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let cfg = GpuConfig::rtx6000();
        let ledger = TransferLedger::new();
        let ta = ledger.record(&cfg, Dir::HostToDevice, a.min(b));
        let tb = ledger.record(&cfg, Dir::HostToDevice, a.max(b));
        prop_assert!(ta <= tb + 1e-15);
        prop_assert!(ta >= cfg.transfer_latency_s);
    }
}

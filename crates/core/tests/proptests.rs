//! Property tests for the core substrate: frames and block containers are
//! exact inverses, and their decoders reject malformed input gracefully.

use fcbench_core::blocks::BlockCodec;
use fcbench_core::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
use fcbench_core::frame::{decode_chunked_frame, decode_frame, encode_chunked_frame, encode_frame};
use fcbench_core::{Compressor, DataDesc, Domain, Error, FloatData, Pipeline, Precision, Result};
use proptest::prelude::*;

/// Trivial store codec used to exercise container plumbing.
struct Store;

impl Compressor for Store {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "store",
            year: 2024,
            community: Community::General,
            class: CodecClass::Delta,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }
    fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
        Ok(data.bytes().to_vec())
    }
    fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
        FloatData::from_bytes(desc.clone(), payload.to_vec())
    }
}

fn arb_desc() -> impl Strategy<Value = DataDesc> {
    (
        prop::bool::ANY,
        prop::collection::vec(1usize..20, 1..4),
        0usize..4,
    )
        .prop_map(|(double, dims, dom)| {
            let precision = if double {
                Precision::Double
            } else {
                Precision::Single
            };
            DataDesc::new(precision, dims, Domain::ALL[dom]).expect("nonzero dims")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_are_exact_inverses(
        desc in arb_desc(),
        payload in prop::collection::vec(any::<u8>(), 0..500),
        name in "[a-z][a-z0-9-]{0,30}",
    ) {
        let framed = encode_frame(&name, &desc, &payload).unwrap();
        let frame = decode_frame(&framed).unwrap();
        prop_assert_eq!(frame.codec, name);
        prop_assert_eq!(&frame.desc, &desc);
        prop_assert_eq!(frame.payload, &payload[..]);
    }

    #[test]
    fn frame_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn frame_decoder_rejects_every_truncation(
        desc in arb_desc(),
        payload in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let framed = encode_frame("codec", &desc, &payload).unwrap();
        for cut in 0..framed.len() {
            prop_assert!(decode_frame(&framed[..cut]).is_err());
        }
    }

    #[test]
    fn chunked_frames_are_exact_inverses(
        desc in arb_desc(),
        block_elems in 1usize..64,
        name in "[a-z][a-z0-9-]{0,30}",
        seed in any::<u64>(),
    ) {
        let nblocks = desc.elements().div_ceil(block_elems);
        let mut x = seed | 1;
        let payloads: Vec<Vec<u8>> = (0..nblocks)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (0..(x % 40) as usize).map(|i| (x >> (i % 8)) as u8).collect()
            })
            .collect();
        let framed = encode_chunked_frame(&name, &desc, block_elems, &payloads).unwrap();
        let frame = decode_chunked_frame(&framed).unwrap();
        prop_assert_eq!(&frame.codec, &name);
        prop_assert_eq!(&frame.desc, &desc);
        prop_assert_eq!(frame.block_elems, block_elems);
        prop_assert_eq!(frame.payloads.len(), nblocks);
        for (a, b) in frame.payloads.iter().zip(payloads.iter()) {
            prop_assert_eq!(*a, &b[..]);
        }
    }

    #[test]
    fn chunked_frame_decoder_rejects_every_truncation_and_garbage(
        desc in arb_desc(),
        block_elems in 1usize..32,
        garbage in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        // Garbage never panics (typed error or — astronomically unlikely —
        // a structurally valid frame).
        let _ = decode_chunked_frame(&garbage);

        let nblocks = desc.elements().div_ceil(block_elems);
        let payloads: Vec<Vec<u8>> = (0..nblocks).map(|i| vec![i as u8; 3]).collect();
        let framed = encode_chunked_frame("codec", &desc, block_elems, &payloads).unwrap();
        for cut in 0..framed.len() {
            prop_assert!(decode_chunked_frame(&framed[..cut]).is_err());
        }
    }

    #[test]
    fn hostile_headers_yield_typed_errors_never_panics(
        magic_v2 in prop::bool::ANY,
        dim_bytes in prop::collection::vec(any::<u8>(), 8..64),
        plen in any::<u64>(),
    ) {
        // Hand-build a frame whose dims and payload length are hostile:
        // dims overflowing the element count, payload lengths beyond the
        // buffer. Both decoders must produce typed errors.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(if magic_v2 { b"FCB2" } else { b"FCB1" });
        bytes.push(1); // name len
        bytes.push(b'c');
        bytes.push(1); // precision double
        bytes.push(0); // domain HPC
        let ndims = (dim_bytes.len() / 8).min(255);
        bytes.push(ndims as u8);
        for c in dim_bytes.chunks_exact(8).take(ndims) {
            // Force huge dims: set the top bytes so products overflow.
            let mut d: [u8; 8] = c.try_into().unwrap();
            d[7] |= 0x80;
            bytes.extend_from_slice(&d);
        }
        bytes.extend_from_slice(&plen.to_le_bytes()); // block_elems or payload len
        bytes.extend_from_slice(&plen.to_le_bytes()[..4]); // block count-ish tail
        let r1 = decode_frame(&bytes);
        let r2 = decode_chunked_frame(&bytes);
        prop_assert!(r1.is_err());
        prop_assert!(r2.is_err());
        prop_assert!(matches!(r1.unwrap_err(), Error::Corrupt(_) | Error::BadDescriptor(_)));
        prop_assert!(matches!(r2.unwrap_err(), Error::Corrupt(_) | Error::BadDescriptor(_)));
    }

    #[test]
    fn pipeline_round_trips_any_block_thread_combination(
        desc in arb_desc(),
        block_elems in 1usize..64,
        threads in 1usize..5,
        seed in any::<u64>(),
    ) {
        let n = desc.byte_len();
        let mut x = seed | 1;
        let bytes: Vec<u8> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let data = FloatData::from_bytes(desc, bytes).unwrap();
        let registry = fcbench_core::CodecRegistry::new().with(Store);
        let p = Pipeline::new(&registry, "store")
            .unwrap()
            .block_elems(block_elems)
            .threads(threads);
        let frame = p.compress(&data).unwrap();
        let back = p.decompress(&frame).unwrap();
        prop_assert_eq!(back.bytes(), data.bytes());
        prop_assert_eq!(back.desc(), data.desc());
    }

    #[test]
    fn block_container_round_trips_any_shape(
        desc in arb_desc(),
        block_bytes in 8usize..512,
        seed in any::<u64>(),
    ) {
        let n = desc.byte_len();
        let mut x = seed | 1;
        let bytes: Vec<u8> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let data = FloatData::from_bytes(desc.clone(), bytes).unwrap();
        let bc = BlockCodec::new(Store, block_bytes);
        let payload = bc.compress(&data).unwrap();
        let back = bc.decompress(&payload, &desc).unwrap();
        prop_assert_eq!(back.bytes(), data.bytes());
    }

    #[test]
    fn block_decoder_never_panics_on_garbage(
        desc in arb_desc(),
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let bc = BlockCodec::new(Store, 64);
        if let Ok(out) = bc.decompress(&bytes, &desc) {
            prop_assert_eq!(out.bytes().len(), desc.byte_len());
        }
    }
}

//! Property tests for the core substrate: frames and block containers are
//! exact inverses, and their decoders reject malformed input gracefully.

use fcbench_core::blocks::BlockCodec;
use fcbench_core::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
use fcbench_core::frame::{decode_frame, encode_frame};
use fcbench_core::{Compressor, DataDesc, Domain, FloatData, Precision, Result};
use proptest::prelude::*;

/// Trivial store codec used to exercise container plumbing.
struct Store;

impl Compressor for Store {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "store",
            year: 2024,
            community: Community::General,
            class: CodecClass::Delta,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }
    fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
        Ok(data.bytes().to_vec())
    }
    fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
        FloatData::from_bytes(desc.clone(), payload.to_vec())
    }
}

fn arb_desc() -> impl Strategy<Value = DataDesc> {
    (
        prop::bool::ANY,
        prop::collection::vec(1usize..20, 1..4),
        0usize..4,
    )
        .prop_map(|(double, dims, dom)| {
            let precision = if double {
                Precision::Double
            } else {
                Precision::Single
            };
            DataDesc::new(precision, dims, Domain::ALL[dom]).expect("nonzero dims")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_are_exact_inverses(
        desc in arb_desc(),
        payload in prop::collection::vec(any::<u8>(), 0..500),
        name in "[a-z][a-z0-9-]{0,30}",
    ) {
        let framed = encode_frame(&name, &desc, &payload);
        let frame = decode_frame(&framed).unwrap();
        prop_assert_eq!(frame.codec, name);
        prop_assert_eq!(&frame.desc, &desc);
        prop_assert_eq!(frame.payload, &payload[..]);
    }

    #[test]
    fn frame_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn frame_decoder_rejects_every_truncation(
        desc in arb_desc(),
        payload in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let framed = encode_frame("codec", &desc, &payload);
        for cut in 0..framed.len() {
            prop_assert!(decode_frame(&framed[..cut]).is_err());
        }
    }

    #[test]
    fn block_container_round_trips_any_shape(
        desc in arb_desc(),
        block_bytes in 8usize..512,
        seed in any::<u64>(),
    ) {
        let n = desc.byte_len();
        let mut x = seed | 1;
        let bytes: Vec<u8> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let data = FloatData::from_bytes(desc.clone(), bytes).unwrap();
        let bc = BlockCodec::new(Store, block_bytes);
        let payload = bc.compress(&data).unwrap();
        let back = bc.decompress(&payload, &desc).unwrap();
        prop_assert_eq!(back.bytes(), data.bytes());
    }

    #[test]
    fn block_decoder_never_panics_on_garbage(
        desc in arb_desc(),
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let bc = BlockCodec::new(Store, 64);
        if let Ok(out) = bc.decompress(&bytes, &desc) {
            prop_assert_eq!(out.bytes().len(), desc.byte_len());
        }
    }
}

//! The floating-point data model: precision, domain, shape, and the raw
//! byte container every codec consumes and produces.
//!
//! FCBench evaluates IEEE-754 single- and double-precision arrays with an
//! optional multidimensional extent (Table 3 of the paper). Codecs treat the
//! payload as little-endian words; the [`FloatData`] container guarantees the
//! byte length is consistent with the descriptor.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// IEEE-754 precision of the elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit `f32` ("S" in the paper's tables).
    Single,
    /// 64-bit `f64` ("D" in the paper's tables).
    Double,
}

impl Precision {
    /// Size of one element in bytes (4 or 8).
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// Size of one element in bits (32 or 64).
    #[inline]
    pub const fn bits(self) -> usize {
        self.bytes() * 8
    }

    /// Short label used in reports ("fp32" / "fp64").
    pub const fn label(self) -> &'static str {
        match self {
            Precision::Single => "fp32",
            Precision::Double => "fp64",
        }
    }
}

/// Application domain of a dataset (Table 3 groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Domain {
    /// Scientific-simulation data (SDRBench et al.).
    Hpc,
    /// Time-series data (sensors, markets, traffic).
    TimeSeries,
    /// Observation data (HDR photos, telescope images).
    Observation,
    /// Database-transaction data (TPC benchmarks).
    Database,
}

impl Domain {
    /// All four domains in the paper's presentation order.
    pub const ALL: [Domain; 4] = [
        Domain::Hpc,
        Domain::TimeSeries,
        Domain::Observation,
        Domain::Database,
    ];

    /// Short label used in the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            Domain::Hpc => "HPC",
            Domain::TimeSeries => "TS",
            Domain::Observation => "OBS",
            Domain::Database => "DB",
        }
    }
}

/// Shape and type description of a floating-point dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataDesc {
    /// Element precision.
    pub precision: Precision,
    /// Extent per dimension, slowest-varying first (e.g. `[130, 514, 1026]`).
    /// A 1-D array has a single entry.
    pub dims: Vec<usize>,
    /// Source domain; used only for grouping in reports.
    pub domain: Domain,
}

impl DataDesc {
    /// Create a descriptor, validating that no dimension is zero and that
    /// the total byte length fits in `usize` (a decoder handed hostile dims
    /// must get a typed error, not an arithmetic overflow).
    pub fn new(precision: Precision, dims: Vec<usize>, domain: Domain) -> Result<Self> {
        if dims.is_empty() {
            return Err(Error::BadDescriptor("dims must not be empty".into()));
        }
        if dims.contains(&0) {
            return Err(Error::BadDescriptor(format!("zero dimension in {dims:?}")));
        }
        let elements = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| Error::BadDescriptor(format!("element count overflows: {dims:?}")))?;
        if elements.checked_mul(precision.bytes()).is_none() {
            return Err(Error::BadDescriptor(format!(
                "byte length overflows: {elements} elements of {} bytes",
                precision.bytes()
            )));
        }
        Ok(DataDesc {
            precision,
            dims,
            domain,
        })
    }

    /// Total number of elements (product of dims).
    #[inline]
    pub fn elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Total payload size in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.elements() * self.precision.bytes()
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// The same data viewed as a flat 1-D array — used for the paper's
    /// §6.1.5 experiment ("Compression is 1-d friendly", Table 9).
    pub fn flatten_1d(&self) -> DataDesc {
        DataDesc {
            precision: self.precision,
            dims: vec![self.elements()],
            domain: self.domain,
        }
    }
}

/// An owned floating-point array: descriptor plus little-endian payload bytes.
///
/// The container deliberately stores raw bytes rather than `Vec<f32>`/`Vec<f64>`
/// so that losslessness can be asserted byte-for-byte (NaN payloads included)
/// and codecs can reinterpret words without transmutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloatData {
    desc: DataDesc,
    bytes: Vec<u8>,
}

impl FloatData {
    /// Wrap raw little-endian bytes; the length must match the descriptor.
    pub fn from_bytes(desc: DataDesc, bytes: Vec<u8>) -> Result<Self> {
        if bytes.len() != desc.byte_len() {
            return Err(Error::BadDescriptor(format!(
                "payload is {} bytes but descriptor implies {}",
                bytes.len(),
                desc.byte_len()
            )));
        }
        Ok(FloatData { desc, bytes })
    }

    /// Build single-precision data from an `f32` slice.
    pub fn from_f32(values: &[f32], dims: Vec<usize>, domain: Domain) -> Result<Self> {
        let desc = DataDesc::new(Precision::Single, dims, domain)?;
        if desc.elements() != values.len() {
            return Err(Error::BadDescriptor(format!(
                "{} values but dims imply {}",
                values.len(),
                desc.elements()
            )));
        }
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        Ok(FloatData { desc, bytes })
    }

    /// Build double-precision data from an `f64` slice.
    pub fn from_f64(values: &[f64], dims: Vec<usize>, domain: Domain) -> Result<Self> {
        let desc = DataDesc::new(Precision::Double, dims, domain)?;
        if desc.elements() != values.len() {
            return Err(Error::BadDescriptor(format!(
                "{} values but dims imply {}",
                values.len(),
                desc.elements()
            )));
        }
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        Ok(FloatData { desc, bytes })
    }

    /// The descriptor.
    #[inline]
    pub fn desc(&self) -> &DataDesc {
        &self.desc
    }

    /// Raw little-endian payload.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume into the raw payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Number of elements.
    #[inline]
    pub fn elements(&self) -> usize {
        self.desc.elements()
    }

    /// Decode the payload into `f32` values. Errors if double-precision.
    pub fn to_f32_vec(&self) -> Result<Vec<f32>> {
        if self.desc.precision != Precision::Single {
            return Err(Error::BadDescriptor("data is not single-precision".into()));
        }
        Ok(self
            .bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Decode the payload into `f64` values. Errors if single-precision.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>> {
        if self.desc.precision != Precision::Double {
            return Err(Error::BadDescriptor("data is not double-precision".into()));
        }
        Ok(self
            .bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// The payload reinterpreted as little-endian `u32` words
    /// (single-precision bit patterns).
    pub fn as_u32_words(&self) -> Result<Vec<u32>> {
        if self.desc.precision != Precision::Single {
            return Err(Error::BadDescriptor("data is not single-precision".into()));
        }
        Ok(self
            .bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// The payload reinterpreted as little-endian `u64` words
    /// (double-precision bit patterns).
    pub fn as_u64_words(&self) -> Result<Vec<u64>> {
        if self.desc.precision != Precision::Double {
            return Err(Error::BadDescriptor("data is not double-precision".into()));
        }
        Ok(self
            .bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Rebuild single-precision data from bit-pattern words.
    pub fn from_u32_words(words: &[u32], dims: Vec<usize>, domain: Domain) -> Result<Self> {
        let desc = DataDesc::new(Precision::Single, dims, domain)?;
        if desc.elements() != words.len() {
            return Err(Error::BadDescriptor(format!(
                "{} words but dims imply {}",
                words.len(),
                desc.elements()
            )));
        }
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Ok(FloatData { desc, bytes })
    }

    /// Rebuild double-precision data from bit-pattern words.
    pub fn from_u64_words(words: &[u64], dims: Vec<usize>, domain: Domain) -> Result<Self> {
        let desc = DataDesc::new(Precision::Double, dims, domain)?;
        if desc.elements() != words.len() {
            return Err(Error::BadDescriptor(format!(
                "{} words but dims imply {}",
                words.len(),
                desc.elements()
            )));
        }
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Ok(FloatData { desc, bytes })
    }

    /// A copy of this data re-described as 1-D (same bytes).
    pub fn flattened_1d(&self) -> FloatData {
        FloatData {
            desc: self.desc.flatten_1d(),
            bytes: self.bytes.clone(),
        }
    }

    /// A minimal valid container intended as a reusable target for
    /// [`Compressor::decompress_into`](crate::codec::Compressor::decompress_into):
    /// one single-precision zero. Each `decompress_into` call replaces both
    /// descriptor and payload, growing the byte buffer once and then reusing
    /// its capacity.
    pub fn scratch() -> FloatData {
        FloatData {
            desc: DataDesc {
                precision: Precision::Single,
                dims: vec![1],
                domain: Domain::Hpc,
            },
            bytes: vec![0u8; 4],
        }
    }

    /// Rebuild this container in place: clear the payload (keeping its
    /// capacity), let `fill` append exactly `desc.byte_len()` bytes, then
    /// install `desc`. This is the writer side of the zero-copy decode path —
    /// codecs emit decoded words straight into the reused buffer.
    ///
    /// The descriptor is only cloned when it differs from the current one, so
    /// steady-state reuse with a fixed shape performs no heap allocation
    /// beyond what `fill` itself does.
    ///
    /// On error (from `fill`, or a length mismatch) the container is restored
    /// to a valid state for its previous descriptor; its contents are
    /// unspecified.
    pub fn refill(
        &mut self,
        desc: &DataDesc,
        fill: impl FnOnce(&mut Vec<u8>) -> Result<()>,
    ) -> Result<()> {
        self.bytes.clear();
        let result = fill(&mut self.bytes).and_then(|()| {
            if self.bytes.len() != desc.byte_len() {
                return Err(Error::BadDescriptor(format!(
                    "refill produced {} bytes but descriptor implies {}",
                    self.bytes.len(),
                    desc.byte_len()
                )));
            }
            Ok(())
        });
        match result {
            Ok(()) => {
                if self.desc != *desc {
                    self.desc = desc.clone();
                }
                Ok(())
            }
            Err(e) => {
                // Keep the len-matches-desc invariant for the old descriptor.
                self.bytes.resize(self.desc.byte_len(), 0);
                Err(e)
            }
        }
    }

    /// [`refill`](Self::refill) from an existing byte slice (one memcpy, no
    /// allocation once the buffer has capacity).
    pub fn refill_from_slice(&mut self, desc: &DataDesc, bytes: &[u8]) -> Result<()> {
        self.refill(desc, |buf| {
            buf.extend_from_slice(bytes);
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::Single.bytes(), 4);
        assert_eq!(Precision::Double.bytes(), 8);
        assert_eq!(Precision::Single.bits(), 32);
        assert_eq!(Precision::Double.bits(), 64);
        assert_eq!(Precision::Single.label(), "fp32");
        assert_eq!(Precision::Double.label(), "fp64");
    }

    #[test]
    fn desc_rejects_bad_dims() {
        assert!(DataDesc::new(Precision::Single, vec![], Domain::Hpc).is_err());
        assert!(DataDesc::new(Precision::Single, vec![4, 0], Domain::Hpc).is_err());
    }

    #[test]
    fn desc_element_math() {
        let d = DataDesc::new(Precision::Double, vec![130, 514, 1026], Domain::Hpc).unwrap();
        assert_eq!(d.elements(), 130 * 514 * 1026);
        assert_eq!(d.byte_len(), d.elements() * 8);
        assert_eq!(d.ndims(), 3);
        let flat = d.flatten_1d();
        assert_eq!(flat.dims, vec![130 * 514 * 1026]);
        assert_eq!(flat.byte_len(), d.byte_len());
    }

    #[test]
    fn f32_round_trip_preserves_bits() {
        let vals = [1.5f32, -0.0, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE];
        let fd = FloatData::from_f32(&vals, vec![5], Domain::TimeSeries).unwrap();
        assert_eq!(fd.elements(), 5);
        let words = fd.as_u32_words().unwrap();
        assert_eq!(words[1], 0x8000_0000); // -0.0 bit pattern survives
        let back = fd.to_f32_vec().unwrap();
        for (a, b) in vals.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f64_round_trip_preserves_bits() {
        let vals = [std::f64::consts::PI, -0.0, f64::NAN, 5e-324];
        let fd = FloatData::from_f64(&vals, vec![2, 2], Domain::Database).unwrap();
        let back = fd.to_f64_vec().unwrap();
        for (a, b) in vals.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn word_round_trips() {
        let words: Vec<u32> = (0..16).map(|i| i * 0x0101_0101).collect();
        let fd = FloatData::from_u32_words(&words, vec![4, 4], Domain::Observation).unwrap();
        assert_eq!(fd.as_u32_words().unwrap(), words);

        let dwords: Vec<u64> = (0..8).map(|i| i * 0x0101_0101_0101_0101).collect();
        let fd = FloatData::from_u64_words(&dwords, vec![8], Domain::Hpc).unwrap();
        assert_eq!(fd.as_u64_words().unwrap(), dwords);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(FloatData::from_f32(&[1.0, 2.0], vec![3], Domain::Hpc).is_err());
        let desc = DataDesc::new(Precision::Single, vec![3], Domain::Hpc).unwrap();
        assert!(FloatData::from_bytes(desc, vec![0u8; 11]).is_err());
    }

    #[test]
    fn precision_mismatch_rejected() {
        let fd = FloatData::from_f32(&[1.0], vec![1], Domain::Hpc).unwrap();
        assert!(fd.to_f64_vec().is_err());
        assert!(fd.as_u64_words().is_err());
        let fd = FloatData::from_f64(&[1.0], vec![1], Domain::Hpc).unwrap();
        assert!(fd.to_f32_vec().is_err());
        assert!(fd.as_u32_words().is_err());
    }

    #[test]
    fn desc_rejects_overflowing_dims() {
        assert!(DataDesc::new(Precision::Double, vec![usize::MAX, 2], Domain::Hpc).is_err());
        assert!(DataDesc::new(Precision::Double, vec![usize::MAX / 4], Domain::Hpc).is_err());
    }

    #[test]
    fn scratch_is_valid_and_refillable() {
        let mut s = FloatData::scratch();
        assert_eq!(s.bytes().len(), s.desc().byte_len());

        let desc = DataDesc::new(Precision::Double, vec![3], Domain::TimeSeries).unwrap();
        s.refill_from_slice(&desc, &[7u8; 24]).unwrap();
        assert_eq!(s.desc(), &desc);
        assert_eq!(s.bytes(), &[7u8; 24]);

        // Wrong length is rejected and the container stays valid.
        let err = s.refill_from_slice(&desc, &[1u8; 5]).unwrap_err();
        assert!(matches!(err, Error::BadDescriptor(_)));
        assert_eq!(s.bytes().len(), s.desc().byte_len());

        // A failing fill closure propagates and restores the invariant.
        let err = s
            .refill(&desc, |_| Err(Error::Corrupt("synthetic".into())))
            .unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)));
        assert_eq!(s.bytes().len(), s.desc().byte_len());
    }

    #[test]
    fn domain_labels() {
        assert_eq!(Domain::Hpc.label(), "HPC");
        assert_eq!(Domain::TimeSeries.label(), "TS");
        assert_eq!(Domain::Observation.label(), "OBS");
        assert_eq!(Domain::Database.label(), "DB");
        assert_eq!(Domain::ALL.len(), 4);
    }
}

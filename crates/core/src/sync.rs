//! Synchronization primitives for the execution engine, swappable for a
//! deterministic model-checking runtime.
//!
//! Production code in this crate (notably [`pool`](crate::pool)) imports
//! `Mutex`/`Condvar`/`AtomicU64`/`thread` from here instead of `std::sync`.
//! In a normal build these are plain re-exports of the `std` types — zero
//! cost, zero behavior change. With the `model-check` feature enabled the
//! same names resolve to instrumented primitives from the `model` module that hand
//! every blocking decision to a cooperative scheduler, letting
//! `fcbench-analyze check-pool` exhaustively explore thread interleavings
//! of the pool's blocking protocol and replay any failing schedule from a
//! seed.
//!
//! The instrumented primitives only participate in model checking on
//! threads registered with an active exploration; anywhere else they
//! delegate to the real `std` primitives, so enabling the feature cannot
//! change the behavior of code that is not under the model checker.
//!
//! # Poison policy
//!
//! There is exactly one lock-poisoning policy for the engine, implemented
//! by [`lock`] and [`wait`] and shared by the model runtime: **recover the
//! guard**. The engine's invariants are maintained under its locks by
//! straight-line code, and worker panics are caught *before* they can
//! unwind through a guard (see `worker_loop` in [`pool`](crate::pool)), so
//! a poisoned mutex only ever reflects a panic in a caller-supplied collect
//! closure — the protected state is still consistent and the right move is
//! to keep serving. The worker-panic regression tests in `pool` hold this
//! policy in place.

#[cfg(feature = "model-check")]
pub mod model;

#[cfg(not(feature = "model-check"))]
pub use std::sync::atomic::AtomicU64;
#[cfg(not(feature = "model-check"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

/// Thread spawn/join used by the engine: `std::thread` in normal builds,
/// scheduler-registered tasks under the model checker.
#[cfg(not(feature = "model-check"))]
pub mod thread {
    pub use std::thread::{Builder, JoinHandle};
}

#[cfg(feature = "model-check")]
pub use model::thread;
#[cfg(feature = "model-check")]
pub use model::{AtomicU64, Condvar, Mutex, MutexGuard};

/// Acquire `m` under the engine's single poison policy (see the
/// [module docs](self)): a poisoned lock is recovered, not propagated.
pub fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

/// Block on `cv` releasing `guard`, recovering a poisoned reacquired lock
/// under the same policy as [`lock`].
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

#![cfg(feature = "model-check")]
//! Deterministic concurrency model checker: instrumented sync primitives
//! plus a bounded-DFS schedule explorer.
//!
//! # How it works
//!
//! An [`Execution`] runs one scenario (a closure using the
//! [`sync`](crate::sync) primitives) on real OS threads but with **at most
//! one runnable task at a time**: every visible operation — mutex acquire,
//! condvar wait/notify, atomic access, join — is a *scheduling point* where
//! the running task hands control to a scheduler that picks who runs next.
//! Whenever more than one task could run (or more than one condvar waiter
//! could be woken), that pick is a recorded *decision*; the sequence of
//! decisions fully determines the interleaving, so a `Vec<u32>` of choices
//! is both a replayable seed and a DFS tree path.
//!
//! [`explore`] enumerates schedules depth-first: run once following a
//! choice prefix (defaulting to "keep the current task running" beyond it),
//! record every decision point passed, then backtrack to the deepest point
//! with an untried alternative. Alternatives that would exceed the
//! configured *preemption bound* (switching away from a still-runnable
//! task) are pruned — the classic CHESS result: almost all real concurrency
//! bugs manifest within two preemptions.
//!
//! Failures surface deterministically:
//! - **Deadlock / lost wakeup** — every live task is blocked. The model has
//!   no spurious wakeups and notifying an empty waiter set is a no-op, so a
//!   notify that races ahead of its wait *stays* lost and the wait blocks
//!   forever, which the scheduler reports the moment no task can run.
//! - **Assertion failures / panics** in scenario code are caught at task
//!   exit and reported with the schedule that produced them.
//!
//! Both carry the decision trace as a seed; re-running with
//! `ExploreOpts::replay(seed)` reproduces the exact interleaving.
//!
//! Registration is per-thread: tasks spawned via [`thread::Builder`] inside
//! an execution join the cooperative scheduler, while unregistered threads
//! (anything outside `explore`) fall through to the real `std` primitives.
//! A registered task that is *unwinding* (scenario assertion or scheduler
//! abort) also leaves the cooperative protocol — its remaining cleanup runs
//! in a degraded mode that keeps mutual exclusion via the real locks and
//! keeps waking cooperative tasks, but never blocks on the baton and never
//! panics again (a second panic during unwind would abort the process).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::io;
use std::panic;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};
use std::sync::{
    Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once,
    PoisonError,
};
use std::time::{Duration, Instant};

type TaskId = usize;

/// Sentinel for "no task holds the baton" (only while every task is
/// blocked-or-detached and a degraded thread is expected to make progress).
const NO_TASK: TaskId = usize::MAX;

/// Payload of the panic used to tear down tasks of a failed execution.
struct AbortExecution;

thread_local! {
    static CURRENT: RefCell<Option<TaskHandle>> = const { RefCell::new(None) };
    /// Set when this task is being torn down by the scheduler (as opposed
    /// to failing an assertion of its own).
    static ABORTED: Cell<bool> = const { Cell::new(false) };
}

#[derive(Clone)]
struct TaskHandle {
    exec: Arc<Execution>,
    id: TaskId,
}

/// How the calling thread relates to the model runtime right now.
enum OpMode {
    /// Not part of any execution: delegate to real `std` primitives.
    Unregistered,
    /// Registered and running normally: full cooperative scheduling.
    Model(TaskHandle),
    /// Registered but unwinding: keep bookkeeping consistent, never block
    /// on the baton, never panic.
    Degraded(TaskHandle),
}

fn op_mode() -> OpMode {
    match CURRENT.with(|c| c.borrow().clone()) {
        None => OpMode::Unregistered,
        Some(h) => {
            if std::thread::panicking() {
                h.exec.detach(h.id);
                OpMode::Degraded(h)
            } else {
                OpMode::Model(h)
            }
        }
    }
}

fn abort_task() -> ! {
    ABORTED.with(|a| a.set(true));
    panic::panic_any(AbortExecution)
}

fn next_object_id() -> u64 {
    static NEXT: StdAtomicU64 = StdAtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TaskStatus {
    Runnable,
    BlockedLock(u64),
    BlockedCv(u64),
    BlockedJoin(TaskId),
    /// Unwinding outside the cooperative protocol; alive but unscheduled.
    Detached,
    Finished,
}

/// One recorded nondeterministic decision.
#[derive(Clone, Copy, Debug)]
struct ChoicePoint {
    /// Number of alternatives that existed (>= 2, singletons aren't
    /// recorded).
    ncand: u32,
    /// Which one this run took (index into the canonical candidate order).
    chosen: u32,
    /// Whether taking an alternative other than 0 costs a preemption (the
    /// yielding task was still runnable and choice 0 keeps it running).
    preemptive: bool,
}

struct ExecState {
    tasks: Vec<TaskStatus>,
    names: Vec<String>,
    current: TaskId,
    /// Mutex object id -> owning task, present iff owned.
    lock_owner: HashMap<u64, TaskId>,
    /// Condvar object id -> waiting tasks in wait order.
    cv_waiters: HashMap<u64, Vec<TaskId>>,
    /// Prescribed choice prefix; beyond it the default (0) is taken.
    prefix: Vec<u32>,
    trace: Vec<ChoicePoint>,
    steps: u64,
    step_limit: u64,
    failure: Option<String>,
    done: bool,
}

impl ExecState {
    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
    }

    fn describe_tasks(&self) -> String {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{} [{}]: {:?}", i, self.names[i], t))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

struct Execution {
    state: StdMutex<ExecState>,
    /// Tasks park here for their turn; also signaled on completion/failure.
    turn: StdCondvar,
}

impl Execution {
    fn new(prefix: Vec<u32>, step_limit: u64) -> Self {
        Execution {
            state: StdMutex::new(ExecState {
                tasks: Vec::new(),
                names: Vec::new(),
                current: 0,
                lock_owner: HashMap::new(),
                cv_waiters: HashMap::new(),
                prefix,
                trace: Vec::new(),
                steps: 0,
                step_limit,
                failure: None,
                done: false,
            }),
            turn: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register_task(&self, name: String) -> TaskId {
        let mut st = self.lock_state();
        st.tasks.push(TaskStatus::Runnable);
        st.names.push(name);
        st.tasks.len() - 1
    }

    /// Record a decision with `ncand` alternatives, returning the index
    /// taken. Singleton "decisions" are free and unrecorded.
    fn pick(&self, st: &mut ExecState, ncand: u32, preemptive: bool, record: bool) -> u32 {
        if ncand <= 1 {
            return 0;
        }
        if !record {
            return 0;
        }
        let k = st.trace.len();
        let chosen = if k < st.prefix.len() {
            st.prefix[k].min(ncand - 1)
        } else {
            0
        };
        st.trace.push(ChoicePoint {
            ncand,
            chosen,
            preemptive,
        });
        chosen
    }

    /// Choose who holds the baton next. `me` is the task reaching the
    /// scheduling point (its status must already be updated).
    fn choose_next(&self, st: &mut ExecState, me: TaskId, record: bool) {
        if st.failure.is_some() || st.done {
            self.turn.notify_all();
            return;
        }
        st.steps += 1;
        if st.steps > st.step_limit {
            st.fail(format!(
                "step limit ({}) exceeded — livelock or runaway schedule",
                st.step_limit
            ));
            self.turn.notify_all();
            return;
        }
        // Canonical candidate order: `me` first if still runnable (so choice
        // 0 = "continue, no preemption"), then everyone else by task id.
        let me_runnable = me != NO_TASK && matches!(st.tasks.get(me), Some(TaskStatus::Runnable));
        let mut cands: Vec<TaskId> = Vec::new();
        if me_runnable {
            cands.push(me);
        }
        for (id, t) in st.tasks.iter().enumerate() {
            if id != me && matches!(t, TaskStatus::Runnable) {
                cands.push(id);
            }
        }
        if cands.is_empty() {
            if st.tasks.iter().all(|t| matches!(t, TaskStatus::Finished)) {
                st.done = true;
            } else if st.tasks.iter().any(|t| matches!(t, TaskStatus::Detached)) {
                // A detached (unwinding) thread is alive outside the baton
                // protocol and will move things along; park the baton.
                st.current = NO_TASK;
            } else {
                let report = st.describe_tasks();
                st.fail(format!("deadlock: every live task is blocked — {report}"));
            }
            self.turn.notify_all();
            return;
        }
        let chosen = self.pick(&mut *st, cands.len() as u32, me_runnable, record);
        st.current = cands[chosen as usize];
        self.turn.notify_all();
    }

    /// Park until it's `me`'s turn. Strict mode aborts the task when the
    /// execution has failed; degraded mode gives up after a real-time grace
    /// period instead (returning `false`).
    fn wait_for_turn(
        &self,
        mut st: StdMutexGuard<'_, ExecState>,
        me: TaskId,
        strict: bool,
    ) -> bool {
        let give_up_at = Instant::now() + Duration::from_secs(5);
        loop {
            if strict && st.failure.is_some() {
                drop(st);
                abort_task();
            }
            if st.current == me && matches!(st.tasks[me], TaskStatus::Runnable) {
                return true;
            }
            if strict {
                st = self.turn.wait(st).unwrap_or_else(PoisonError::into_inner);
            } else {
                if Instant::now() >= give_up_at {
                    return false;
                }
                let (g, _) = self
                    .turn
                    .wait_timeout(st, Duration::from_millis(20))
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
        }
    }

    /// A scheduling point before a visible operation; `me` stays runnable.
    fn op_point(&self, me: TaskId) {
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            abort_task();
        }
        self.choose_next(&mut st, me, true);
        self.wait_for_turn(st, me, true);
    }

    /// Take the baton away from a task that started unwinding.
    fn detach(&self, me: TaskId) {
        let mut st = self.lock_state();
        if matches!(st.tasks[me], TaskStatus::Detached | TaskStatus::Finished) {
            return;
        }
        st.tasks[me] = TaskStatus::Detached;
        if st.current == me {
            self.choose_next(&mut st, NO_TASK, false);
        }
    }

    /// Acquire model ownership of mutex `mid`. Returns `true` if ownership
    /// was taken (the guard must release it); degraded mode may give up and
    /// fall back to the real lock alone.
    fn lock_acquire(&self, me: TaskId, mid: u64, strict: bool, yield_first: bool) -> bool {
        if strict && yield_first {
            self.op_point(me);
        }
        loop {
            let mut st = self.lock_state();
            if strict && st.failure.is_some() {
                drop(st);
                abort_task();
            }
            if let std::collections::hash_map::Entry::Vacant(e) = st.lock_owner.entry(mid) {
                e.insert(me);
                return true;
            }
            if strict {
                st.tasks[me] = TaskStatus::BlockedLock(mid);
                self.choose_next(&mut st, me, true);
                self.wait_for_turn(st, me, true);
            } else {
                // Degraded: wait (bounded, off-baton) for the owner to
                // release; on timeout trust the real mutex for exclusion.
                let give_up_at = Instant::now() + Duration::from_secs(5);
                loop {
                    if let std::collections::hash_map::Entry::Vacant(e) = st.lock_owner.entry(mid) {
                        e.insert(me);
                        return true;
                    }
                    if Instant::now() >= give_up_at {
                        return false;
                    }
                    let (g, _) = self
                        .turn
                        .wait_timeout(st, Duration::from_millis(20))
                        .unwrap_or_else(PoisonError::into_inner);
                    st = g;
                }
            }
        }
    }

    /// Release model ownership of `mid` and make contenders runnable.
    /// Release is not itself a yield point: any interleaving it could
    /// expose is exposed by the contenders' own acquire points.
    fn lock_release(&self, me: TaskId, mid: u64) {
        let mut st = self.lock_state();
        if st.lock_owner.get(&mid) == Some(&me) {
            st.lock_owner.remove(&mid);
        }
        let mut woke = false;
        for t in st.tasks.iter_mut() {
            if *t == TaskStatus::BlockedLock(mid) {
                *t = TaskStatus::Runnable;
                woke = true;
            }
        }
        if woke && st.current == NO_TASK {
            self.choose_next(&mut st, NO_TASK, false);
        } else if woke {
            self.turn.notify_all();
        }
    }

    /// Atomically enqueue on condvar `cvid`, release mutex `mid`, and block
    /// until notified. The caller reacquires the mutex afterwards.
    fn cv_wait(&self, me: TaskId, cvid: u64, mid: u64) {
        let mut st = self.lock_state();
        if st.failure.is_some() {
            drop(st);
            abort_task();
        }
        st.cv_waiters.entry(cvid).or_default().push(me);
        if st.lock_owner.get(&mid) == Some(&me) {
            st.lock_owner.remove(&mid);
        }
        for t in st.tasks.iter_mut() {
            if *t == TaskStatus::BlockedLock(mid) {
                *t = TaskStatus::Runnable;
            }
        }
        st.tasks[me] = TaskStatus::BlockedCv(cvid);
        self.choose_next(&mut st, me, true);
        self.wait_for_turn(st, me, true);
    }

    /// Wake one waiter (a recorded decision when several wait) or all.
    fn cv_notify(&self, me: TaskId, cvid: u64, all: bool, strict: bool) {
        if strict {
            self.op_point(me);
        }
        let mut st = self.lock_state();
        let waiters = st.cv_waiters.remove(&cvid).unwrap_or_default();
        if waiters.is_empty() {
            // Nobody parked: the notification is lost, exactly like std.
            return;
        }
        if all {
            for w in waiters {
                st.tasks[w] = TaskStatus::Runnable;
            }
        } else {
            let mut waiters = waiters;
            // Which waiter wakes is genuine nondeterminism: a decision
            // point, but never a preemption (the notifier keeps running).
            let idx = self.pick(&mut st, waiters.len() as u32, false, strict);
            let w = waiters.remove(idx as usize);
            st.tasks[w] = TaskStatus::Runnable;
            if !waiters.is_empty() {
                st.cv_waiters.insert(cvid, waiters);
            }
        }
        if st.current == NO_TASK {
            self.choose_next(&mut st, NO_TASK, false);
        } else {
            self.turn.notify_all();
        }
    }

    /// Block until `target` finishes.
    fn join_task(&self, me: TaskId, target: TaskId, strict: bool) {
        loop {
            let mut st = self.lock_state();
            if strict && st.failure.is_some() {
                drop(st);
                abort_task();
            }
            if matches!(st.tasks[target], TaskStatus::Finished) {
                return;
            }
            if strict {
                st.tasks[me] = TaskStatus::BlockedJoin(target);
                self.choose_next(&mut st, me, true);
                self.wait_for_turn(st, me, true);
            } else if !self.wait_for_turn_degraded_until_finished(st, target) {
                return; // grace period expired; fall through to real join
            }
        }
    }

    fn wait_for_turn_degraded_until_finished(
        &self,
        mut st: StdMutexGuard<'_, ExecState>,
        target: TaskId,
    ) -> bool {
        let give_up_at = Instant::now() + Duration::from_secs(5);
        loop {
            if matches!(st.tasks[target], TaskStatus::Finished) {
                return true;
            }
            if Instant::now() >= give_up_at {
                return false;
            }
            let (g, _) = self
                .turn
                .wait_timeout(st, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// Mark `me` finished, report a failure if it died of a real panic,
    /// wake joiners, and pass the baton. Called from every task's exit
    /// guard; never blocks.
    fn finish_task(&self, me: TaskId, panicked: Option<String>) {
        let mut st = self.lock_state();
        if let Some(msg) = panicked {
            let seed = encode_schedule(&st.trace);
            let name = st.names[me].clone();
            st.fail(format!(
                "task {me} [{name}] panicked: {msg} (schedule: {seed})"
            ));
        }
        st.tasks[me] = TaskStatus::Finished;
        for t in st.tasks.iter_mut() {
            if *t == TaskStatus::BlockedJoin(me) {
                *t = TaskStatus::Runnable;
            }
        }
        let record = st.failure.is_none();
        self.choose_next(&mut st, me, record);
    }
}

/// Drops at task exit: reports panics (except scheduler-driven aborts) and
/// always marks the task finished so joiners and the driver can proceed.
struct FinishGuard {
    exec: Arc<Execution>,
    id: TaskId,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        let panicked = if std::thread::panicking() && !ABORTED.with(|a| a.get()) {
            Some("scenario assertion or panic".to_string())
        } else {
            None
        };
        self.exec.finish_task(self.id, panicked);
    }
}

// ---------------------------------------------------------------------------
// Instrumented primitives
// ---------------------------------------------------------------------------

/// Model-aware mutex; same API surface as [`std::sync::Mutex`] (the subset
/// the engine uses).
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Mutex {
            id: next_object_id(),
            inner: StdMutex::new(t),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match op_mode() {
            OpMode::Unregistered => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
            OpMode::Model(h) => {
                h.exec.lock_acquire(h.id, self.id, true, true);
                let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: Some(h),
                })
            }
            OpMode::Degraded(h) => {
                let owned = h.exec.lock_acquire(h.id, self.id, false, false);
                let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: owned.then_some(h),
                })
            }
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases model ownership after the real lock.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: Option<TaskHandle>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real lock first (so a woken contender can take it immediately),
        // then model ownership.
        self.inner = None;
        if let Some(h) = self.model.take() {
            h.exec.lock_release(h.id, self.lock.id);
        }
    }
}

/// Model-aware condition variable paired with [`Mutex`].
pub struct Condvar {
    id: u64,
    inner: StdCondvar,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar {
            id: next_object_id(),
            inner: StdCondvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        match op_mode() {
            OpMode::Unregistered => {
                let std_guard = guard.inner.take().expect("guard holds the lock");
                match self.inner.wait(std_guard) {
                    Ok(g) => {
                        guard.inner = Some(g);
                        Ok(guard)
                    }
                    Err(p) => {
                        guard.inner = Some(p.into_inner());
                        Err(PoisonError::new(guard))
                    }
                }
            }
            OpMode::Model(h) => {
                // Release both layers, park on the model waiter list, then
                // reacquire like any contender. Defuse the guard so an
                // abort while parked doesn't double-release.
                guard.inner = None;
                guard.model = None;
                drop(guard);
                h.exec.cv_wait(h.id, self.id, lock.id);
                h.exec.lock_acquire(h.id, lock.id, true, false);
                let g = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: Some(h),
                })
            }
            OpMode::Degraded(_) => {
                // Spurious wakeup: legal per the contract, and the only
                // non-blocking option while unwinding. Callers loop on
                // their predicate. Brief sleep so predicate loops that
                // depend on other tasks' progress don't spin hot.
                std::thread::sleep(Duration::from_micros(100));
                Ok(guard)
            }
        }
    }

    pub fn notify_one(&self) {
        match op_mode() {
            OpMode::Unregistered => self.inner.notify_one(),
            OpMode::Model(h) => h.exec.cv_notify(h.id, self.id, false, true),
            OpMode::Degraded(h) => h.exec.cv_notify(h.id, self.id, false, false),
        }
    }

    pub fn notify_all(&self) {
        match op_mode() {
            OpMode::Unregistered => self.inner.notify_all(),
            OpMode::Model(h) => h.exec.cv_notify(h.id, self.id, true, true),
            OpMode::Degraded(h) => h.exec.cv_notify(h.id, self.id, true, false),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Model-aware `AtomicU64`: every access is a scheduling point, the value
/// itself lives in a real atomic.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    v: StdAtomicU64,
}

impl AtomicU64 {
    pub fn new(v: u64) -> Self {
        AtomicU64 {
            v: StdAtomicU64::new(v),
        }
    }

    pub fn load(&self, order: Ordering) -> u64 {
        if let OpMode::Model(h) = op_mode() {
            h.exec.op_point(h.id);
        }
        self.v.load(order)
    }

    pub fn store(&self, val: u64, order: Ordering) {
        if let OpMode::Model(h) = op_mode() {
            h.exec.op_point(h.id);
        }
        self.v.store(val, order)
    }

    pub fn fetch_add(&self, val: u64, order: Ordering) -> u64 {
        if let OpMode::Model(h) = op_mode() {
            h.exec.op_point(h.id);
        }
        self.v.fetch_add(val, order)
    }
}

/// Model-aware thread spawn/join.
pub mod thread {
    use super::*;

    /// Drop-in for [`std::thread::Builder`]: spawning from a registered
    /// task registers the child with the same execution.
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Self {
            Builder { name: None }
        }

        #[must_use]
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let mut b = std::thread::Builder::new();
            let name = self.name.clone().unwrap_or_else(|| "model-task".into());
            if let Some(n) = self.name {
                b = b.name(n);
            }
            match op_mode() {
                OpMode::Unregistered => Ok(JoinHandle(Handle::Real(b.spawn(f)?))),
                OpMode::Model(h) | OpMode::Degraded(h) => {
                    let exec = Arc::clone(&h.exec);
                    let id = exec.register_task(name);
                    let exec2 = Arc::clone(&exec);
                    let real = b.spawn(move || {
                        CURRENT.with(|c| {
                            *c.borrow_mut() = Some(TaskHandle {
                                exec: Arc::clone(&exec2),
                                id,
                            });
                        });
                        let _finish = FinishGuard {
                            exec: Arc::clone(&exec2),
                            id,
                        };
                        // Park until scheduled for the first time.
                        let st = exec2.lock_state();
                        exec2.wait_for_turn(st, id, true);
                        f()
                    })?;
                    Ok(JoinHandle(Handle::Model { real, exec, id }))
                }
            }
        }
    }

    enum Handle<T> {
        Real(std::thread::JoinHandle<T>),
        Model {
            real: std::thread::JoinHandle<T>,
            exec: Arc<Execution>,
            id: TaskId,
        },
    }

    /// Drop-in for [`std::thread::JoinHandle`].
    pub struct JoinHandle<T>(Handle<T>);

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Handle::Real(h) => h.join(),
                Handle::Model { real, exec, id } => {
                    match op_mode() {
                        OpMode::Unregistered => {}
                        OpMode::Model(h) => exec.join_task(h.id, id, true),
                        OpMode::Degraded(h) => exec.join_task(h.id, id, false),
                    }
                    real.join()
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

/// Bounds and replay input for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreOpts {
    /// Maximum preemptive context switches per schedule (CHESS-style
    /// bound). Non-preemptive switches (the running task blocked) are free.
    pub preemption_bound: u32,
    /// Stop after this many executions (0 = unlimited).
    pub max_executions: u64,
    /// Stop when this deadline passes (checked between executions).
    pub deadline: Option<Instant>,
    /// Per-execution scheduling-step limit (livelock guard).
    pub step_limit: u64,
    /// Decision prefix to start from; with `replay_only` this pins the
    /// whole schedule.
    pub prefix: Vec<u32>,
    /// Run exactly one execution following `prefix`.
    pub replay_only: bool,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            preemption_bound: 2,
            max_executions: 0,
            deadline: None,
            step_limit: 200_000,
            prefix: Vec::new(),
            replay_only: false,
        }
    }
}

impl ExploreOpts {
    /// Replay a single schedule from an encoded seed
    /// (a [`Counterexample::seed`]).
    pub fn replay(seed: &str) -> Result<Self, String> {
        Ok(ExploreOpts {
            prefix: decode_schedule(seed)?,
            replay_only: true,
            ..ExploreOpts::default()
        })
    }
}

/// Outcome of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Executions (distinct schedules) run.
    pub executions: u64,
    /// Total decision points traversed across all executions.
    pub decisions: u64,
    /// The DFS fully enumerated every schedule within the preemption bound.
    pub exhausted: bool,
    /// First failing schedule found, if any.
    pub failure: Option<Counterexample>,
}

/// A failing schedule: the decision seed reproduces it deterministically.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Encoded decision vector; feed to [`ExploreOpts::replay`].
    pub seed: String,
    /// What went wrong (deadlock report or panic message).
    pub message: String,
}

/// Encode a decision vector as a replayable seed string (`mc1:` followed
/// by dot-separated choice indices).
fn encode_schedule(trace: &[ChoicePoint]) -> String {
    let choices: Vec<String> = trace.iter().map(|c| c.chosen.to_string()).collect();
    format!("mc1:{}", choices.join("."))
}

/// Decode a [`Counterexample::seed`] back into a decision vector.
pub fn decode_schedule(seed: &str) -> Result<Vec<u32>, String> {
    let body = seed
        .trim()
        .strip_prefix("mc1:")
        .ok_or_else(|| format!("seed {seed:?} does not start with \"mc1:\""))?;
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split('.')
        .map(|p| {
            p.parse::<u32>()
                .map_err(|e| format!("bad seed component {p:?}: {e}"))
        })
        .collect()
}

struct RunResult {
    trace: Vec<ChoicePoint>,
    failure: Option<String>,
}

fn run_one(prefix: &[u32], step_limit: u64, scenario: Arc<dyn Fn() + Send + Sync>) -> RunResult {
    let exec = Arc::new(Execution::new(prefix.to_vec(), step_limit));
    let root_id = exec.register_task("root".into());
    debug_assert_eq!(root_id, 0);
    let exec2 = Arc::clone(&exec);
    let root = std::thread::Builder::new()
        .name("model-root".into())
        .spawn(move || {
            CURRENT.with(|c| {
                *c.borrow_mut() = Some(TaskHandle {
                    exec: Arc::clone(&exec2),
                    id: root_id,
                });
            });
            let _finish = FinishGuard {
                exec: Arc::clone(&exec2),
                id: root_id,
            };
            scenario();
        })
        .expect("spawn model-check root thread");
    let _ = root.join();
    // Root exit does not imply quiescence (it may have leaked tasks, or a
    // failure teardown is still unwinding workers); wait for every task.
    let give_up_at = Instant::now() + Duration::from_secs(30);
    let mut st = exec.lock_state();
    loop {
        if st.tasks.iter().all(|t| matches!(t, TaskStatus::Finished)) {
            break;
        }
        if st.failure.is_none()
            && st.tasks.iter().all(|t| {
                matches!(
                    t,
                    TaskStatus::Finished
                        | TaskStatus::BlockedCv(_)
                        | TaskStatus::BlockedLock(_)
                        | TaskStatus::BlockedJoin(_)
                )
            })
            && st.current == NO_TASK
        {
            // Shouldn't happen (choose_next reports deadlocks), but never
            // wedge the driver on a bookkeeping hole.
            let report = st.describe_tasks();
            st.fail(format!("tasks leaked past root exit: {report}"));
            exec.turn.notify_all();
        }
        if Instant::now() >= give_up_at {
            let report = st.describe_tasks();
            st.fail(format!("execution wedged during teardown: {report}"));
            break;
        }
        let (g, _) = exec
            .turn
            .wait_timeout(st, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
        st = g;
    }
    RunResult {
        trace: st.trace.clone(),
        failure: st.failure.clone(),
    }
}

fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            // Panics on registered model tasks are captured and reported
            // through the execution trace; don't spew per-schedule noise.
            if CURRENT.with(|c| c.borrow().is_some()) {
                return;
            }
            prev(info);
        }));
    });
}

/// Preemptions consumed by the first `upto` decisions of `trace`.
fn preemptions(trace: &[ChoicePoint], upto: usize) -> u32 {
    trace[..upto]
        .iter()
        .filter(|c| c.preemptive && c.chosen > 0)
        .count() as u32
}

/// Depth-first exploration of every schedule of `scenario` within
/// `opts.preemption_bound`. Deterministic: same scenario + same opts visit
/// the same schedules in the same order.
pub fn explore(opts: &ExploreOpts, scenario: impl Fn() + Send + Sync + 'static) -> ExploreOutcome {
    install_quiet_panic_hook();
    let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    let mut prefix: Vec<u32> = opts.prefix.clone();
    let mut executions = 0u64;
    let mut decisions = 0u64;
    loop {
        let run = run_one(&prefix, opts.step_limit, Arc::clone(&scenario));
        executions += 1;
        decisions += run.trace.len() as u64;
        if let Some(message) = run.failure {
            return ExploreOutcome {
                executions,
                decisions,
                exhausted: false,
                failure: Some(Counterexample {
                    seed: encode_schedule(&run.trace),
                    message,
                }),
            };
        }
        if opts.replay_only {
            return ExploreOutcome {
                executions,
                decisions,
                exhausted: false,
                failure: None,
            };
        }
        // Backtrack: deepest decision with an untried alternative that
        // stays within the preemption bound. The next prefix replays
        // everything above it, so the DFS enumerates schedules exactly
        // once.
        let mut next: Option<Vec<u32>> = None;
        'search: for k in (0..run.trace.len()).rev() {
            let cp = run.trace[k];
            let cost = preemptions(&run.trace, k) + u32::from(cp.preemptive);
            if cost > opts.preemption_bound {
                continue;
            }
            if cp.chosen + 1 < cp.ncand {
                let mut p: Vec<u32> = run.trace[..k].iter().map(|c| c.chosen).collect();
                p.push(cp.chosen + 1);
                next = Some(p);
                break 'search;
            }
        }
        match next {
            None => {
                return ExploreOutcome {
                    executions,
                    decisions,
                    exhausted: true,
                    failure: None,
                }
            }
            Some(p) => prefix = p,
        }
        if opts.max_executions != 0 && executions >= opts.max_executions {
            return ExploreOutcome {
                executions,
                decisions,
                exhausted: false,
                failure: None,
            };
        }
        if let Some(deadline) = opts.deadline {
            if Instant::now() >= deadline {
                return ExploreOutcome {
                    executions,
                    decisions,
                    exhausted: false,
                    failure: None,
                };
            }
        }
    }
}

/// Re-run one encoded schedule; used by `fcbench-analyze check-pool
/// --replay`. Returns the outcome of that single execution.
pub fn replay(
    seed: &str,
    scenario: impl Fn() + Send + Sync + 'static,
) -> Result<ExploreOutcome, String> {
    let opts = ExploreOpts::replay(seed)?;
    Ok(explore(&opts, scenario))
}

//! Streaming frame I/O: compress and decompress datasets chunk-by-chunk
//! through the [`WorkerPool`] engine, so neither the raw data nor the
//! compressed frame ever needs to be fully resident.
//!
//! The on-wire format is the [`FCB3` layout](crate::frame) — the streamed
//! form of the chunked `FCB2` frame, with block lengths inlined ahead of
//! each payload so a writer can emit records as blocks finish compressing.
//!
//! [`FrameWriter`] accepts element bytes in arbitrary-sized chunks, carves
//! them into fixed-size blocks, and fans the blocks out to a pool (when one
//! is attached): at most `queue_depth` blocks are in flight, which bounds
//! the writer's footprint regardless of dataset size. [`FrameReader`]
//! mirrors it with bounded read-ahead, yielding decoded blocks in stream
//! order. Both run inline (no pool, zero extra threads) when constructed
//! without an engine.
//!
//! ```
//! use fcbench_core::stream::{FrameReader, FrameWriter};
//! use fcbench_core::{DataDesc, Domain, FloatData, Precision};
//! # use fcbench_core::{codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport},
//! #                    Compressor, Result};
//! # use std::sync::Arc;
//! # struct Store;
//! # impl Compressor for Store {
//! #     fn info(&self) -> CodecInfo {
//! #         CodecInfo { name: "store", year: 2024, community: Community::General,
//! #                     class: CodecClass::Delta, platform: Platform::Cpu,
//! #                     parallel: false, precisions: PrecisionSupport::Both }
//! #     }
//! #     fn compress(&self, data: &FloatData) -> Result<Vec<u8>> { Ok(data.bytes().to_vec()) }
//! #     fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
//! #         FloatData::from_bytes(desc.clone(), payload.to_vec())
//! #     }
//! # }
//! let codec: Arc<dyn Compressor> = Arc::new(Store);
//! let values: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.5).collect();
//! let data = FloatData::from_f64(&values, vec![values.len()], Domain::Hpc).unwrap();
//!
//! // Compress chunk-by-chunk into any io::Write sink.
//! let mut writer =
//!     FrameWriter::new(Vec::new(), Arc::clone(&codec), data.desc().clone(), 1024, None).unwrap();
//! for chunk in data.bytes().chunks(333) {
//!     writer.write(chunk).unwrap();
//! }
//! let encoded = writer.finish().unwrap();
//!
//! // Decode block-by-block from any io::Read source.
//! let mut reader = FrameReader::new(&encoded[..], codec, None).unwrap();
//! let mut restored = Vec::new();
//! while let Some(block) = reader.next_block().unwrap() {
//!     restored.extend_from_slice(block);
//! }
//! assert_eq!(restored, data.bytes());
//! ```

use crate::codec::Compressor;
use crate::data::{DataDesc, FloatData};
use crate::error::{Error, Result};
use crate::frame::{decode_stream_header, encode_stream_header};
use crate::pool::{Ticket, WorkerPool};
use fcbench_telemetry::{Counter, InflightGauge};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::Arc;

/// Ceiling on one block record's declared payload length, as a multiple of
/// the block's raw byte size: no real codec expands a block anywhere near
/// 8x, so a stream claiming more is hostile or corrupt and is rejected
/// before the reader allocates for it.
const MAX_RECORD_EXPANSION: usize = 8;

/// Slack added to the record ceiling for codec headers on tiny blocks.
const RECORD_SLACK: usize = 4096;

/// Cap on the speculative upfront reservation when decoding a whole stream
/// into memory.
const MAX_UPFRONT_RESERVE: usize = 16 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Checksummed record framing
// ---------------------------------------------------------------------------
//
// The FCDB2 on-disk container (crate `fcbench-dbsim`) frames every record —
// column headers, compressed chunks, commit directories — as
//
// ```text
// tag        u8
// body len   u64 LE
// body       …
// crc32      u32 LE   (over tag + len + body)
// ```
//
// so a reader can tell a torn tail from committed data. The helpers live
// here, next to the frame streaming they mirror, because the framing is not
// container-specific: any append-style file format in the workspace can use
// them.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table, built
/// at compile time so the hasher has no runtime setup and no allocation.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 (IEEE) hasher over byte slices.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s = CRC32_TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// The checksum of everything folded in so far (the hasher stays usable).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Framing bytes around a record body: 1 tag + 8 length + 4 checksum.
pub const RECORD_OVERHEAD: u64 = 13;

/// Write one framed record to `sink`. The body is supplied in `parts` so a
/// caller can prepend a small header to a large payload without
/// concatenating them first; the checksum streams over the parts, so the
/// call allocates nothing. Returns the total bytes emitted
/// ([`RECORD_OVERHEAD`] + body length).
pub fn put_record<W: Write>(sink: &mut W, tag: u8, parts: &[&[u8]]) -> Result<u64> {
    let body_len: u64 = parts.iter().map(|p| p.len() as u64).sum();
    let mut head = [0u8; 9];
    head[0] = tag;
    head[1..9].copy_from_slice(&body_len.to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&head);
    sink.write_all(&head)?;
    for part in parts {
        crc.update(part);
        sink.write_all(part)?;
    }
    sink.write_all(&crc.finish().to_le_bytes())?;
    Ok(RECORD_OVERHEAD + body_len)
}

/// A framed record parsed back out of a byte buffer.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    pub tag: u8,
    pub body: &'a [u8],
    /// Offset one past the record's trailing checksum.
    pub end: usize,
}

/// Why [`check_record`] could not return a valid record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordCheck {
    /// The buffer ends before the record does (a torn write, or not a
    /// record at all).
    Truncated,
    /// The record is complete but its stored checksum does not match.
    Mismatch { stored: u32, computed: u32 },
}

/// Validate the framed record starting at `bytes[pos..]`. The length field
/// is bounds-checked against the buffer **before** the checksum runs, so a
/// hostile length claims nothing.
pub fn check_record(bytes: &[u8], pos: usize) -> std::result::Result<RecordView<'_>, RecordCheck> {
    let head_end = pos.checked_add(9).ok_or(RecordCheck::Truncated)?;
    let head = bytes.get(pos..head_end).ok_or(RecordCheck::Truncated)?;
    let body_len = crate::wire::le_u64(head, 1).map_err(|_| RecordCheck::Truncated)?;
    let body_len = usize::try_from(body_len).map_err(|_| RecordCheck::Truncated)?;
    let body_start = pos + 9;
    let body_end = body_start
        .checked_add(body_len)
        .ok_or(RecordCheck::Truncated)?;
    let end = body_end.checked_add(4).ok_or(RecordCheck::Truncated)?;
    if end > bytes.len() {
        return Err(RecordCheck::Truncated);
    }
    let stored = crate::wire::le_u32(bytes, body_end).map_err(|_| RecordCheck::Truncated)?;
    let computed = crc32(&bytes[pos..body_end]);
    if computed != stored {
        return Err(RecordCheck::Mismatch { stored, computed });
    }
    Ok(RecordView {
        tag: head[0],
        body: &bytes[body_start..body_end],
        end,
    })
}

/// [`check_record`] collapsed to an `Option` for scanners that only care
/// whether a valid record starts at `pos`.
pub fn take_record(bytes: &[u8], pos: usize) -> Option<RecordView<'_>> {
    check_record(bytes, pos).ok()
}

/// Streaming `FCB3` encoder; see the [module docs](self).
pub struct FrameWriter<W: Write> {
    sink: W,
    codec: Arc<dyn Compressor>,
    pool: Option<Arc<WorkerPool>>,
    desc: DataDesc,
    esize: usize,
    /// Bytes per full block (saturating; at least one element).
    bpb: usize,
    /// Partial-block accumulator.
    buf: Vec<u8>,
    /// In-flight pool jobs, in stream order.
    pending: VecDeque<Ticket>,
    /// Upper bound on `pending.len()` — how much of a shared pool this one
    /// stream may pin. Defaults to the whole queue.
    inflight_cap: usize,
    /// Reusable per-block descriptor.
    bdesc: DataDesc,
    /// Inline-mode scratch input container.
    scratch: FloatData,
    /// Inline-mode payload buffer.
    payload: Vec<u8>,
    /// Element bytes accepted so far.
    consumed: usize,
    /// Bytes emitted to the sink so far.
    written: u64,
    /// This writer's share of the pool-wide
    /// `stream.writer.blocks_in_flight` gauge (no-op without a pool).
    inflight: InflightGauge,
}

impl<W: Write> FrameWriter<W> {
    /// Start a stream for data shaped like `desc`, compressed by `codec` in
    /// `block_elems`-element blocks, fanned out on `pool` when given. The
    /// prologue is written to `sink` immediately.
    pub fn new(
        mut sink: W,
        codec: Arc<dyn Compressor>,
        desc: DataDesc,
        block_elems: usize,
        pool: Option<Arc<WorkerPool>>,
    ) -> Result<Self> {
        let block_elems = block_elems.max(1);
        let prologue = encode_stream_header(codec.info().name, &desc, block_elems)?;
        sink.write_all(&prologue)?;
        let esize = desc.precision.bytes();
        let bdesc = DataDesc {
            precision: desc.precision,
            dims: vec![0],
            domain: desc.domain,
        };
        let inflight = pool.as_ref().map_or_else(InflightGauge::detached, |p| {
            InflightGauge::attached(p.telemetry().gauge("stream.writer.blocks_in_flight"))
        });
        Ok(FrameWriter {
            sink,
            codec,
            pool,
            esize,
            bpb: block_elems.saturating_mul(esize),
            buf: Vec::new(),
            pending: VecDeque::new(),
            inflight_cap: usize::MAX,
            bdesc,
            scratch: FloatData::scratch(),
            payload: Vec::new(),
            consumed: 0,
            written: prologue.len() as u64,
            desc,
            inflight,
        })
    }

    /// Cap the number of blocks this writer may have in flight on a shared
    /// pool at once (clamped to at least 1). When many independent streams
    /// share one host-sized engine — a serving front-end's connections —
    /// per-stream caps stop any single stream from pinning every job slot.
    /// Inline writers (no pool) ignore it.
    #[must_use]
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        self.inflight_cap = cap.max(1);
        self
    }

    /// Element bytes accepted so far.
    pub fn bytes_consumed(&self) -> usize {
        self.consumed
    }

    /// Bytes emitted to the sink so far (more may still be in flight).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Feed the next chunk of little-endian element bytes. Chunks may be
    /// any size (they need not align with blocks or even elements); full
    /// blocks are compressed and their records emitted as they form.
    ///
    /// On error the writer abandons its in-flight jobs (releasing their
    /// pool slots immediately) and the stream is unusable; drop it.
    pub fn write(&mut self, bytes: &[u8]) -> Result<()> {
        let r = crate::fault::fail_point("frame.write").and_then(|()| self.write_inner(bytes));
        if r.is_err() {
            // Free our pool slots right away — an errored writer must not
            // pin the engine for other sessions.
            self.pending.clear();
            self.inflight.sync(0);
        }
        r
    }

    fn write_inner(&mut self, mut bytes: &[u8]) -> Result<()> {
        let total = self.desc.byte_len();
        if bytes.len() > total - self.consumed {
            return Err(Error::BadDescriptor(format!(
                "stream overflow: descriptor declares {total} bytes but {} were written",
                self.consumed + bytes.len()
            )));
        }
        self.consumed += bytes.len();
        while !bytes.is_empty() {
            // Whole blocks straight from the caller's chunk, no copy into
            // the accumulator.
            if self.buf.is_empty() && bytes.len() >= self.bpb {
                let (block, rest) = bytes.split_at(self.bpb);
                self.emit_block(block)?;
                bytes = rest;
                continue;
            }
            let need = self.bpb - self.buf.len();
            let take = need.min(bytes.len());
            let (head, rest) = bytes.split_at(take);
            self.buf.extend_from_slice(head);
            bytes = rest;
            if self.buf.len() == self.bpb {
                let full = std::mem::take(&mut self.buf);
                self.emit_block(&full)?;
                self.buf = full;
                self.buf.clear();
            }
        }
        Ok(())
    }

    /// Compress one block (full, or the short tail) and emit / enqueue it.
    fn emit_block(&mut self, block: &[u8]) -> Result<()> {
        debug_assert!(!block.is_empty() && block.len() % self.esize == 0);
        self.bdesc.dims[0] = block.len() / self.esize;
        match self.pool.clone() {
            Some(pool) => {
                // Per-stream cap: flush our own oldest records until we are
                // back under it before taking another slot.
                while self.pending.len() >= self.inflight_cap {
                    self.flush_front()?;
                }
                // Saturation discipline: never block in submit while
                // holding tickets — the drain closure flushes our own
                // oldest record to free a slot instead.
                let FrameWriter {
                    pending,
                    sink,
                    written,
                    codec,
                    bdesc,
                    inflight,
                    ..
                } = self;
                let ticket = pool.submit_compress_draining(codec, bdesc, block, || {
                    flush_oldest(pending, sink, written)
                })?;
                pending.push_back(ticket);
                inflight.sync(pending.len());
                Ok(())
            }
            None => {
                self.scratch.refill_from_slice(&self.bdesc, block)?;
                let n = self.codec.compress_into(&self.scratch, &mut self.payload)?;
                self.sink.write_all(&(n as u64).to_le_bytes())?;
                self.sink.write_all(&self.payload[..n])?;
                self.written += 8 + n as u64;
                Ok(())
            }
        }
    }

    /// Collect the oldest in-flight block and write its record.
    fn flush_front(&mut self) -> Result<()> {
        flush_oldest(&mut self.pending, &mut self.sink, &mut self.written)?;
        self.inflight.sync(self.pending.len());
        Ok(())
    }

    /// Emit records for in-flight blocks that have already finished
    /// compressing, without waiting on unfinished ones. Returns how many
    /// records were written. Callers that block on a slow input source
    /// (a network server reading a trickling client) call this while they
    /// wait, so completed jobs release their pool slots to other streams
    /// instead of staying pinned until the next `write`.
    ///
    /// On error the writer abandons its in-flight jobs and is unusable,
    /// like [`write`](Self::write).
    pub fn flush_ready(&mut self) -> Result<usize> {
        let mut flushed = 0usize;
        while self.pending.front().is_some_and(Ticket::is_finished) {
            if let Err(e) = self.flush_front() {
                self.pending.clear();
                self.inflight.sync(0);
                return Err(e);
            }
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Emit the tail block, drain the pool, flush the sink, and return it.
    /// Errors if fewer element bytes were written than the descriptor
    /// declares (in-flight jobs are abandoned on any error — the writer is
    /// consumed either way).
    pub fn finish(mut self) -> Result<W> {
        if self.consumed != self.desc.byte_len() {
            return Err(Error::BadDescriptor(format!(
                "stream ended after {} of {} element bytes",
                self.consumed,
                self.desc.byte_len()
            )));
        }
        if !self.buf.is_empty() {
            let tail = std::mem::take(&mut self.buf);
            self.emit_block(&tail)?;
        }
        while !self.pending.is_empty() {
            self.flush_front()?;
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Collect a writer's oldest in-flight block and emit its record to the
/// sink; `false` when nothing is in flight.
fn flush_oldest<W: Write>(
    pending: &mut VecDeque<Ticket>,
    sink: &mut W,
    written: &mut u64,
) -> Result<bool> {
    let Some(ticket) = pending.pop_front() else {
        return Ok(false);
    };
    let n = ticket.collect(|payload| -> std::io::Result<usize> {
        sink.write_all(&(payload.len() as u64).to_le_bytes())?;
        sink.write_all(payload)?;
        Ok(payload.len())
    })??;
    *written += 8 + n as u64;
    Ok(true)
}

/// Which reader-owned buffer holds the block [`FrameReader::advance`] just
/// decoded.
enum BlockHome {
    /// Inline mode: `FrameReader::scratch`.
    Scratch,
    /// Pool mode: `FrameReader::current`.
    Current,
}

/// Streaming `FCB3` decoder; see the [module docs](self).
pub struct FrameReader<R: Read> {
    src: R,
    codec: Arc<dyn Compressor>,
    pool: Option<Arc<WorkerPool>>,
    desc: DataDesc,
    block_elems: usize,
    nblocks: usize,
    /// Blocks whose records were read and submitted.
    submitted: usize,
    /// `payload` holds block `submitted`'s record, read but not yet
    /// submitted (the pool was saturated by other sessions).
    record_ready: bool,
    /// Blocks handed to the caller.
    collected: usize,
    /// Sticky failure: once a block errors, later reads refuse instead of
    /// yielding blocks out of order.
    failed: bool,
    pending: VecDeque<Ticket>,
    /// Upper bound on read-ahead jobs in flight (shared-pool fairness; see
    /// [`FrameWriter::max_in_flight`]).
    inflight_cap: usize,
    bdesc: DataDesc,
    /// Reusable compressed-record buffer.
    payload: Vec<u8>,
    /// Pool mode: the most recently collected decoded block.
    current: Vec<u8>,
    /// Inline mode: the reusable decode target.
    scratch: FloatData,
    /// This reader's share of the pool-wide
    /// `stream.reader.blocks_in_flight` gauge (no-op without a pool).
    inflight: InflightGauge,
    /// `stream.reader.read_ahead.stalls` — times the caller had to wait on
    /// a block the read-ahead had not finished decoding.
    stalls: Option<Counter>,
}

impl<R: Read> FrameReader<R> {
    /// Read and validate the stream prologue. The stream must have been
    /// written by `codec` (by name); block decoding fans out on `pool`
    /// when given.
    pub fn new(
        mut src: R,
        codec: Arc<dyn Compressor>,
        pool: Option<Arc<WorkerPool>>,
    ) -> Result<Self> {
        let (name, desc, block_elems) = decode_stream_header(&mut src)?;
        if name != codec.info().name {
            return Err(Error::Corrupt(format!(
                "stream was written by codec {:?} but {:?} was asked to decode it",
                name,
                codec.info().name
            )));
        }
        let nblocks = desc.elements().div_ceil(block_elems);
        let bdesc = DataDesc {
            precision: desc.precision,
            dims: vec![0],
            domain: desc.domain,
        };
        let inflight = pool.as_ref().map_or_else(InflightGauge::detached, |p| {
            InflightGauge::attached(p.telemetry().gauge("stream.reader.blocks_in_flight"))
        });
        let stalls = pool
            .as_ref()
            .map(|p| p.telemetry().counter("stream.reader.read_ahead.stalls"));
        Ok(FrameReader {
            src,
            codec,
            pool,
            block_elems,
            nblocks,
            submitted: 0,
            record_ready: false,
            collected: 0,
            failed: false,
            pending: VecDeque::new(),
            inflight_cap: usize::MAX,
            bdesc,
            payload: Vec::new(),
            current: Vec::new(),
            scratch: FloatData::scratch(),
            desc,
            inflight,
            stalls,
        })
    }

    /// Cap this reader's decode read-ahead at `cap` in-flight blocks
    /// (clamped to at least 1) — the reader-side twin of
    /// [`FrameWriter::max_in_flight`]. Inline readers (no pool) ignore it.
    #[must_use]
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        self.inflight_cap = cap.max(1);
        self
    }

    /// The stream's data descriptor.
    pub fn desc(&self) -> &DataDesc {
        &self.desc
    }

    /// Elements per block (the tail block may be short).
    pub fn block_elems(&self) -> usize {
        self.block_elems
    }

    /// Total number of blocks in the stream.
    pub fn blocks_total(&self) -> usize {
        self.nblocks
    }

    /// Blocks not yet handed to the caller.
    pub fn blocks_remaining(&self) -> usize {
        self.nblocks - self.collected
    }

    /// Element count of block `i`.
    fn block_len(&self, i: usize) -> usize {
        let total = self.desc.elements();
        let start = i.saturating_mul(self.block_elems).min(total);
        self.block_elems.min(total - start)
    }

    /// Read the next block record into `self.payload`, rejecting
    /// implausibly long declared lengths before allocating for them.
    fn read_record(&mut self, block_idx: usize) -> Result<()> {
        let mut be = [0u8; 8];
        self.src.read_exact(&mut be)?;
        let len = u64::from_le_bytes(be);
        let raw = self
            .block_len(block_idx)
            .saturating_mul(self.desc.precision.bytes());
        let cap = raw
            .saturating_mul(MAX_RECORD_EXPANSION)
            .saturating_add(RECORD_SLACK);
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= cap)
            .ok_or_else(|| {
                Error::Corrupt(format!(
                    "block record claims {len} payload bytes for a {raw}-byte block"
                ))
            })?;
        // Grow the buffer as payload bytes actually arrive (1 MiB steps)
        // rather than reserving the full claim up front: a hostile record
        // that declares hundreds of megabytes but delivers nothing must
        // fail at EOF having committed one step, not the whole claim.
        // Memory tracks delivered bytes, the same discipline as bounded
        // length-prefixed reads elsewhere.
        const STEP: usize = 1 << 20;
        self.payload.clear();
        let mut filled = 0usize;
        while filled < len {
            let step = STEP.min(len - filled);
            self.payload.resize(filled + step, 0);
            self.src.read_exact(&mut self.payload[filled..])?;
            filled += step;
        }
        Ok(())
    }

    /// Decode and return the next block's element bytes in stream order, or
    /// `None` after the final block. The returned slice lives until the
    /// next call.
    pub fn next_block(&mut self) -> Result<Option<&[u8]>> {
        if self.failed {
            return Err(Error::Corrupt(
                "stream reader is in a failed state (an earlier block errored)".into(),
            ));
        }
        match self.advance() {
            Ok(None) => Ok(None),
            Ok(Some(BlockHome::Scratch)) => Ok(Some(self.scratch.bytes())),
            Ok(Some(BlockHome::Current)) => Ok(Some(&self.current)),
            Err(e) => {
                // Fail sticky: abandon the read-ahead (recycling its pool
                // slots) and refuse further reads instead of yielding
                // blocks out of order — or panicking on a drained queue.
                self.failed = true;
                self.pending.clear();
                self.inflight.sync(0);
                Err(e)
            }
        }
    }

    /// [`next_block`](Self::next_block) minus the borrow of the output
    /// buffer: decodes the next block into [`BlockHome::Scratch`] (inline)
    /// or [`BlockHome::Current`] (pooled) so the caller-facing wrapper can
    /// record failure before handing out a slice.
    fn advance(&mut self) -> Result<Option<BlockHome>> {
        if self.collected == self.nblocks {
            return Ok(None);
        }
        match self.pool.clone() {
            None => {
                self.read_record(self.collected)?;
                self.bdesc.dims[0] = self.block_len(self.collected);
                crate::blocks::check_decode_claim(&self.bdesc, self.payload.len())?;
                self.codec
                    .decompress_into(&self.payload, &self.bdesc, &mut self.scratch)?;
                if self.scratch.bytes().len() != self.bdesc.byte_len() {
                    return Err(Error::Corrupt("block decoded to a wrong size".into()));
                }
                self.collected += 1;
                Ok(Some(BlockHome::Scratch))
            }
            Some(pool) => {
                // Keep the read-ahead window full, bounded by the queue.
                // Saturation discipline: with jobs of our own in flight we
                // never block in submit — a saturated pool just ends the
                // top-up (collecting our front below frees a slot), and a
                // record already read off `src` waits in `payload` for the
                // next call.
                let window = pool.queue_depth().min(self.inflight_cap);
                while self.submitted < self.nblocks && self.pending.len() < window {
                    let i = self.submitted;
                    if !self.record_ready {
                        self.read_record(i)?;
                        self.record_ready = true;
                    }
                    self.bdesc.dims[0] = self.block_len(i);
                    let ticket = match pool.try_submit_decompress(
                        &self.codec,
                        &self.bdesc,
                        &self.payload,
                    )? {
                        Some(t) => t,
                        None if self.pending.is_empty() => {
                            pool.submit_decompress(&self.codec, &self.bdesc, &self.payload)?
                        }
                        None => break,
                    };
                    self.pending.push_back(ticket);
                    self.submitted += 1;
                    self.record_ready = false;
                }
                self.inflight.sync(self.pending.len());
                let ticket = self
                    .pending
                    .pop_front()
                    .ok_or_else(|| Error::Corrupt("stream reader lost its read-ahead".into()))?;
                if !ticket.is_finished() {
                    if let Some(stalls) = self.stalls.as_ref() {
                        stalls.inc();
                    }
                }
                let current = &mut self.current;
                ticket.collect(|decoded| {
                    current.clear();
                    current.extend_from_slice(decoded);
                })?;
                self.inflight.sync(self.pending.len());
                self.collected += 1;
                Ok(Some(BlockHome::Current))
            }
        }
    }

    /// Decode every remaining block into `out` (for a fresh reader: the
    /// whole dataset). Convenience for callers that do want the data
    /// resident; the bounded-memory path is [`next_block`](Self::next_block).
    pub fn read_to_end(&mut self, out: &mut FloatData) -> Result<()> {
        if self.collected != 0 {
            return Err(Error::Unsupported(
                "read_to_end requires a fresh reader (blocks were already consumed)".into(),
            ));
        }
        let desc = self.desc.clone();
        out.refill(&desc, |bytes| {
            // lint: claim-checked(reservation clamped to MAX_UPFRONT_RESERVE)
            bytes.reserve(desc.byte_len().min(MAX_UPFRONT_RESERVE));
            while let Some(block) = self.next_block()? {
                bytes.extend_from_slice(block);
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
    use crate::data::{Domain, Precision};
    use crate::pool::PoolConfig;

    struct HeaderedStore;

    impl Compressor for HeaderedStore {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "hstore",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
            out.clear();
            out.extend_from_slice(&[0xAB, 0xCD]);
            out.extend_from_slice(data.bytes());
            Ok(out.len())
        }
        fn decompress_into(
            &self,
            payload: &[u8],
            desc: &DataDesc,
            out: &mut FloatData,
        ) -> Result<()> {
            if payload.len() < 2 || payload[0] != 0xAB || payload[1] != 0xCD {
                return Err(Error::Corrupt("bad hstore header".into()));
            }
            out.refill_from_slice(desc, &payload[2..])
        }
    }

    fn codec() -> Arc<dyn Compressor> {
        Arc::new(HeaderedStore)
    }

    fn sample(n: usize) -> FloatData {
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.31 - 7.5).collect();
        FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).unwrap()
    }

    fn encode(
        data: &FloatData,
        block: usize,
        pool: Option<Arc<WorkerPool>>,
        chunk: usize,
    ) -> Vec<u8> {
        let mut w =
            FrameWriter::new(Vec::new(), codec(), data.desc().clone(), block, pool).unwrap();
        for c in data.bytes().chunks(chunk) {
            w.write(c).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trips_inline_and_pooled_with_odd_chunking() {
        let n = 777;
        let data = sample(n);
        for block in [1usize, n - 1, n, n + 1, 64] {
            for pool_threads in [0usize, 2, 8] {
                let pool = (pool_threads > 0)
                    .then(|| Arc::new(WorkerPool::new(PoolConfig::with_threads(pool_threads))));
                // Chunk sizes that are not element-aligned.
                for chunk in [1usize, 13, 4096] {
                    let bytes = encode(&data, block, pool.clone(), chunk);
                    let mut r = FrameReader::new(&bytes[..], codec(), pool.clone()).unwrap();
                    assert_eq!(r.desc(), data.desc());
                    assert_eq!(r.blocks_total(), n.div_ceil(block.max(1)));
                    let mut restored = Vec::new();
                    while let Some(b) = r.next_block().unwrap() {
                        restored.extend_from_slice(b);
                    }
                    assert_eq!(
                        restored,
                        data.bytes(),
                        "block {block} pool {pool_threads} chunk {chunk}"
                    );
                    assert!(r.next_block().unwrap().is_none());
                }
            }
        }
    }

    #[test]
    fn read_to_end_restores_the_container() {
        let data = sample(300);
        let bytes = encode(&data, 64, None, 999);
        let mut r = FrameReader::new(&bytes[..], codec(), None).unwrap();
        let mut out = FloatData::scratch();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.bytes(), data.bytes());
        assert_eq!(out.desc(), data.desc());
        // Not fresh any more.
        assert!(r.read_to_end(&mut out).is_err());
    }

    #[test]
    fn short_stream_is_rejected_at_finish() {
        let data = sample(100);
        let mut w = FrameWriter::new(Vec::new(), codec(), data.desc().clone(), 32, None).unwrap();
        w.write(&data.bytes()[..400]).unwrap();
        assert!(matches!(w.finish(), Err(Error::BadDescriptor(_))));
    }

    #[test]
    fn overlong_write_is_rejected() {
        let data = sample(10);
        let mut w = FrameWriter::new(Vec::new(), codec(), data.desc().clone(), 4, None).unwrap();
        w.write(data.bytes()).unwrap();
        assert!(matches!(w.write(&[0u8; 1]), Err(Error::BadDescriptor(_))));
    }

    #[test]
    fn reader_rejects_wrong_codec_and_bad_magic() {
        let data = sample(50);
        let bytes = encode(&data, 16, None, 4096);

        struct Other;
        impl Compressor for Other {
            fn info(&self) -> CodecInfo {
                CodecInfo {
                    name: "other",
                    ..HeaderedStore.info()
                }
            }
            fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
                Ok(data.bytes().to_vec())
            }
            fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
                FloatData::from_bytes(desc.clone(), payload.to_vec())
            }
        }
        assert!(FrameReader::new(&bytes[..], Arc::new(Other), None).is_err());

        let mut bad = bytes.clone();
        bad[3] = b'9';
        assert!(FrameReader::new(&bad[..], codec(), None).is_err());
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let data = sample(120);
        let bytes = encode(&data, 32, None, 4096);
        // Truncate at several depths: prologue, mid-record, mid-payload.
        for cut in [0usize, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            let mut r = match FrameReader::new(&bytes[..cut], codec(), None) {
                Ok(r) => r,
                Err(_) => continue, // prologue truncation already failed
            };
            let mut result = Ok(());
            while match r.next_block() {
                Ok(Some(_)) => true,
                Ok(None) => false,
                Err(e) => {
                    result = Err(e);
                    false
                }
            } {}
            assert!(result.is_err(), "cut {cut} must surface an error");
        }

        // A record claiming an implausibly large payload is rejected
        // before allocation.
        let prologue_len = {
            let mut cursor = &bytes[..];
            crate::frame::decode_stream_header(&mut cursor).unwrap();
            bytes.len() - cursor.len()
        };
        let mut hostile = bytes[..prologue_len].to_vec();
        hostile.extend_from_slice(&u64::MAX.to_le_bytes());
        hostile.extend_from_slice(&[0u8; 16]);
        let mut r = FrameReader::new(&hostile[..], codec(), None).unwrap();
        assert!(matches!(r.next_block(), Err(Error::Corrupt(_))));
    }

    #[test]
    fn reader_fails_sticky_after_a_corrupt_block() {
        let data = sample(300);
        let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(2)));
        let bytes = encode(&data, 50, Some(Arc::clone(&pool)), 4096);
        let prologue_len = {
            let mut cursor = &bytes[..];
            crate::frame::decode_stream_header(&mut cursor).unwrap();
            bytes.len() - cursor.len()
        };
        // Corrupt the payloads of the first two records (flip the hstore
        // markers); with read-ahead, both failing jobs are in flight at
        // once — repeated reads must be typed errors, never a panic.
        let len0 =
            u64::from_le_bytes(bytes[prologue_len..prologue_len + 8].try_into().unwrap()) as usize;
        let mut bad = bytes.clone();
        bad[prologue_len + 8] ^= 0xFF;
        bad[prologue_len + 8 + len0 + 8] ^= 0xFF;

        let mut r = FrameReader::new(&bad[..], codec(), Some(pool)).unwrap();
        assert!(matches!(r.next_block(), Err(Error::Corrupt(_))));
        for _ in 0..3 {
            assert!(matches!(r.next_block(), Err(Error::Corrupt(_))));
        }
    }

    #[test]
    fn single_precision_streams_round_trip() {
        let vals: Vec<f32> = (0..500).map(|i| i as f32 * 0.25).collect();
        let data = FloatData::from_f32(&vals, vec![500], Domain::Observation).unwrap();
        assert_eq!(data.desc().precision, Precision::Single);
        let bytes = encode(&data, 7, None, 11);
        let mut r = FrameReader::new(&bytes[..], codec(), None).unwrap();
        let mut out = FloatData::scratch();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.bytes(), data.bytes());
    }

    #[test]
    fn flush_ready_emits_finished_blocks_without_blocking() {
        let data = sample(512);
        let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(2)));
        let mut w = FrameWriter::new(
            Vec::new(),
            codec(),
            data.desc().clone(),
            32,
            Some(Arc::clone(&pool)),
        )
        .unwrap();
        w.write(&data.bytes()[..2048]).unwrap();
        // Once the pool has executed the submitted jobs, flush_ready emits
        // their records without waiting on anything.
        pool.drain();
        let before = w.bytes_written();
        let flushed = w.flush_ready().unwrap();
        assert!(flushed > 0, "finished blocks must flush");
        assert!(w.bytes_written() > before);
        assert_eq!(w.flush_ready().unwrap(), 0, "nothing left in flight");
        // The stream is still perfectly usable afterwards.
        w.write(&data.bytes()[2048..]).unwrap();
        let encoded = w.finish().unwrap();
        let mut r = FrameReader::new(&encoded[..], codec(), Some(pool)).unwrap();
        let mut restored = Vec::new();
        while let Some(b) = r.next_block().unwrap() {
            restored.extend_from_slice(b);
        }
        assert_eq!(restored, data.bytes());
    }

    #[test]
    fn in_flight_caps_round_trip_and_share_a_tiny_pool() {
        // Two streams capped at 1 job each share a 2-slot pool: neither can
        // pin both slots, so interleaving their writes cannot deadlock.
        let n = 400;
        let data = sample(n);
        let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(1).queue_depth(2)));
        let mut a = FrameWriter::new(
            Vec::new(),
            codec(),
            data.desc().clone(),
            16,
            Some(Arc::clone(&pool)),
        )
        .unwrap()
        .max_in_flight(1);
        let mut b = FrameWriter::new(
            Vec::new(),
            codec(),
            data.desc().clone(),
            16,
            Some(Arc::clone(&pool)),
        )
        .unwrap()
        .max_in_flight(1);
        for chunk in data.bytes().chunks(128) {
            a.write(chunk).unwrap();
            b.write(chunk).unwrap();
        }
        for encoded in [a.finish().unwrap(), b.finish().unwrap()] {
            let mut r = FrameReader::new(&encoded[..], codec(), Some(Arc::clone(&pool)))
                .unwrap()
                .max_in_flight(1);
            let mut restored = Vec::new();
            while let Some(block) = r.next_block().unwrap() {
                restored.extend_from_slice(block);
            }
            assert_eq!(restored, data.bytes());
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental hashing agrees with one-shot, however the input splits.
        let data: Vec<u8> = (0..=255).collect();
        let whole = crc32(&data);
        for split in [0usize, 1, 100, 255, 256] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split {split}");
        }
    }

    #[test]
    fn framed_records_round_trip_in_parts() {
        let mut buf = Vec::new();
        let n = put_record(&mut buf, 7, &[b"hello ", b"", b"world"]).unwrap();
        assert_eq!(n, buf.len() as u64);
        assert_eq!(n, RECORD_OVERHEAD + 11);
        let rec = take_record(&buf, 0).expect("valid record");
        assert_eq!(rec.tag, 7);
        assert_eq!(rec.body, b"hello world");
        assert_eq!(rec.end, buf.len());
        let first_end = rec.end;

        // Multi-part framing is byte-identical to single-part framing.
        let mut single = Vec::new();
        put_record(&mut single, 7, &[b"hello world"]).unwrap();
        assert_eq!(buf, single);

        // Back-to-back records parse sequentially.
        put_record(&mut buf, 9, &[&[0xAA; 300]]).unwrap();
        let second = take_record(&buf, first_end).expect("second record");
        assert_eq!(second.tag, 9);
        assert_eq!(second.body.len(), 300);
        assert_eq!(second.end, buf.len());
    }

    #[test]
    fn torn_and_corrupt_records_are_distinguished() {
        let mut buf = Vec::new();
        put_record(&mut buf, 2, &[&[0x5A; 64]]).unwrap();
        // Every truncation is Truncated, never a panic or a false accept.
        for cut in 0..buf.len() {
            assert_eq!(
                check_record(&buf[..cut], 0).unwrap_err(),
                RecordCheck::Truncated,
                "cut {cut}"
            );
        }
        // Any single flipped body/header bit is a checksum mismatch.
        for i in [0usize, 5, 9, 40] {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            match check_record(&bad, 0) {
                Err(RecordCheck::Mismatch { stored, computed }) => {
                    assert_ne!(stored, computed)
                }
                // Flipping a length byte makes the record claim more than
                // the buffer holds instead.
                Err(RecordCheck::Truncated) => assert!((1..9).contains(&i)),
                Ok(_) => panic!("flipped byte {i} accepted"),
            }
        }
        // A length claiming far past the buffer is rejected before any
        // checksum work, as is a start past the end.
        let mut hostile = vec![1u8];
        hostile.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            check_record(&hostile, 0).unwrap_err(),
            RecordCheck::Truncated
        );
        assert!(take_record(&buf, buf.len()).is_none());
    }

    #[test]
    fn writer_reports_progress() {
        let data = sample(100);
        let mut w = FrameWriter::new(Vec::new(), codec(), data.desc().clone(), 25, None).unwrap();
        assert_eq!(w.bytes_consumed(), 0);
        let prologue = w.bytes_written();
        assert!(prologue > 0);
        w.write(data.bytes()).unwrap();
        assert_eq!(w.bytes_consumed(), data.bytes().len());
        assert!(w.bytes_written() > prologue);
        let out = w.finish().unwrap();
        assert!(!out.is_empty());
    }
}

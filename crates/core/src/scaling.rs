//! Parallel-scalability harness (§6.1.6, Tables 7 & 8).
//!
//! The paper sweeps thread counts 1–48 for the four thread-capable CPU
//! methods and reports throughput, speedup over single-threaded, and
//! parallel efficiency. This module drives any factory of thread-configured
//! codecs through that sweep.

use crate::codec::Compressor;
use crate::data::FloatData;
use crate::error::Result;
use crate::pipeline::Pipeline;
use crate::pool::{PoolConfig, WorkerPool};
use std::sync::Arc;
use std::time::Instant;

/// The thread counts reported in Tables 7–8.
pub const PAPER_THREAD_COUNTS: [usize; 8] = [1, 2, 4, 8, 16, 24, 32, 48];

/// One row of a scalability table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    pub threads: usize,
    /// Throughput in MB/s (decimal), matching the tables' units.
    pub mb_per_s: f64,
    /// Speedup over the single-thread point.
    pub speedup: f64,
    /// Parallel efficiency = speedup / threads.
    pub efficiency: f64,
}

/// Scalability sweep result for one codec and one direction.
#[derive(Debug, Clone)]
pub struct ScalingCurve {
    pub codec: String,
    pub points: Vec<ScalingPoint>,
}

impl ScalingCurve {
    /// The thread count with peak throughput (paper: 16–24 for most codecs,
    /// after which oversubscription degrades it).
    pub fn peak(&self) -> Option<&ScalingPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.mb_per_s.total_cmp(&b.mb_per_s))
    }
}

/// Which direction to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Compress,
    Decompress,
}

/// Sweep `factory(threads)` over `thread_counts`, timing the requested
/// direction on `data` with `reps` repetitions (fastest rep is kept, which
/// is standard practice for throughput curves).
pub fn scaling_sweep<F>(
    factory: F,
    data: &FloatData,
    thread_counts: &[usize],
    direction: Direction,
    reps: usize,
) -> Result<ScalingCurve>
where
    F: Fn(usize) -> Box<dyn Compressor>,
{
    assert!(!thread_counts.is_empty());
    let mut name = String::new();
    let mut raw: Vec<(usize, f64)> = Vec::with_capacity(thread_counts.len());

    // Reused across every thread count and repetition: the sweep measures
    // codec scalability, not allocator throughput.
    let mut payload = Vec::new();
    let mut scratch = FloatData::scratch();
    for &t in thread_counts {
        let codec = factory(t);
        name = codec.info().name.to_string();
        codec.compress_into(data, &mut payload)?;
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let secs = match direction {
                Direction::Compress => {
                    let t0 = Instant::now();
                    let n = codec.compress_into(data, &mut payload)?;
                    let s = t0.elapsed().as_secs_f64();
                    std::hint::black_box(n);
                    s
                }
                Direction::Decompress => {
                    let t0 = Instant::now();
                    codec.decompress_into(&payload, data.desc(), &mut scratch)?;
                    let s = t0.elapsed().as_secs_f64();
                    std::hint::black_box(scratch.bytes().len());
                    s
                }
            };
            best = best.min(secs);
        }
        let mbps = data.bytes().len() as f64 / best.max(f64::MIN_POSITIVE) / 1e6;
        raw.push((t, mbps));
    }

    Ok(curve_from_raw(name, raw))
}

/// Normalise raw `(threads, MB/s)` samples into a [`ScalingCurve`].
fn curve_from_raw(codec: String, raw: Vec<(usize, f64)>) -> ScalingCurve {
    let base = raw[0].1.max(f64::MIN_POSITIVE);
    let points = raw
        .into_iter()
        .map(|(threads, mb_per_s)| ScalingPoint {
            threads,
            mb_per_s,
            speedup: mb_per_s / base,
            efficiency: mb_per_s / base / threads as f64,
        })
        .collect();
    ScalingCurve { codec, points }
}

/// Sweep the **execution engine** instead of codec-internal threading: for
/// each thread count, spawn a [`WorkerPool`], drive `codec` block-parallel
/// through a [`Pipeline`] over it, and time the requested direction. This
/// is how serial codecs (gorilla, chimp, ...) scale — the engine fans their
/// blocks out across persistent workers. The pool is warmed with one
/// untimed pass so the measurements see steady-state workers, not spawn
/// and allocator cost.
pub fn pool_scaling_sweep(
    codec: &Arc<dyn Compressor>,
    data: &FloatData,
    thread_counts: &[usize],
    block_elems: usize,
    direction: Direction,
    reps: usize,
) -> Result<ScalingCurve> {
    assert!(!thread_counts.is_empty());
    let name = codec.info().name.to_string();
    let mut raw: Vec<(usize, f64)> = Vec::with_capacity(thread_counts.len());

    let mut frame = Vec::new();
    let mut out = FloatData::scratch();
    for &t in thread_counts {
        let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(t)));
        let pipeline = Pipeline::with_pool(Arc::clone(codec), pool).block_elems(block_elems);
        // Warm-up: spawn-once cost, slot buffers, codec thread-locals.
        pipeline.compress_into(data, &mut frame)?;
        pipeline.decompress_into(&frame, &mut out)?;
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let secs = match direction {
                Direction::Compress => {
                    let t0 = Instant::now();
                    let n = pipeline.compress_into(data, &mut frame)?;
                    let s = t0.elapsed().as_secs_f64();
                    std::hint::black_box(n);
                    s
                }
                Direction::Decompress => {
                    let t0 = Instant::now();
                    pipeline.decompress_into(&frame, &mut out)?;
                    let s = t0.elapsed().as_secs_f64();
                    std::hint::black_box(out.bytes().len());
                    s
                }
            };
            best = best.min(secs);
        }
        let mbps = data.bytes().len() as f64 / best.max(f64::MIN_POSITIVE) / 1e6;
        raw.push((t, mbps));
    }
    Ok(curve_from_raw(name, raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
    use crate::data::{DataDesc, Domain};

    /// Codec whose compression does `work / threads` spins, simulating
    /// perfect linear scaling.
    struct SpinCodec {
        threads: usize,
    }

    impl Compressor for SpinCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "spin",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: true,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            let spins = 2_000_000 / self.threads;
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            std::hint::black_box(acc);
            Ok(data.bytes().to_vec())
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    #[test]
    fn sweep_reports_speedup_over_base() {
        let data = FloatData::from_f32(&[0.0; 64], vec![64], Domain::Hpc).unwrap();
        let curve = scaling_sweep(
            |t| Box::new(SpinCodec { threads: t }),
            &data,
            &[1, 4],
            Direction::Compress,
            3,
        )
        .unwrap();
        assert_eq!(curve.codec, "spin");
        assert_eq!(curve.points.len(), 2);
        assert!((curve.points[0].speedup - 1.0).abs() < 1e-9);
        // 4 "threads" spin 4x less, so speedup should be well above 1.
        assert!(
            curve.points[1].speedup > 1.5,
            "speedup = {}",
            curve.points[1].speedup
        );
        assert_eq!(curve.peak().unwrap().threads, 4);
    }

    #[test]
    fn efficiency_is_speedup_per_thread() {
        let data = FloatData::from_f32(&[0.0; 16], vec![16], Domain::Hpc).unwrap();
        let curve = scaling_sweep(
            |t| Box::new(SpinCodec { threads: t }),
            &data,
            &[1, 2],
            Direction::Decompress,
            2,
        )
        .unwrap();
        for p in &curve.points {
            assert!((p.efficiency - p.speedup / p.threads as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn pool_sweep_round_trips_and_reports_points() {
        let vals: Vec<f64> = (0..4096).map(|i| i as f64 * 0.5).collect();
        let data = FloatData::from_f64(&vals, vec![4096], Domain::Hpc).unwrap();
        let codec: Arc<dyn Compressor> = Arc::new(SpinCodec { threads: 1 });
        for direction in [Direction::Compress, Direction::Decompress] {
            let curve = pool_scaling_sweep(&codec, &data, &[1, 2], 512, direction, 1).unwrap();
            assert_eq!(curve.codec, "spin");
            assert_eq!(curve.points.len(), 2);
            assert!((curve.points[0].speedup - 1.0).abs() < 1e-9);
            assert!(curve.points.iter().all(|p| p.mb_per_s.is_finite()));
        }
    }

    #[test]
    fn paper_thread_counts() {
        assert_eq!(PAPER_THREAD_COUNTS, [1, 2, 4, 8, 16, 24, 32, 48]);
    }
}

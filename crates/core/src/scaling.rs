//! Parallel-scalability harness (§6.1.6, Tables 7 & 8).
//!
//! The paper sweeps thread counts 1–48 for the four thread-capable CPU
//! methods and reports throughput, speedup over single-threaded, and
//! parallel efficiency. This module drives any factory of thread-configured
//! codecs through that sweep.

use crate::codec::Compressor;
use crate::data::FloatData;
use crate::error::Result;
use std::time::Instant;

/// The thread counts reported in Tables 7–8.
pub const PAPER_THREAD_COUNTS: [usize; 8] = [1, 2, 4, 8, 16, 24, 32, 48];

/// One row of a scalability table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    pub threads: usize,
    /// Throughput in MB/s (decimal), matching the tables' units.
    pub mb_per_s: f64,
    /// Speedup over the single-thread point.
    pub speedup: f64,
    /// Parallel efficiency = speedup / threads.
    pub efficiency: f64,
}

/// Scalability sweep result for one codec and one direction.
#[derive(Debug, Clone)]
pub struct ScalingCurve {
    pub codec: String,
    pub points: Vec<ScalingPoint>,
}

impl ScalingCurve {
    /// The thread count with peak throughput (paper: 16–24 for most codecs,
    /// after which oversubscription degrades it).
    pub fn peak(&self) -> Option<&ScalingPoint> {
        self.points.iter().max_by(|a, b| {
            a.mb_per_s
                .partial_cmp(&b.mb_per_s)
                .expect("finite throughputs")
        })
    }
}

/// Which direction to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Compress,
    Decompress,
}

/// Sweep `factory(threads)` over `thread_counts`, timing the requested
/// direction on `data` with `reps` repetitions (fastest rep is kept, which
/// is standard practice for throughput curves).
pub fn scaling_sweep<F>(
    factory: F,
    data: &FloatData,
    thread_counts: &[usize],
    direction: Direction,
    reps: usize,
) -> Result<ScalingCurve>
where
    F: Fn(usize) -> Box<dyn Compressor>,
{
    assert!(!thread_counts.is_empty());
    let mut name = String::new();
    let mut raw: Vec<(usize, f64)> = Vec::with_capacity(thread_counts.len());

    // Reused across every thread count and repetition: the sweep measures
    // codec scalability, not allocator throughput.
    let mut payload = Vec::new();
    let mut scratch = FloatData::scratch();
    for &t in thread_counts {
        let codec = factory(t);
        name = codec.info().name.to_string();
        codec.compress_into(data, &mut payload)?;
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let secs = match direction {
                Direction::Compress => {
                    let t0 = Instant::now();
                    let n = codec.compress_into(data, &mut payload)?;
                    let s = t0.elapsed().as_secs_f64();
                    std::hint::black_box(n);
                    s
                }
                Direction::Decompress => {
                    let t0 = Instant::now();
                    codec.decompress_into(&payload, data.desc(), &mut scratch)?;
                    let s = t0.elapsed().as_secs_f64();
                    std::hint::black_box(scratch.bytes().len());
                    s
                }
            };
            best = best.min(secs);
        }
        let mbps = data.bytes().len() as f64 / best.max(f64::MIN_POSITIVE) / 1e6;
        raw.push((t, mbps));
    }

    let base = raw[0].1.max(f64::MIN_POSITIVE);
    let points = raw
        .into_iter()
        .map(|(threads, mb_per_s)| ScalingPoint {
            threads,
            mb_per_s,
            speedup: mb_per_s / base,
            efficiency: mb_per_s / base / threads as f64,
        })
        .collect();
    Ok(ScalingCurve {
        codec: name,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
    use crate::data::{DataDesc, Domain};

    /// Codec whose compression does `work / threads` spins, simulating
    /// perfect linear scaling.
    struct SpinCodec {
        threads: usize,
    }

    impl Compressor for SpinCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "spin",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: true,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            let spins = 2_000_000 / self.threads;
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            std::hint::black_box(acc);
            Ok(data.bytes().to_vec())
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    #[test]
    fn sweep_reports_speedup_over_base() {
        let data = FloatData::from_f32(&[0.0; 64], vec![64], Domain::Hpc).unwrap();
        let curve = scaling_sweep(
            |t| Box::new(SpinCodec { threads: t }),
            &data,
            &[1, 4],
            Direction::Compress,
            3,
        )
        .unwrap();
        assert_eq!(curve.codec, "spin");
        assert_eq!(curve.points.len(), 2);
        assert!((curve.points[0].speedup - 1.0).abs() < 1e-9);
        // 4 "threads" spin 4x less, so speedup should be well above 1.
        assert!(
            curve.points[1].speedup > 1.5,
            "speedup = {}",
            curve.points[1].speedup
        );
        assert_eq!(curve.peak().unwrap().threads, 4);
    }

    #[test]
    fn efficiency_is_speedup_per_thread() {
        let data = FloatData::from_f32(&[0.0; 16], vec![16], Domain::Hpc).unwrap();
        let curve = scaling_sweep(
            |t| Box::new(SpinCodec { threads: t }),
            &data,
            &[1, 2],
            Direction::Decompress,
            2,
        )
        .unwrap();
        for p in &curve.points {
            assert!((p.efficiency - p.speedup / p.threads as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_thread_counts() {
        assert_eq!(PAPER_THREAD_COUNTS, [1, 2, 4, 8, 16, 24, 32, 48]);
    }
}

//! Block/page-based compression (§6.2.1, Table 10).
//!
//! Database systems compress per page; the paper measures how CR/CT/DT react
//! to 4 KB, 64 KB, and 8 MB block sizes. [`BlockCodec`] wraps any
//! [`Compressor`], splitting the element stream into fixed-byte blocks that
//! are compressed independently, with a small directory so blocks can be
//! decompressed (and in a database, fetched) individually.
//!
//! Container layout (little-endian):
//!
//! ```text
//! block count      4 bytes
//! per block:       8-byte compressed length
//! payloads         concatenated
//! ```

use crate::codec::{AuxTime, CodecInfo, Compressor, OpProfile};
use crate::data::{DataDesc, FloatData};
use crate::error::{Error, Result};

/// Paper's three studied block sizes.
pub const BLOCK_4K: usize = 4 * 1024;
/// 64 KB — the paper's default nvCOMP/bitshuffle-scale block.
pub const BLOCK_64K: usize = 64 * 1024;
/// 8 MB — the paper's large-block configuration.
pub const BLOCK_8M: usize = 8 * 1024 * 1024;

/// A [`Compressor`] adaptor that compresses fixed-size blocks independently.
pub struct BlockCodec<C> {
    inner: C,
    block_bytes: usize,
}

impl<C: Compressor> BlockCodec<C> {
    /// Wrap `inner`, using blocks of `block_bytes` (rounded down to a whole
    /// number of elements at compress time; must fit at least one element).
    pub fn new(inner: C, block_bytes: usize) -> Self {
        assert!(block_bytes >= 4, "block must hold at least one element");
        BlockCodec { inner, block_bytes }
    }

    /// The wrapped codec.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    fn elems_per_block(&self, desc: &DataDesc) -> usize {
        (self.block_bytes / desc.precision.bytes()).max(1)
    }
}

impl<C: Compressor> Compressor for BlockCodec<C> {
    fn info(&self) -> CodecInfo {
        self.inner.info()
    }

    fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
        let desc = data.desc();
        let esize = desc.precision.bytes();
        let epb = self.elems_per_block(desc);
        let bpb = epb * esize;
        let bytes = data.bytes();
        let nblocks = bytes.len().div_ceil(bpb).max(1);
        if nblocks > u32::MAX as usize {
            return Err(Error::Unsupported("too many blocks".into()));
        }

        let mut payloads = Vec::with_capacity(nblocks);
        for chunk in bytes.chunks(bpb) {
            let block_desc = DataDesc::new(desc.precision, vec![chunk.len() / esize], desc.domain)?;
            let block = FloatData::from_bytes(block_desc, chunk.to_vec())?;
            payloads.push(self.inner.compress(&block)?);
        }

        let total: usize = payloads.iter().map(|p| p.len()).sum();
        let mut out = Vec::with_capacity(4 + 8 * payloads.len() + total);
        out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
        for p in &payloads {
            out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        }
        for p in &payloads {
            out.extend_from_slice(p);
        }
        Ok(out)
    }

    fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
        if payload.len() < 4 {
            return Err(Error::Corrupt("block container truncated".into()));
        }
        let nblocks = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
        let dir_end = 4 + 8 * nblocks;
        if payload.len() < dir_end {
            return Err(Error::Corrupt("block directory truncated".into()));
        }
        let mut lens = Vec::with_capacity(nblocks);
        for i in 0..nblocks {
            let off = 4 + 8 * i;
            let l = u64::from_le_bytes([
                payload[off],
                payload[off + 1],
                payload[off + 2],
                payload[off + 3],
                payload[off + 4],
                payload[off + 5],
                payload[off + 6],
                payload[off + 7],
            ]) as usize;
            lens.push(l);
        }

        let epb = self.elems_per_block(desc);
        let total_elems = desc.elements();
        let mut out = Vec::with_capacity(desc.byte_len());
        let mut pos = dir_end;
        let mut remaining = total_elems;
        for len in lens {
            if pos + len > payload.len() {
                return Err(Error::Corrupt("block payload truncated".into()));
            }
            let block_elems = remaining.min(epb);
            if block_elems == 0 {
                return Err(Error::Corrupt("more blocks than elements".into()));
            }
            let block_desc = DataDesc::new(desc.precision, vec![block_elems], desc.domain)?;
            let block = self
                .inner
                .decompress(&payload[pos..pos + len], &block_desc)?;
            out.extend_from_slice(block.bytes());
            pos += len;
            remaining -= block_elems;
        }
        if remaining != 0 {
            return Err(Error::Corrupt(format!(
                "{remaining} elements missing from blocks"
            )));
        }
        if pos != payload.len() {
            return Err(Error::Corrupt("trailing bytes after final block".into()));
        }
        if out.len() != desc.byte_len() {
            return Err(Error::Corrupt("reassembled size mismatch".into()));
        }
        FloatData::from_bytes(desc.clone(), out)
    }

    fn last_aux_time(&self) -> AuxTime {
        self.inner.last_aux_time()
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        self.inner.op_profile(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecClass, Community, Platform, PrecisionSupport};
    use crate::data::Domain;

    /// Store codec with a 2-byte header per call, so block overhead is visible.
    struct HeaderedStore;

    impl Compressor for HeaderedStore {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "hstore",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            let mut v = vec![0xAB, 0xCD];
            v.extend_from_slice(data.bytes());
            Ok(v)
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            if payload.len() < 2 || payload[0] != 0xAB || payload[1] != 0xCD {
                return Err(Error::Corrupt("bad hstore header".into()));
            }
            FloatData::from_bytes(desc.clone(), payload[2..].to_vec())
        }
    }

    fn sample(n: usize) -> FloatData {
        let vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        FloatData::from_f32(&vals, vec![n], Domain::TimeSeries).unwrap()
    }

    #[test]
    fn round_trip_exact_multiple() {
        let bc = BlockCodec::new(HeaderedStore, 16); // 4 f32 per block
        let data = sample(16);
        let payload = bc.compress(&data).unwrap();
        let back = bc.decompress(&payload, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
    }

    #[test]
    fn round_trip_ragged_tail() {
        let bc = BlockCodec::new(HeaderedStore, 16);
        for n in [1usize, 3, 5, 17, 31] {
            let data = sample(n);
            let payload = bc.compress(&data).unwrap();
            let back = bc.decompress(&payload, data.desc()).unwrap();
            assert_eq!(back.bytes(), data.bytes(), "n = {n}");
        }
    }

    #[test]
    fn small_blocks_cost_more_overhead() {
        let data = sample(1024);
        let small = BlockCodec::new(HeaderedStore, 16).compress(&data).unwrap();
        let large = BlockCodec::new(HeaderedStore, 4096)
            .compress(&data)
            .unwrap();
        // More blocks => more 2-byte headers + directory entries.
        assert!(small.len() > large.len());
    }

    #[test]
    fn rejects_corruption() {
        let bc = BlockCodec::new(HeaderedStore, 16);
        let data = sample(8);
        let payload = bc.compress(&data).unwrap();
        assert!(bc.decompress(&payload[..3], data.desc()).is_err());
        let mut trunc = payload.clone();
        trunc.truncate(payload.len() - 1);
        assert!(bc.decompress(&trunc, data.desc()).is_err());
        let mut extra = payload.clone();
        extra.push(0);
        assert!(bc.decompress(&extra, data.desc()).is_err());
    }

    #[test]
    fn block_constants_match_paper() {
        assert_eq!(BLOCK_4K, 4096);
        assert_eq!(BLOCK_64K, 65536);
        assert_eq!(BLOCK_8M, 8 * 1024 * 1024);
    }
}

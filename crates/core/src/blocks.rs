//! Block/page-based compression (§6.2.1, Table 10).
//!
//! Database systems compress per page; the paper measures how CR/CT/DT react
//! to 4 KB, 64 KB, and 8 MB block sizes. [`BlockCodec`] wraps any
//! [`Compressor`], splitting the element stream into fixed-byte blocks that
//! are compressed independently, with a small directory so blocks can be
//! decompressed (and in a database, fetched) individually.
//!
//! Container layout (little-endian):
//!
//! ```text
//! block count      4 bytes
//! per block:       8-byte compressed length
//! payloads         concatenated
//! ```

use crate::codec::{AuxTime, CodecInfo, Compressor, OpProfile};
use crate::data::{DataDesc, FloatData};
use crate::error::{Error, Result};

/// Paper's three studied block sizes.
pub const BLOCK_4K: usize = 4 * 1024;
/// 64 KB — the paper's default nvCOMP/bitshuffle-scale block.
pub const BLOCK_64K: usize = 64 * 1024;
/// 8 MB — the paper's large-block configuration.
pub const BLOCK_8M: usize = 8 * 1024 * 1024;

/// A [`Compressor`] adaptor that compresses fixed-size blocks independently.
pub struct BlockCodec<C> {
    inner: C,
    block_bytes: usize,
}

impl<C: Compressor> BlockCodec<C> {
    /// Wrap `inner`, using blocks of `block_bytes` (rounded down to a whole
    /// number of elements at compress time; must fit at least one element).
    pub fn new(inner: C, block_bytes: usize) -> Self {
        assert!(block_bytes >= 4, "block must hold at least one element");
        BlockCodec { inner, block_bytes }
    }

    /// The wrapped codec.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    fn elems_per_block(&self, desc: &DataDesc) -> usize {
        (self.block_bytes / desc.precision.bytes()).max(1)
    }
}

/// Per-block ceiling on declared-output vs payload size. Codecs typically
/// reserve `desc.byte_len()` before decoding, so a block descriptor is
/// handed to the codec only after this check — bounding the allocation a
/// hostile container can force to this multiple of the bytes it actually
/// carries. Far above any real compression ratio (a 512 KiB block would
/// need a sub-byte payload to hit it).
const MAX_BLOCK_EXPANSION: usize = 1 << 20;

/// Typed rejection for a decode whose descriptor claims vastly more output
/// than its payload could plausibly decode to.
///
/// Codecs typically reserve `desc.byte_len()` before decoding anything, so
/// every `decompress_into` implementation calls this **before touching the
/// allocator** — a tiny hostile payload carrying a petabyte-claiming
/// descriptor (via an `FCB1` frame, the runner, or a direct codec call)
/// gets a typed [`Error::Corrupt`] instead of forcing the reservation. The
/// ceiling is far above any real compression ratio: a legitimate decode
/// would need to expand a payload by over a million to trip it.
pub fn check_decode_claim(desc: &DataDesc, payload_len: usize) -> Result<()> {
    if desc.byte_len() / MAX_BLOCK_EXPANSION > payload_len {
        return Err(Error::Corrupt(format!(
            "descriptor claims {} decoded bytes from a {payload_len}-byte payload",
            desc.byte_len()
        )));
    }
    Ok(())
}

/// Decode one `elems`-element block from `payload` into `scratch`:
/// plausibility gate, decode, size check. The shared validation sequence —
/// any tightening here covers [`BlockCodec`] and both
/// [`crate::pipeline::Pipeline`] decode paths at once.
fn decode_block_scratch(
    codec: &dyn Compressor,
    desc: &DataDesc,
    elems: usize,
    payload: &[u8],
    scratch: &mut FloatData,
) -> Result<()> {
    let bdesc = DataDesc::new(desc.precision, vec![elems], desc.domain)?;
    check_decode_claim(&bdesc, payload.len())?;
    codec.decompress_into(payload, &bdesc, scratch)?;
    if scratch.bytes().len() != bdesc.byte_len() {
        return Err(Error::Corrupt("block decoded to a wrong size".into()));
    }
    Ok(())
}

/// [`decode_block_scratch`] + append: the sequential decode-loop step of
/// [`BlockCodec`] and the pipeline's inline path.
pub(crate) fn decode_block_into(
    codec: &dyn Compressor,
    desc: &DataDesc,
    elems: usize,
    payload: &[u8],
    scratch: &mut FloatData,
    bytes: &mut Vec<u8>,
) -> Result<()> {
    decode_block_scratch(codec, desc, elems, payload, scratch)?;
    bytes.extend_from_slice(scratch.bytes());
    Ok(())
}

/// Sequentially compress `data` in `bpb`-byte blocks through one reusable
/// scratch container and one reusable payload buffer; compressed blocks
/// accumulate in a contiguous blob. Shared by [`BlockCodec`] and the
/// single-threaded [`crate::pipeline::Pipeline`] path, which differ only in
/// the container they wrap around the `(lens, blob)` pair.
pub(crate) fn compress_blocks_sequential(
    codec: &dyn Compressor,
    data: &FloatData,
    bpb: usize,
    nblocks: usize,
) -> Result<(Vec<usize>, Vec<u8>)> {
    let desc = data.desc();
    let esize = desc.precision.bytes();
    let mut scratch = FloatData::scratch();
    let mut block_payload = Vec::new();
    let mut blob = Vec::new();
    let mut lens = Vec::with_capacity(nblocks);
    for chunk in data.bytes().chunks(bpb) {
        let block_desc = DataDesc::new(desc.precision, vec![chunk.len() / esize], desc.domain)?;
        scratch.refill_from_slice(&block_desc, chunk)?;
        let n = codec.compress_into(&scratch, &mut block_payload)?;
        lens.push(n);
        blob.extend_from_slice(&block_payload[..n]);
    }
    Ok((lens, blob))
}

impl<C: Compressor> Compressor for BlockCodec<C> {
    fn info(&self) -> CodecInfo {
        self.inner.info()
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let desc = data.desc();
        let esize = desc.precision.bytes();
        let epb = self.elems_per_block(desc);
        let bpb = epb * esize;
        let bytes = data.bytes();
        let nblocks = bytes.len().div_ceil(bpb).max(1);
        if nblocks > u32::MAX as usize {
            return Err(Error::Unsupported("too many blocks".into()));
        }

        let (lens, blob) = compress_blocks_sequential(&self.inner, data, bpb, nblocks)?;

        out.clear();
        out.reserve(4 + 8 * lens.len() + blob.len());
        out.extend_from_slice(&(lens.len() as u32).to_le_bytes());
        for &l in &lens {
            out.extend_from_slice(&(l as u64).to_le_bytes());
        }
        out.extend_from_slice(&blob);
        Ok(out.len())
    }

    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        if payload.len() < 4 {
            return Err(Error::Corrupt("block container truncated".into()));
        }
        let nblocks = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
        let dir_end = nblocks
            .checked_mul(8)
            .and_then(|n| n.checked_add(4))
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| Error::Corrupt("block directory truncated".into()))?;
        // lint: claim-checked(nblocks bounded by the dir_end byte check above)
        let mut lens = Vec::with_capacity(nblocks);
        for i in 0..nblocks {
            let off = 4 + 8 * i;
            lens.push(crate::wire::len64(crate::wire::le_u64(payload, off)?));
        }

        let epb = self.elems_per_block(desc);
        let total_elems = desc.elements();
        out.refill(desc, |bytes| {
            // lint: claim-checked(desc is gated by check_decode_claim at the pool/frame boundary)
            bytes.reserve(desc.byte_len());
            let mut block = FloatData::scratch();
            let mut pos = dir_end;
            let mut remaining = total_elems;
            for len in lens {
                if len > payload.len() - pos {
                    return Err(Error::Corrupt("block payload truncated".into()));
                }
                let block_elems = remaining.min(epb);
                if block_elems == 0 {
                    return Err(Error::Corrupt("more blocks than elements".into()));
                }
                decode_block_into(
                    &self.inner,
                    desc,
                    block_elems,
                    &payload[pos..pos + len],
                    &mut block,
                    bytes,
                )?;
                pos += len;
                remaining -= block_elems;
            }
            if remaining != 0 {
                return Err(Error::Corrupt(format!(
                    "{remaining} elements missing from blocks"
                )));
            }
            if pos != payload.len() {
                return Err(Error::Corrupt("trailing bytes after final block".into()));
            }
            if bytes.len() != desc.byte_len() {
                return Err(Error::Corrupt("reassembled size mismatch".into()));
            }
            Ok(())
        })
    }

    fn last_aux_time(&self) -> AuxTime {
        self.inner.last_aux_time()
    }

    fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
        self.inner.op_profile(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecClass, Community, Platform, PrecisionSupport};
    use crate::data::Domain;

    /// Store codec with a 2-byte header per call, so block overhead is visible.
    struct HeaderedStore;

    impl Compressor for HeaderedStore {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "hstore",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            let mut v = vec![0xAB, 0xCD];
            v.extend_from_slice(data.bytes());
            Ok(v)
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            if payload.len() < 2 || payload[0] != 0xAB || payload[1] != 0xCD {
                return Err(Error::Corrupt("bad hstore header".into()));
            }
            FloatData::from_bytes(desc.clone(), payload[2..].to_vec())
        }
    }

    fn sample(n: usize) -> FloatData {
        let vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        FloatData::from_f32(&vals, vec![n], Domain::TimeSeries).unwrap()
    }

    #[test]
    fn round_trip_exact_multiple() {
        let bc = BlockCodec::new(HeaderedStore, 16); // 4 f32 per block
        let data = sample(16);
        let payload = bc.compress(&data).unwrap();
        let back = bc.decompress(&payload, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
    }

    #[test]
    fn round_trip_ragged_tail() {
        let bc = BlockCodec::new(HeaderedStore, 16);
        for n in [1usize, 3, 5, 17, 31] {
            let data = sample(n);
            let payload = bc.compress(&data).unwrap();
            let back = bc.decompress(&payload, data.desc()).unwrap();
            assert_eq!(back.bytes(), data.bytes(), "n = {n}");
        }
    }

    #[test]
    fn small_blocks_cost_more_overhead() {
        let data = sample(1024);
        let small = BlockCodec::new(HeaderedStore, 16).compress(&data).unwrap();
        let large = BlockCodec::new(HeaderedStore, 4096)
            .compress(&data)
            .unwrap();
        // More blocks => more 2-byte headers + directory entries.
        assert!(small.len() > large.len());
    }

    #[test]
    fn rejects_corruption() {
        let bc = BlockCodec::new(HeaderedStore, 16);
        let data = sample(8);
        let payload = bc.compress(&data).unwrap();
        assert!(bc.decompress(&payload[..3], data.desc()).is_err());
        let mut trunc = payload.clone();
        trunc.truncate(payload.len() - 1);
        assert!(bc.decompress(&trunc, data.desc()).is_err());
        let mut extra = payload.clone();
        extra.push(0);
        assert!(bc.decompress(&extra, data.desc()).is_err());
    }

    #[test]
    fn block_constants_match_paper() {
        assert_eq!(BLOCK_4K, 4096);
        assert_eq!(BLOCK_64K, 65536);
        assert_eq!(BLOCK_8M, 8 * 1024 * 1024);
    }
}

//! The [`Compressor`] trait every method implements, plus the method
//! taxonomy from Table 1 of the paper (predictor class, platform, year,
//! community, parallelism).

use crate::data::{DataDesc, FloatData, Precision};
use crate::error::Result;

/// Predictor/transform family, used for the Figure 6b grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodecClass {
    /// Lorenzo-predictor based (fpzip, ndzip-CPU, ndzip-GPU).
    Lorenzo,
    /// Delta based (Gorilla, GFC, MPC, BUFF).
    Delta,
    /// Dictionary based (bitshuffle::LZ4, bitshuffle::zstd-class, Chimp, nv-lz4).
    Dictionary,
    /// Other prediction based (pFPC's hash predictors, nv-bitcomp, Dzip).
    Prediction,
}

impl CodecClass {
    /// Label used in figures.
    pub const fn label(self) -> &'static str {
        match self {
            CodecClass::Lorenzo => "LORENZO",
            CodecClass::Delta => "DELTA",
            CodecClass::Dictionary => "DICTIONARY",
            CodecClass::Prediction => "PREDICTION",
        }
    }
}

/// Hardware platform a method targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    Cpu,
    Gpu,
}

impl Platform {
    pub const fn label(self) -> &'static str {
        match self {
            Platform::Cpu => "CPU",
            Platform::Gpu => "GPU",
        }
    }
}

/// Which community published the method (Table 1 "domain" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Community {
    Hpc,
    Database,
    General,
}

/// Which precisions a codec accepts (Table 1 "precision" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrecisionSupport {
    SingleOnly,
    DoubleOnly,
    Both,
}

impl PrecisionSupport {
    /// Does this support level include `p`?
    #[inline]
    pub fn accepts(self, p: Precision) -> bool {
        match self {
            PrecisionSupport::SingleOnly => p == Precision::Single,
            PrecisionSupport::DoubleOnly => p == Precision::Double,
            PrecisionSupport::Both => true,
        }
    }
}

/// Static metadata about a compression method (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecInfo {
    /// Canonical lowercase name used in reports, e.g. `"bitshuffle-lz4"`.
    pub name: &'static str,
    /// Publication year (Figure 3 timeline).
    pub year: u16,
    /// Publishing community.
    pub community: Community,
    /// Predictor/transform family.
    pub class: CodecClass,
    /// CPU or GPU.
    pub platform: Platform,
    /// Whether the implementation is data-parallel.
    pub parallel: bool,
    /// Accepted precisions.
    pub precisions: PrecisionSupport,
}

/// Auxiliary (modelled) time not captured by wall-clock measurement of the
/// `compress`/`decompress` call itself — chiefly the simulated host-to-device
/// and device-to-host copies of GPU codecs (§6.1.4, Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AuxTime {
    /// Modelled host→device transfer seconds for the last operation.
    pub h2d_seconds: f64,
    /// Modelled device→host transfer seconds for the last operation.
    pub d2h_seconds: f64,
}

impl AuxTime {
    /// Total modelled transfer time.
    #[inline]
    pub fn total(&self) -> f64 {
        self.h2d_seconds + self.d2h_seconds
    }
}

/// Analytic operation/byte counts for one full pass over a dataset,
/// used by the roofline model (§6.3). Counts are per the dominant kernel
/// ("the most expensive function/loop that consumes greater than 40% of
/// computation time", Fig. 11 caption).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpProfile {
    /// Integer ALU operations executed by the dominant kernel.
    pub int_ops: u64,
    /// Floating-point operations executed by the dominant kernel.
    pub float_ops: u64,
    /// Bytes moved to/from memory by the dominant kernel.
    pub bytes_moved: u64,
}

impl OpProfile {
    /// Arithmetic intensity in integer ops per byte (CPU roofline axis).
    pub fn int_intensity(&self) -> f64 {
        if self.bytes_moved == 0 {
            0.0
        } else {
            self.int_ops as f64 / self.bytes_moved as f64
        }
    }

    /// Arithmetic intensity in FLOPs per byte (GPU roofline axis).
    pub fn float_intensity(&self) -> f64 {
        if self.bytes_moved == 0 {
            0.0
        } else {
            self.float_ops as f64 / self.bytes_moved as f64
        }
    }
}

/// A lossless floating-point compressor.
///
/// Implementations transform the payload of a [`FloatData`] into an opaque
/// byte stream and back. The stream carries *no* framing: the caller (see
/// [`crate::frame`]) records the descriptor. Round trips must be byte-exact,
/// including NaN payloads and signed zeros.
pub trait Compressor: Send + Sync {
    /// Static method metadata (Table 1 row).
    fn info(&self) -> CodecInfo;

    /// Compress `data` into an opaque payload.
    fn compress(&self, data: &FloatData) -> Result<Vec<u8>>;

    /// Reconstruct the exact original data from `payload`.
    ///
    /// `desc` is the descriptor of the original data (provided by the frame).
    fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData>;

    /// Modelled auxiliary time (host↔device transfers) for the most recent
    /// compress or decompress call. CPU codecs return zero.
    fn last_aux_time(&self) -> AuxTime {
        AuxTime::default()
    }

    /// Analytic operation profile of the dominant compression kernel over
    /// `desc`, for roofline placement. `None` if not modelled.
    fn op_profile(&self, _desc: &DataDesc) -> Option<OpProfile> {
        None
    }
}

/// Compress with an explicit lossless check: decompress the result and
/// compare byte-for-byte. Returns the payload.
pub fn compress_verified(codec: &dyn Compressor, data: &FloatData) -> Result<Vec<u8>> {
    let payload = codec.compress(data)?;
    let back = codec.decompress(&payload, data.desc())?;
    if back.bytes() != data.bytes() {
        return Err(crate::error::Error::LosslessViolation {
            codec: codec.info().name.to_string(),
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Domain;
    use crate::error::Error;

    /// A trivial "store" codec used to exercise the trait plumbing.
    struct StoreCodec;

    impl Compressor for StoreCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "store",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }

        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }

        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    /// A deliberately broken codec that loses the last byte.
    struct LossyCodec;

    impl Compressor for LossyCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "lossy",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }

        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }

        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            let mut bytes = payload.to_vec();
            if let Some(last) = bytes.last_mut() {
                *last ^= 0xFF;
            }
            FloatData::from_bytes(desc.clone(), bytes)
        }
    }

    #[test]
    fn verified_compression_passes_for_store() {
        let data = FloatData::from_f32(&[1.0, 2.0, 3.0], vec![3], Domain::Hpc).unwrap();
        let payload = compress_verified(&StoreCodec, &data).unwrap();
        assert_eq!(payload, data.bytes());
    }

    #[test]
    fn verified_compression_catches_lossy_codec() {
        let data = FloatData::from_f32(&[1.0, 2.0, 3.0], vec![3], Domain::Hpc).unwrap();
        let err = compress_verified(&LossyCodec, &data).unwrap_err();
        assert!(matches!(err, Error::LosslessViolation { .. }));
    }

    #[test]
    fn precision_support_logic() {
        assert!(PrecisionSupport::Both.accepts(Precision::Single));
        assert!(PrecisionSupport::Both.accepts(Precision::Double));
        assert!(PrecisionSupport::SingleOnly.accepts(Precision::Single));
        assert!(!PrecisionSupport::SingleOnly.accepts(Precision::Double));
        assert!(PrecisionSupport::DoubleOnly.accepts(Precision::Double));
        assert!(!PrecisionSupport::DoubleOnly.accepts(Precision::Single));
    }

    #[test]
    fn op_profile_intensities() {
        let p = OpProfile {
            int_ops: 100,
            float_ops: 50,
            bytes_moved: 200,
        };
        assert!((p.int_intensity() - 0.5).abs() < 1e-12);
        assert!((p.float_intensity() - 0.25).abs() < 1e-12);
        let z = OpProfile::default();
        assert_eq!(z.int_intensity(), 0.0);
        assert_eq!(z.float_intensity(), 0.0);
    }

    #[test]
    fn aux_time_totals() {
        let a = AuxTime {
            h2d_seconds: 0.25,
            d2h_seconds: 0.5,
        };
        assert!((a.total() - 0.75).abs() < 1e-12);
        assert_eq!(AuxTime::default().total(), 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(CodecClass::Lorenzo.label(), "LORENZO");
        assert_eq!(CodecClass::Dictionary.label(), "DICTIONARY");
        assert_eq!(Platform::Cpu.label(), "CPU");
        assert_eq!(Platform::Gpu.label(), "GPU");
    }
}

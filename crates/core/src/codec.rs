//! The [`Compressor`] trait every method implements, plus the method
//! taxonomy from Table 1 of the paper (predictor class, platform, year,
//! community, parallelism).

use crate::data::{DataDesc, FloatData, Precision};
use crate::error::Result;

/// Predictor/transform family, used for the Figure 6b grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodecClass {
    /// Lorenzo-predictor based (fpzip, ndzip-CPU, ndzip-GPU).
    Lorenzo,
    /// Delta based (Gorilla, GFC, MPC, BUFF).
    Delta,
    /// Dictionary based (bitshuffle::LZ4, bitshuffle::zstd-class, Chimp, nv-lz4).
    Dictionary,
    /// Other prediction based (pFPC's hash predictors, nv-bitcomp, Dzip).
    Prediction,
}

impl CodecClass {
    /// Label used in figures.
    pub const fn label(self) -> &'static str {
        match self {
            CodecClass::Lorenzo => "LORENZO",
            CodecClass::Delta => "DELTA",
            CodecClass::Dictionary => "DICTIONARY",
            CodecClass::Prediction => "PREDICTION",
        }
    }
}

/// Hardware platform a method targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    Cpu,
    Gpu,
}

impl Platform {
    pub const fn label(self) -> &'static str {
        match self {
            Platform::Cpu => "CPU",
            Platform::Gpu => "GPU",
        }
    }
}

/// Which community published the method (Table 1 "domain" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Community {
    Hpc,
    Database,
    General,
}

/// Which precisions a codec accepts (Table 1 "precision" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrecisionSupport {
    SingleOnly,
    DoubleOnly,
    Both,
}

impl PrecisionSupport {
    /// Does this support level include `p`?
    #[inline]
    pub fn accepts(self, p: Precision) -> bool {
        match self {
            PrecisionSupport::SingleOnly => p == Precision::Single,
            PrecisionSupport::DoubleOnly => p == Precision::Double,
            PrecisionSupport::Both => true,
        }
    }
}

/// Static metadata about a compression method (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecInfo {
    /// Canonical lowercase name used in reports, e.g. `"bitshuffle-lz4"`.
    pub name: &'static str,
    /// Publication year (Figure 3 timeline).
    pub year: u16,
    /// Publishing community.
    pub community: Community,
    /// Predictor/transform family.
    pub class: CodecClass,
    /// CPU or GPU.
    pub platform: Platform,
    /// Whether the implementation is data-parallel.
    pub parallel: bool,
    /// Accepted precisions.
    pub precisions: PrecisionSupport,
}

/// Auxiliary (modelled) time not captured by wall-clock measurement of the
/// `compress`/`decompress` call itself — chiefly the simulated host-to-device
/// and device-to-host copies of GPU codecs (§6.1.4, Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AuxTime {
    /// Modelled host→device transfer seconds for the last operation.
    pub h2d_seconds: f64,
    /// Modelled device→host transfer seconds for the last operation.
    pub d2h_seconds: f64,
}

impl AuxTime {
    /// Total modelled transfer time.
    #[inline]
    pub fn total(&self) -> f64 {
        self.h2d_seconds + self.d2h_seconds
    }
}

/// Analytic operation/byte counts for one full pass over a dataset,
/// used by the roofline model (§6.3). Counts are per the dominant kernel
/// ("the most expensive function/loop that consumes greater than 40% of
/// computation time", Fig. 11 caption).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpProfile {
    /// Integer ALU operations executed by the dominant kernel.
    pub int_ops: u64,
    /// Floating-point operations executed by the dominant kernel.
    pub float_ops: u64,
    /// Bytes moved to/from memory by the dominant kernel.
    pub bytes_moved: u64,
}

impl OpProfile {
    /// Arithmetic intensity in integer ops per byte (CPU roofline axis).
    pub fn int_intensity(&self) -> f64 {
        if self.bytes_moved == 0 {
            0.0
        } else {
            self.int_ops as f64 / self.bytes_moved as f64
        }
    }

    /// Arithmetic intensity in FLOPs per byte (GPU roofline axis).
    pub fn float_intensity(&self) -> f64 {
        if self.bytes_moved == 0 {
            0.0
        } else {
            self.float_ops as f64 / self.bytes_moved as f64
        }
    }
}

/// A lossless floating-point compressor.
///
/// Implementations transform the payload of a [`FloatData`] into an opaque
/// byte stream and back. The payload is self-contained at the codec's
/// discretion — most codecs embed small internal headers such as element
/// counts or per-chunk directories — but it does **not** carry the data
/// descriptor: the caller (see [`crate::frame`]) records codec name,
/// precision, and shape out of band and supplies them again at decompression.
/// Round trips must be byte-exact, including NaN payloads and signed zeros.
///
/// # Buffer-reusing and allocating forms
///
/// The hot path is the `_into` pair: [`compress_into`](Self::compress_into)
/// and [`decompress_into`](Self::decompress_into) write into caller-owned
/// buffers so a measurement or pipeline loop performs no steady-state heap
/// allocation. The allocating [`compress`](Self::compress) /
/// [`decompress`](Self::decompress) forms are thin convenience wrappers.
///
/// All four methods have default implementations, each pair bridging to the
/// other; an implementation **must override at least one method of each
/// pair** (leaving both defaults would recurse forever). Production codecs
/// implement the `_into` forms natively and inherit the wrappers.
pub trait Compressor: Send + Sync {
    /// Static method metadata (Table 1 row).
    fn info(&self) -> CodecInfo;

    /// Compress `data` into `out`, replacing its contents (capacity is
    /// reused, never shrunk). Returns the payload length, which equals
    /// `out.len()` on success.
    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let payload = self.compress(data)?;
        out.clear();
        out.extend_from_slice(&payload);
        Ok(out.len())
    }

    /// Reconstruct the exact original data from `payload` into `out`,
    /// replacing its descriptor and contents (byte capacity is reused).
    /// Seed `out` with [`FloatData::scratch`] and keep it across calls.
    ///
    /// `desc` is the descriptor of the original data (provided by the frame).
    fn decompress_into(&self, payload: &[u8], desc: &DataDesc, out: &mut FloatData) -> Result<()> {
        *out = self.decompress(payload, desc)?;
        Ok(())
    }

    /// Compress `data` into a freshly allocated payload.
    fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compress_into(data, &mut out)?;
        Ok(out)
    }

    /// Reconstruct the exact original data from `payload`.
    ///
    /// `desc` is the descriptor of the original data (provided by the frame).
    fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
        let mut out = FloatData::scratch();
        self.decompress_into(payload, desc, &mut out)?;
        Ok(out)
    }

    /// Modelled auxiliary time (host↔device transfers) for the most recent
    /// compress or decompress call. CPU codecs return zero.
    ///
    /// On an instance shared across threads (the registry hands out
    /// `Arc<dyn Compressor>`), "most recent" means the most recently
    /// *completed* call — always one call's coherent totals, but callers
    /// that need per-call attribution must not run the instance
    /// concurrently.
    fn last_aux_time(&self) -> AuxTime {
        AuxTime::default()
    }

    /// Analytic operation profile of the dominant compression kernel over
    /// `desc`, for roofline placement. `None` if not modelled.
    fn op_profile(&self, _desc: &DataDesc) -> Option<OpProfile> {
        None
    }
}

/// Forward the whole trait through a smart pointer / reference so adaptors
/// like [`crate::blocks::BlockCodec`] can wrap `&dyn Compressor`,
/// `Box<dyn Compressor>`, or the registry's `Arc<dyn Compressor>` directly.
macro_rules! forward_compressor {
    ($ty:ty) => {
        impl<T: Compressor + ?Sized> Compressor for $ty {
            fn info(&self) -> CodecInfo {
                (**self).info()
            }
            fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
                (**self).compress_into(data, out)
            }
            fn decompress_into(
                &self,
                payload: &[u8],
                desc: &DataDesc,
                out: &mut FloatData,
            ) -> Result<()> {
                (**self).decompress_into(payload, desc, out)
            }
            fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
                (**self).compress(data)
            }
            fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
                (**self).decompress(payload, desc)
            }
            fn last_aux_time(&self) -> AuxTime {
                (**self).last_aux_time()
            }
            fn op_profile(&self, desc: &DataDesc) -> Option<OpProfile> {
                (**self).op_profile(desc)
            }
        }
    };
}

forward_compressor!(&T);
forward_compressor!(Box<T>);
forward_compressor!(std::sync::Arc<T>);

/// Compress with an explicit lossless check: decompress the result and
/// compare byte-for-byte. Returns the payload.
pub fn compress_verified(codec: &dyn Compressor, data: &FloatData) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut scratch = FloatData::scratch();
    compress_verified_into(codec, data, &mut out, &mut scratch)?;
    Ok(out)
}

/// Buffer-reusing form of [`compress_verified`]: the payload lands in `out`
/// and the round-trip check decodes into `scratch`, so a caller looping over
/// many inputs allocates nothing in steady state. Returns the payload length.
pub fn compress_verified_into(
    codec: &dyn Compressor,
    data: &FloatData,
    out: &mut Vec<u8>,
    scratch: &mut FloatData,
) -> Result<usize> {
    let len = codec.compress_into(data, out)?;
    codec.decompress_into(&out[..len], data.desc(), scratch)?;
    if scratch.bytes() != data.bytes() {
        return Err(crate::error::Error::LosslessViolation {
            codec: codec.info().name.to_string(),
        });
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Domain;
    use crate::error::Error;

    /// A trivial "store" codec used to exercise the trait plumbing.
    struct StoreCodec;

    impl Compressor for StoreCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "store",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }

        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }

        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    /// A deliberately broken codec that loses the last byte.
    struct LossyCodec;

    impl Compressor for LossyCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "lossy",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }

        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }

        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            let mut bytes = payload.to_vec();
            if let Some(last) = bytes.last_mut() {
                *last ^= 0xFF;
            }
            FloatData::from_bytes(desc.clone(), bytes)
        }
    }

    /// A codec implementing only the `_into` pair; the allocating forms
    /// must come from the trait defaults.
    struct IntoOnlyCodec;

    impl Compressor for IntoOnlyCodec {
        fn info(&self) -> CodecInfo {
            StoreCodec.info()
        }

        fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
            out.clear();
            out.extend_from_slice(data.bytes());
            Ok(out.len())
        }

        fn decompress_into(
            &self,
            payload: &[u8],
            desc: &DataDesc,
            out: &mut FloatData,
        ) -> Result<()> {
            out.refill_from_slice(desc, payload)
        }
    }

    #[test]
    fn verified_compression_passes_for_store() {
        let data = FloatData::from_f32(&[1.0, 2.0, 3.0], vec![3], Domain::Hpc).unwrap();
        let payload = compress_verified(&StoreCodec, &data).unwrap();
        assert_eq!(payload, data.bytes());
    }

    #[test]
    fn default_bridges_work_both_ways() {
        let data = FloatData::from_f32(&[4.0, 5.0], vec![2], Domain::Hpc).unwrap();

        // Old-style impl reached through the `_into` API.
        let mut out = vec![0xEE; 64];
        let n = StoreCodec.compress_into(&data, &mut out).unwrap();
        assert_eq!(&out[..n], data.bytes());
        let mut scratch = FloatData::scratch();
        StoreCodec
            .decompress_into(&out[..n], data.desc(), &mut scratch)
            .unwrap();
        assert_eq!(scratch.bytes(), data.bytes());

        // `_into`-style impl reached through the allocating API.
        let payload = IntoOnlyCodec.compress(&data).unwrap();
        assert_eq!(payload, data.bytes());
        let back = IntoOnlyCodec.decompress(&payload, data.desc()).unwrap();
        assert_eq!(back.bytes(), data.bytes());
        assert_eq!(back.desc(), data.desc());
    }

    #[test]
    fn verified_into_reuses_buffers() {
        let data = FloatData::from_f32(&[1.0, 2.0, 3.0], vec![3], Domain::Hpc).unwrap();
        let mut out = Vec::new();
        let mut scratch = FloatData::scratch();
        for _ in 0..3 {
            let n = compress_verified_into(&IntoOnlyCodec, &data, &mut out, &mut scratch).unwrap();
            assert_eq!(n, data.bytes().len());
            assert_eq!(&out[..n], data.bytes());
        }
        let err = compress_verified_into(&LossyCodec, &data, &mut out, &mut scratch).unwrap_err();
        assert!(matches!(err, Error::LosslessViolation { .. }));
    }

    #[test]
    fn verified_compression_catches_lossy_codec() {
        let data = FloatData::from_f32(&[1.0, 2.0, 3.0], vec![3], Domain::Hpc).unwrap();
        let err = compress_verified(&LossyCodec, &data).unwrap_err();
        assert!(matches!(err, Error::LosslessViolation { .. }));
    }

    #[test]
    fn precision_support_logic() {
        assert!(PrecisionSupport::Both.accepts(Precision::Single));
        assert!(PrecisionSupport::Both.accepts(Precision::Double));
        assert!(PrecisionSupport::SingleOnly.accepts(Precision::Single));
        assert!(!PrecisionSupport::SingleOnly.accepts(Precision::Double));
        assert!(PrecisionSupport::DoubleOnly.accepts(Precision::Double));
        assert!(!PrecisionSupport::DoubleOnly.accepts(Precision::Single));
    }

    #[test]
    fn op_profile_intensities() {
        let p = OpProfile {
            int_ops: 100,
            float_ops: 50,
            bytes_moved: 200,
        };
        assert!((p.int_intensity() - 0.5).abs() < 1e-12);
        assert!((p.float_intensity() - 0.25).abs() < 1e-12);
        let z = OpProfile::default();
        assert_eq!(z.int_intensity(), 0.0);
        assert_eq!(z.float_intensity(), 0.0);
    }

    #[test]
    fn aux_time_totals() {
        let a = AuxTime {
            h2d_seconds: 0.25,
            d2h_seconds: 0.5,
        };
        assert!((a.total() - 0.75).abs() < 1e-12);
        assert_eq!(AuxTime::default().total(), 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(CodecClass::Lorenzo.label(), "LORENZO");
        assert_eq!(CodecClass::Dictionary.label(), "DICTIONARY");
        assert_eq!(Platform::Cpu.label(), "CPU");
        assert_eq!(Platform::Gpu.label(), "GPU");
    }
}

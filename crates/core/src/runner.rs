//! The benchmark run matrix: codecs × datasets → measurements.
//!
//! This is the engine behind Table 4 (compression ratios), Table 5 /
//! Figure 8 (throughputs), Table 6 (end-to-end wall time) and the inputs to
//! the Friedman ranking (Figure 7b). Runs that fail (a codec rejecting a
//! precision, or a runtime error — the paper reports 2.0% CPU / 7.3% GPU
//! failures, Observation 2) are recorded as [`CellOutcome::Failed`] and the
//! cell is excluded from aggregates, mirroring the dashes in Table 4.

use crate::codec::{AuxTime, CodecInfo, Compressor};
use crate::data::{DataDesc, FloatData};
use crate::error::Error;
use crate::metrics::Measurement;
use crate::pipeline::Pipeline;
use crate::pool::WorkerPool;
use std::sync::Arc;
use std::time::Instant;

/// A named dataset instance handed to the runner.
pub struct NamedData {
    pub name: String,
    pub data: FloatData,
}

impl NamedData {
    pub fn new(name: impl Into<String>, data: FloatData) -> Self {
        NamedData {
            name: name.into(),
            data,
        }
    }
}

/// Outcome of one (codec, dataset) cell.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// Codec round-tripped the data losslessly; measurement attached.
    Ok(Measurement),
    /// The codec refused or crashed on this input (paper's "-" cells).
    Failed(String),
}

impl CellOutcome {
    /// The measurement, if the run succeeded.
    pub fn measurement(&self) -> Option<&Measurement> {
        match self {
            CellOutcome::Ok(m) => Some(m),
            CellOutcome::Failed(_) => None,
        }
    }

    /// The compression ratio, if the run succeeded.
    pub fn ratio(&self) -> Option<f64> {
        self.measurement().map(|m| m.compression_ratio())
    }
}

/// Full result matrix of a benchmark campaign.
pub struct RunMatrix {
    /// Codec names, row order.
    pub codecs: Vec<String>,
    /// Dataset names, column order.
    pub datasets: Vec<String>,
    /// `cells[codec_idx][dataset_idx]`.
    pub cells: Vec<Vec<CellOutcome>>,
}

impl RunMatrix {
    /// Look up a cell by names.
    pub fn cell(&self, codec: &str, dataset: &str) -> Option<&CellOutcome> {
        let ci = self.codecs.iter().position(|c| c == codec)?;
        let di = self.datasets.iter().position(|d| d == dataset)?;
        Some(&self.cells[ci][di])
    }

    /// All successful compression ratios for one codec, column-ordered.
    pub fn ratios_for_codec(&self, codec: &str) -> Vec<f64> {
        let Some(ci) = self.codecs.iter().position(|c| c == codec) else {
            return Vec::new();
        };
        self.cells[ci].iter().filter_map(|c| c.ratio()).collect()
    }

    /// Every successful ratio in the matrix (Figure 5 input).
    pub fn all_ratios(&self) -> Vec<f64> {
        self.cells
            .iter()
            .flat_map(|row| row.iter().filter_map(|c| c.ratio()))
            .collect()
    }

    /// Fraction of failed cells for a set of codec names (Observation 2's
    /// robustness comparison: "2.0% of CPU experiments incurred runtime
    /// errors, while 7.3% of the GPU experiments were killed").
    pub fn failure_rate(&self, codec_names: &[&str]) -> f64 {
        let mut total = 0usize;
        let mut failed = 0usize;
        for (ci, codec) in self.codecs.iter().enumerate() {
            if !codec_names.contains(&codec.as_str()) {
                continue;
            }
            for cell in &self.cells[ci] {
                total += 1;
                if matches!(cell, CellOutcome::Failed(_)) {
                    failed += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            failed as f64 / total as f64
        }
    }

    /// The ratio matrix restricted to datasets where *every* listed codec
    /// succeeded — the complete-cases input required by the Friedman test.
    /// Returns (dataset names, rows per codec in `codec_names` order).
    pub fn complete_ratio_rows(&self, codec_names: &[&str]) -> (Vec<String>, Vec<Vec<f64>>) {
        let idxs: Vec<usize> = codec_names
            .iter()
            .filter_map(|n| self.codecs.iter().position(|c| c == n))
            .collect();
        let mut kept_datasets = Vec::new();
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); idxs.len()];
        'data: for (di, dname) in self.datasets.iter().enumerate() {
            let mut col = Vec::with_capacity(idxs.len());
            for &ci in &idxs {
                match self.cells[ci][di].ratio() {
                    Some(r) => col.push(r),
                    None => continue 'data,
                }
            }
            kept_datasets.push(dname.clone());
            for (k, r) in col.into_iter().enumerate() {
                rows[k].push(r);
            }
        }
        (kept_datasets, rows)
    }
}

/// Configuration for a campaign run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Timed repetitions per cell; times are averaged (paper uses 10).
    pub repetitions: usize,
    /// Verify losslessness on every repetition (always on for tests; the
    /// harness keeps it on — the check is cheap relative to compression).
    pub verify: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            repetitions: 1,
            verify: true,
        }
    }
}

/// How one cell's compression work is executed: directly on the caller
/// thread, as single jobs on the persistent [`WorkerPool`] engine, or
/// block-parallel through a [`Pipeline`].
enum Exec<'a> {
    Inline(&'a dyn Compressor),
    Pooled(&'a WorkerPool, &'a Arc<dyn Compressor>),
    Pipelined(&'a Pipeline),
}

impl Exec<'_> {
    fn info(&self) -> CodecInfo {
        match self {
            Exec::Inline(c) => c.info(),
            Exec::Pooled(_, c) => c.info(),
            Exec::Pipelined(p) => p.codec().info(),
        }
    }

    fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> crate::error::Result<usize> {
        match self {
            Exec::Inline(c) => c.compress_into(data, out),
            Exec::Pooled(pool, c) => pool.run_compress(c, data, out),
            Exec::Pipelined(p) => p.compress_into(data, out),
        }
    }

    fn decompress_into(
        &self,
        payload: &[u8],
        desc: &DataDesc,
        out: &mut FloatData,
    ) -> crate::error::Result<()> {
        match self {
            Exec::Inline(c) => c.decompress_into(payload, desc, out),
            Exec::Pooled(pool, c) => pool.run_decompress(c, payload, desc, out),
            Exec::Pipelined(p) => p.decompress_into(payload, out),
        }
    }

    fn last_aux_time(&self) -> AuxTime {
        match self {
            Exec::Inline(c) => c.last_aux_time(),
            Exec::Pooled(_, c) => c.last_aux_time(),
            Exec::Pipelined(p) => p.codec().last_aux_time(),
        }
    }
}

/// Run one codec over one dataset, timing compression and decompression.
///
/// The timed loop drives the buffer-reusing
/// [`compress_into`](Compressor::compress_into) /
/// [`decompress_into`](Compressor::decompress_into) forms with scratch
/// buffers held across repetitions, so after the first repetition the
/// measurement captures codec work, not the allocator.
pub fn run_cell(codec: &dyn Compressor, data: &FloatData, cfg: RunConfig) -> CellOutcome {
    run_cell_exec(&Exec::Inline(codec), data, cfg)
}

/// [`run_cell`] routed through the persistent [`WorkerPool`] engine: each
/// timed call is one submitted-and-collected pool job, so the measurement
/// reflects a warm worker (steady-state scratch, no thread spawn) plus the
/// engine's dispatch cost — which includes the O(n) copies into and out of
/// the job slot, bounded by memcpy bandwidth. For multi-GB/s codecs those
/// copies are a real fraction of the cell time: these are
/// "executed-through-the-engine" numbers, deliberately not identical to
/// [`run_cell`]'s direct-call methodology (the paper-shape assertions use
/// the direct form). Payload bytes are identical to the inline form — the
/// job is not block-decomposed.
pub fn run_cell_pooled(
    pool: &WorkerPool,
    codec: &Arc<dyn Compressor>,
    data: &FloatData,
    cfg: RunConfig,
) -> CellOutcome {
    run_cell_exec(&Exec::Pooled(pool, codec), data, cfg)
}

/// [`run_cell`] through a block-parallel [`Pipeline`]: compression produces
/// (and decompression consumes) the chunked `FCB2` frame, so the measured
/// compressed size includes the frame's block directory — the container
/// accounting the Table 10 block study wants.
pub fn run_cell_pipelined(pipeline: &Pipeline, data: &FloatData, cfg: RunConfig) -> CellOutcome {
    run_cell_exec(&Exec::Pipelined(pipeline), data, cfg)
}

fn run_cell_exec(exec: &Exec<'_>, data: &FloatData, cfg: RunConfig) -> CellOutcome {
    let info = exec.info();
    if !info.precisions.accepts(data.desc().precision) {
        return CellOutcome::Failed(format!(
            "{} does not support {:?}",
            info.name,
            data.desc().precision
        ));
    }
    // A cell whose result could never be framed (oversized codec name,
    // >255 dims) is a failure, not a panic-in-waiting.
    if let Err(e) = crate::frame::check_frame_params(info.name, data.desc()) {
        return CellOutcome::Failed(e.to_string());
    }

    let mut payload = Vec::new();
    let mut back = FloatData::scratch();
    let mut runs = Vec::with_capacity(cfg.repetitions.max(1));
    for _ in 0..cfg.repetitions.max(1) {
        let t0 = Instant::now();
        let comp_bytes = match exec.compress_into(data, &mut payload) {
            Ok(n) => n,
            Err(e) => return CellOutcome::Failed(e.to_string()),
        };
        let comp_seconds = t0.elapsed().as_secs_f64();
        let comp_aux = exec.last_aux_time();

        let t1 = Instant::now();
        if let Err(e) = exec.decompress_into(&payload[..comp_bytes], data.desc(), &mut back) {
            return CellOutcome::Failed(e.to_string());
        }
        let decomp_seconds = t1.elapsed().as_secs_f64();
        let decomp_aux = exec.last_aux_time();

        if cfg.verify && back.bytes() != data.bytes() {
            return CellOutcome::Failed(
                Error::LosslessViolation {
                    codec: info.name.to_string(),
                }
                .to_string(),
            );
        }
        runs.push(Measurement {
            orig_bytes: data.bytes().len() as u64,
            comp_bytes: comp_bytes as u64,
            comp_seconds,
            decomp_seconds,
            comp_transfer_seconds: comp_aux.total(),
            decomp_transfer_seconds: decomp_aux.total(),
        });
    }
    match Measurement::average_of(&runs) {
        Some(avg) => CellOutcome::Ok(avg),
        None => CellOutcome::Failed("no repetitions ran".into()),
    }
}

/// Run the full codec × dataset matrix.
pub fn run_matrix(codecs: &[&dyn Compressor], datasets: &[NamedData], cfg: RunConfig) -> RunMatrix {
    let mut cells = Vec::with_capacity(codecs.len());
    for codec in codecs {
        let mut row = Vec::with_capacity(datasets.len());
        for ds in datasets {
            row.push(run_cell(*codec, &ds.data, cfg));
        }
        cells.push(row);
    }
    RunMatrix {
        codecs: codecs.iter().map(|c| c.info().name.to_string()).collect(),
        datasets: datasets.iter().map(|d| d.name.clone()).collect(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
    use crate::data::{DataDesc, Domain};
    use crate::error::Result;

    struct StoreCodec(&'static str, PrecisionSupport);

    impl Compressor for StoreCodec {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: self.0,
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: self.1,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    fn datasets() -> Vec<NamedData> {
        vec![
            NamedData::new(
                "single",
                FloatData::from_f32(&[1.0, 2.0, 3.0, 4.0], vec![4], Domain::Hpc).unwrap(),
            ),
            NamedData::new(
                "double",
                FloatData::from_f64(&[1.0, 2.0], vec![2], Domain::Database).unwrap(),
            ),
        ]
    }

    #[test]
    fn matrix_shape_and_lookup() {
        let a = StoreCodec("a", PrecisionSupport::Both);
        let b = StoreCodec("b", PrecisionSupport::DoubleOnly);
        let m = run_matrix(&[&a, &b], &datasets(), RunConfig::default());
        assert_eq!(m.codecs, vec!["a", "b"]);
        assert_eq!(m.datasets, vec!["single", "double"]);
        assert!(m.cell("a", "single").unwrap().ratio().is_some());
        // b rejects single precision => Failed cell, like the paper's dashes.
        assert!(matches!(
            m.cell("b", "single").unwrap(),
            CellOutcome::Failed(_)
        ));
        assert!(m.cell("b", "double").unwrap().ratio().is_some());
        assert!(m.cell("zz", "single").is_none());
    }

    #[test]
    fn failure_rate_counts_only_requested_codecs() {
        let a = StoreCodec("a", PrecisionSupport::Both);
        let b = StoreCodec("b", PrecisionSupport::DoubleOnly);
        let m = run_matrix(&[&a, &b], &datasets(), RunConfig::default());
        assert_eq!(m.failure_rate(&["a"]), 0.0);
        assert!((m.failure_rate(&["b"]) - 0.5).abs() < 1e-12);
        assert!((m.failure_rate(&["a", "b"]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn complete_rows_drop_failed_datasets() {
        let a = StoreCodec("a", PrecisionSupport::Both);
        let b = StoreCodec("b", PrecisionSupport::DoubleOnly);
        let m = run_matrix(&[&a, &b], &datasets(), RunConfig::default());
        let (kept, rows) = m.complete_ratio_rows(&["a", "b"]);
        assert_eq!(kept, vec!["double"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 1);
    }

    #[test]
    fn pooled_and_pipelined_cells_match_inline_results() {
        use crate::pool::{PoolConfig, WorkerPool};
        use crate::registry::{CodecRegistry, RegistryEntry};

        let data = FloatData::from_f64(
            &(0..512).map(|i| i as f64 * 0.5).collect::<Vec<_>>(),
            vec![512],
            Domain::TimeSeries,
        )
        .unwrap();
        let cfg = RunConfig {
            repetitions: 2,
            verify: true,
        };

        let inline = run_cell(&StoreCodec("a", PrecisionSupport::Both), &data, cfg);

        let pool = WorkerPool::new(PoolConfig::with_threads(2));
        let codec: Arc<dyn Compressor> = Arc::new(StoreCodec("a", PrecisionSupport::Both));
        let pooled = run_cell_pooled(&pool, &codec, &data, cfg);

        // Same payload bytes: the pooled job is not block-decomposed.
        assert_eq!(
            inline.measurement().unwrap().comp_bytes,
            pooled.measurement().unwrap().comp_bytes
        );

        // The pipelined cell's compressed size includes the FCB2 directory.
        let registry = CodecRegistry::new()
            .with(RegistryEntry::new(StoreCodec("a", PrecisionSupport::Both)).thread_scalable());
        let p = Pipeline::new(&registry, "a")
            .unwrap()
            .block_elems(64)
            .threads(2);
        let piped = run_cell_pipelined(&p, &data, cfg);
        assert!(piped.measurement().unwrap().comp_bytes > inline.measurement().unwrap().comp_bytes);
        assert!(piped.ratio().is_some());
    }

    #[test]
    fn pooled_cell_failures_are_reported_not_hung() {
        use crate::pool::{PoolConfig, WorkerPool};
        let pool = WorkerPool::new(PoolConfig::with_threads(1));
        let codec: Arc<dyn Compressor> = Arc::new(StoreCodec("d", PrecisionSupport::DoubleOnly));
        let single = FloatData::from_f32(&[1.0, 2.0], vec![2], Domain::Hpc).unwrap();
        let out = run_cell_pooled(&pool, &codec, &single, RunConfig::default());
        assert!(matches!(out, CellOutcome::Failed(_)));
    }

    #[test]
    fn store_codec_ratio_is_one() {
        let a = StoreCodec("a", PrecisionSupport::Both);
        let m = run_matrix(
            &[&a],
            &datasets(),
            RunConfig {
                repetitions: 3,
                verify: true,
            },
        );
        let r = m.cell("a", "single").unwrap().ratio().unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        assert_eq!(m.all_ratios().len(), 2);
        assert_eq!(m.ratios_for_codec("a").len(), 2);
        assert!(m.ratios_for_codec("nope").is_empty());
    }
}

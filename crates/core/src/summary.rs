//! Grouped summaries for the paper's figures: boxplot statistics (Fig. 5),
//! domain/precision/class/platform groupings (Fig. 6a/6b), and the Figure 9
//! compression-vs-decompression asymmetry.

use crate::metrics::{median, quantile};

/// Five-number boxplot summary with Tukey 1.5-IQR whiskers and outliers,
/// as drawn in Figure 5 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotStats {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    /// Lower whisker: smallest sample ≥ q1 − 1.5·IQR.
    pub whisker_lo: f64,
    /// Upper whisker: largest sample ≤ q3 + 1.5·IQR.
    pub whisker_hi: f64,
    /// Samples outside the whiskers, sorted ascending.
    pub outliers: Vec<f64>,
    pub count: usize,
}

/// Compute boxplot statistics; `None` for an empty sample.
pub fn boxplot(values: &[f64]) -> Option<BoxplotStats> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q1 = quantile(&sorted, 0.25)?;
    let q3 = quantile(&sorted, 0.75)?;
    let med = median(&sorted)?;
    let iqr = q3 - q1;
    let lo_fence = q1 - 1.5 * iqr;
    let hi_fence = q3 + 1.5 * iqr;
    let whisker_lo = sorted
        .iter()
        .copied()
        .find(|&v| v >= lo_fence)
        .unwrap_or(sorted[0]);
    let whisker_hi = sorted
        .iter()
        .rev()
        .copied()
        .find(|&v| v <= hi_fence)
        .unwrap_or(sorted[sorted.len() - 1]);
    let outliers = sorted
        .iter()
        .copied()
        .filter(|&v| v < lo_fence || v > hi_fence)
        .collect();
    Some(BoxplotStats {
        min: sorted[0],
        q1,
        median: med,
        q3,
        max: sorted[sorted.len() - 1],
        whisker_lo,
        whisker_hi,
        outliers,
        count: sorted.len(),
    })
}

/// A labelled group of samples with its boxplot, for Figure 6 rows.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    pub label: String,
    pub stats: BoxplotStats,
}

/// Summarize values grouped by an arbitrary key extractor.
///
/// `pairs` is `(label, value)`; groups preserve first-appearance order.
pub fn group_boxplots(pairs: &[(String, f64)]) -> Vec<GroupSummary> {
    let mut order: Vec<String> = Vec::new();
    for (label, _) in pairs {
        if !order.contains(label) {
            order.push(label.clone());
        }
    }
    order
        .into_iter()
        .filter_map(|label| {
            let vals: Vec<f64> = pairs
                .iter()
                .filter(|(l, _)| *l == label)
                .map(|(_, v)| *v)
                .collect();
            boxplot(&vals).map(|stats| GroupSummary { label, stats })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_of_simple_sample() {
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = boxplot(&vals).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert!(b.outliers.is_empty());
        assert_eq!(b.count, 5);
    }

    #[test]
    fn boxplot_flags_outliers() {
        // 22.8 mimics the paper's astro-mhd outlier among ratios near 1.
        let vals = [1.0, 1.1, 1.2, 1.15, 1.3, 1.25, 22.8];
        let b = boxplot(&vals).unwrap();
        assert_eq!(b.outliers, vec![22.8]);
        assert!(b.whisker_hi < 22.8);
    }

    #[test]
    fn boxplot_empty_and_singleton() {
        assert!(boxplot(&[]).is_none());
        let b = boxplot(&[7.0]).unwrap();
        assert_eq!(b.min, 7.0);
        assert_eq!(b.max, 7.0);
        assert_eq!(b.median, 7.0);
        assert_eq!(b.whisker_lo, 7.0);
        assert_eq!(b.whisker_hi, 7.0);
    }

    #[test]
    fn whiskers_clamp_to_observed_samples() {
        let vals = [1.0, 2.0, 3.0, 4.0, 100.0];
        let b = boxplot(&vals).unwrap();
        // upper whisker must be an actual sample, not the fence
        assert!(vals.contains(&b.whisker_hi));
        assert!(vals.contains(&b.whisker_lo));
    }

    #[test]
    fn grouping_preserves_first_appearance_order() {
        let pairs = vec![
            ("HPC".to_string(), 1.2),
            ("TS".to_string(), 1.1),
            ("HPC".to_string(), 1.4),
            ("DB".to_string(), 1.05),
        ];
        let groups = group_boxplots(&pairs);
        let labels: Vec<&str> = groups.iter().map(|g| g.label.as_str()).collect();
        assert_eq!(labels, vec!["HPC", "TS", "DB"]);
        assert_eq!(groups[0].stats.count, 2);
    }
}

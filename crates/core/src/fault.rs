//! Deterministic fault injection for I/O paths and engine seams.
//!
//! Two layers, mirroring how the model checker splits "always compiled"
//! from "instrumented":
//!
//! - [`FaultPlan`] + [`FaultyIo`] are **always compiled** and dependency
//!   free: a plan is derived entirely from a 64-bit seed (replayable as an
//!   `fp1:` string, the fault-injection analogue of the model checker's
//!   `mc1:` schedule seeds) and drives a [`Read`]/[`Write`] wrapper that
//!   injects short reads/writes, [`ErrorKind::Interrupted`] /
//!   [`ErrorKind::WouldBlock`] returns, bounded delays, and hard errors at
//!   exact byte offsets. Chaos tests wrap any sink or source in it — a
//!   `Vec<u8>` container sink, a socket — and replay failures from the
//!   seed alone.
//! - [`fail_point`] is a **named fail-point** hook compiled to a no-op
//!   unless the non-default `fault-inject` feature is on. The engine's
//!   seams call it by name (`pool.submit`, `frame.write`,
//!   `container.commit`, `serve.reply_write`); the chaos suite arms
//!   individual points to fail after N passes and asserts the failure
//!   surfaces as a typed error, never a hang or a panic. Like
//!   `model-check`, the feature is enabled only by the non-default
//!   `fcbench-chaos` workspace member and must never unify into the
//!   shipping build (CI asserts this on the default feature graph).
//!
//! Everything here is deterministic: same seed, same byte traffic, same
//! injected faults. There is no clock or OS randomness anywhere in a
//! plan's behaviour (delays sleep, but *whether* they fire is seeded).

use crate::error::{Error, Result};
use std::io::{ErrorKind, Read, Write};

/// Prefix for replayable fault-plan seed strings, e.g.
/// `fp1:00000000deadbeef`.
pub const SEED_PREFIX: &str = "fp1:";

/// SplitMix64: the tiny, high-quality step generator used to derive every
/// plan knob and every per-operation decision from the seed.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0` (no panic path).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Bernoulli draw with probability `permille`/1000.
    pub fn permille(&mut self, permille: u16) -> bool {
        self.below(1000) < u64::from(permille)
    }
}

/// A seeded, replayable description of the faults a [`FaultyIo`] injects.
///
/// Every knob is *derived* from the seed, so the whole plan replays from
/// its `fp1:` string; the struct fields are public for tests that want to
/// assert on or hand-build a specific shape (a hand-built plan has no
/// canonical seed string and reports the seed it was given).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-read chance (‰) of delivering fewer bytes than asked.
    pub short_read_permille: u16,
    /// Per-write chance (‰) of accepting fewer bytes than offered.
    pub short_write_permille: u16,
    /// Per-op chance (‰) of an [`ErrorKind::Interrupted`] return (the
    /// retryable kind `read_exact`/`write_all` absorb).
    pub interrupt_permille: u16,
    /// Per-op chance (‰) of an [`ErrorKind::WouldBlock`] return (the
    /// timeout-like kind deadline-aware callers must absorb and everyone
    /// else must surface as a typed error).
    pub wouldblock_permille: u16,
    /// Per-op chance (‰) of sleeping before proceeding.
    pub delay_permille: u16,
    /// Upper bound on one injected delay, in microseconds.
    pub max_delay_micros: u64,
    /// Fail reads permanently once this many bytes were delivered.
    pub fail_read_at: Option<u64>,
    /// Fail writes permanently once this many bytes were accepted.
    pub fail_write_at: Option<u64>,
}

impl FaultPlan {
    /// Derive a plan from a 64-bit seed. Roughly a quarter of seeds are
    /// benign (no faults at all — the wrapper must be transparent), the
    /// rest mix soft faults with hard errors at small byte offsets, the
    /// region where framing and commit boundaries live.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = Rng::new(seed);
        let benign = rng.below(4) == 0;
        if benign {
            return FaultPlan {
                seed,
                short_read_permille: 0,
                short_write_permille: 0,
                interrupt_permille: 0,
                wouldblock_permille: 0,
                delay_permille: 0,
                max_delay_micros: 0,
                fail_read_at: None,
                fail_write_at: None,
            };
        }
        let soft = |rng: &mut Rng, ceil: u64| rng.below(ceil) as u16;
        let hard_at = |rng: &mut Rng| (rng.below(10) < 6).then(|| rng.below(16 * 1024));
        FaultPlan {
            seed,
            short_read_permille: soft(&mut rng, 500),
            short_write_permille: soft(&mut rng, 500),
            interrupt_permille: soft(&mut rng, 200),
            wouldblock_permille: soft(&mut rng, 100),
            delay_permille: soft(&mut rng, 100),
            max_delay_micros: rng.below(200),
            fail_read_at: hard_at(&mut rng),
            fail_write_at: hard_at(&mut rng),
        }
    }

    /// A plan that injects nothing; [`FaultyIo`] behaves as a plain
    /// pass-through wrapper.
    pub fn benign() -> FaultPlan {
        FaultPlan {
            seed: 0,
            short_read_permille: 0,
            short_write_permille: 0,
            interrupt_permille: 0,
            wouldblock_permille: 0,
            delay_permille: 0,
            max_delay_micros: 0,
            fail_read_at: None,
            fail_write_at: None,
        }
    }

    /// The seed this plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The replayable seed string, `fp1:<16 hex digits>`.
    pub fn seed_string(&self) -> String {
        format!("{SEED_PREFIX}{:016x}", self.seed)
    }

    /// Parse an `fp1:` seed string back into its plan.
    pub fn parse(s: &str) -> Result<FaultPlan> {
        let hex = s.strip_prefix(SEED_PREFIX).ok_or_else(|| {
            Error::Unsupported(format!(
                "fault seed {s:?} does not start with {SEED_PREFIX:?}"
            ))
        })?;
        if hex.len() != 16 {
            return Err(Error::Unsupported(format!(
                "fault seed {s:?} needs 16 hex digits after the prefix"
            )));
        }
        let seed = u64::from_str_radix(hex, 16)
            .map_err(|_| Error::Unsupported(format!("fault seed {s:?} is not hexadecimal")))?;
        Ok(FaultPlan::from_seed(seed))
    }

    /// Does this plan inject anything at all?
    pub fn is_benign(&self) -> bool {
        self.short_read_permille == 0
            && self.short_write_permille == 0
            && self.interrupt_permille == 0
            && self.wouldblock_permille == 0
            && self.delay_permille == 0
            && self.fail_read_at.is_none()
            && self.fail_write_at.is_none()
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{SEED_PREFIX}{:016x}", self.seed)
    }
}

/// A [`Read`]/[`Write`] wrapper that injects the faults a [`FaultPlan`]
/// describes, deterministically.
///
/// Hard errors are offset-exact and **sticky**: bytes up to the boundary
/// are delivered faithfully, then every further operation on that
/// direction fails — like a peer that died mid-stream. Soft faults
/// (short ops, `Interrupted`, `WouldBlock`, delays) are drawn per
/// operation from the plan's seeded stream.
#[derive(Debug)]
pub struct FaultyIo<T> {
    inner: T,
    plan: FaultPlan,
    rng: Rng,
    read_pos: u64,
    write_pos: u64,
    read_dead: bool,
    write_dead: bool,
    injected: u64,
}

impl<T> FaultyIo<T> {
    pub fn new(inner: T, plan: FaultPlan) -> FaultyIo<T> {
        let rng = Rng::new(plan.seed() ^ 0xF417_1A17_F417_1A17);
        FaultyIo {
            inner,
            plan,
            rng,
            read_pos: 0,
            write_pos: 0,
            read_dead: false,
            write_dead: false,
            injected: 0,
        }
    }

    /// The wrapped value (e.g. the `Vec<u8>` sink holding whatever was
    /// actually written before a fault killed the stream).
    pub fn into_inner(self) -> T {
        self.inner
    }

    pub fn get_ref(&self) -> &T {
        &self.inner
    }

    /// How many faults (of any kind) this wrapper has injected.
    pub fn injected_faults(&self) -> u64 {
        self.injected
    }

    /// Bytes delivered to readers so far.
    pub fn bytes_read(&self) -> u64 {
        self.read_pos
    }

    /// Bytes accepted from writers so far.
    pub fn bytes_written(&self) -> u64 {
        self.write_pos
    }

    fn hard_error(&mut self, dir: &str) -> std::io::Error {
        self.injected += 1;
        std::io::Error::other(format!(
            "injected {dir} failure ({})",
            self.plan.seed_string()
        ))
    }

    /// Draw the soft faults that precede an operation; `Some(err)` means
    /// the operation returns it instead of touching the inner value.
    fn soft_fault(&mut self) -> Option<std::io::Error> {
        if self.plan.delay_permille > 0 && self.rng.permille(self.plan.delay_permille) {
            let micros = self.rng.below(self.plan.max_delay_micros.saturating_add(1));
            self.injected += 1;
            std::thread::sleep(std::time::Duration::from_micros(micros));
        }
        if self.plan.interrupt_permille > 0 && self.rng.permille(self.plan.interrupt_permille) {
            self.injected += 1;
            return Some(std::io::Error::new(
                ErrorKind::Interrupted,
                "injected interrupt",
            ));
        }
        if self.plan.wouldblock_permille > 0 && self.rng.permille(self.plan.wouldblock_permille) {
            self.injected += 1;
            return Some(std::io::Error::new(
                ErrorKind::WouldBlock,
                "injected would-block",
            ));
        }
        None
    }

    /// How many of `len` bytes an operation may move, honouring a hard
    /// boundary at `fail_at` and the short-op dice. `None` means the hard
    /// boundary was already reached.
    fn allowance(
        rng: &mut Rng,
        plan_short: u16,
        pos: u64,
        fail_at: Option<u64>,
        len: usize,
    ) -> Option<usize> {
        let mut take = len;
        if let Some(at) = fail_at {
            let room = at.saturating_sub(pos);
            if room == 0 {
                return None;
            }
            take = take.min(usize::try_from(room).unwrap_or(usize::MAX));
        }
        if take > 1 && plan_short > 0 && rng.permille(plan_short) {
            take = 1 + usize::try_from(rng.below(take as u64)).unwrap_or(0);
        }
        Some(take)
    }
}

impl<T: Read> Read for FaultyIo<T> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.read_dead {
            return Err(self.hard_error("read"));
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        if let Some(e) = self.soft_fault() {
            return Err(e);
        }
        let take = match Self::allowance(
            &mut self.rng,
            self.plan.short_read_permille,
            self.read_pos,
            self.plan.fail_read_at,
            buf.len(),
        ) {
            Some(t) => t,
            None => {
                self.read_dead = true;
                return Err(self.hard_error("read"));
            }
        };
        let got = match buf.get_mut(..take) {
            Some(window) => self.inner.read(window)?,
            None => self.inner.read(buf)?,
        };
        self.read_pos += got as u64;
        Ok(got)
    }
}

impl<T: Write> Write for FaultyIo<T> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.write_dead {
            return Err(self.hard_error("write"));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if let Some(e) = self.soft_fault() {
            return Err(e);
        }
        let take = match Self::allowance(
            &mut self.rng,
            self.plan.short_write_permille,
            self.write_pos,
            self.plan.fail_write_at,
            buf.len(),
        ) {
            Some(t) => t,
            None => {
                self.write_dead = true;
                return Err(self.hard_error("write"));
            }
        };
        let window = buf.get(..take).unwrap_or(buf);
        let accepted = self.inner.write(window)?;
        self.write_pos += accepted as u64;
        Ok(accepted)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.write_dead {
            return Err(self.hard_error("write"));
        }
        self.inner.flush()
    }
}

/// A named fail-point. Engine seams call this on their hot path; with the
/// default feature set it compiles to `Ok(())` and the optimizer removes
/// it. With the non-default `fault-inject` feature (enabled only by the
/// `fcbench-chaos` workspace member, never by a shipping crate), armed
/// points fail with a typed [`Error::Io`] after an optional pass count.
#[inline]
pub fn fail_point(name: &str) -> Result<()> {
    #[cfg(feature = "fault-inject")]
    {
        failpoints::check(name)
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        let _ = name;
        Ok(())
    }
}

/// The armed-fail-point registry, compiled only under `fault-inject`.
#[cfg(feature = "fault-inject")]
pub mod failpoints {
    use crate::error::{Error, Result};
    use crate::sync::lock;
    use std::sync::{Mutex, OnceLock};

    struct Armed {
        name: String,
        /// Calls that pass before the point starts failing.
        skip: u64,
        /// Calls that fail once armed; `u64::MAX` means forever.
        fail: u64,
        hits: u64,
        fired: u64,
    }

    fn registry() -> &'static Mutex<Vec<Armed>> {
        static REG: OnceLock<Mutex<Vec<Armed>>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Arm `name` to pass `skip` calls, then fail `fail` calls (use
    /// `u64::MAX` for "forever"). Re-arming a name replaces its schedule
    /// and resets its counts.
    pub fn arm(name: &str, skip: u64, fail: u64) {
        let mut reg = lock(registry());
        reg.retain(|a| a.name != name);
        reg.push(Armed {
            name: name.to_string(),
            skip,
            fail,
            hits: 0,
            fired: 0,
        });
    }

    /// Disarm every point and forget its counts.
    pub fn disarm_all() {
        lock(registry()).clear();
    }

    /// How many times `name` was reached (armed points only).
    pub fn hits(name: &str) -> u64 {
        lock(registry())
            .iter()
            .find(|a| a.name == name)
            .map_or(0, |a| a.hits)
    }

    /// How many times `name` actually fired an error.
    pub fn fired(name: &str) -> u64 {
        lock(registry())
            .iter()
            .find(|a| a.name == name)
            .map_or(0, |a| a.fired)
    }

    pub(super) fn check(name: &str) -> Result<()> {
        let mut reg = lock(registry());
        let Some(a) = reg.iter_mut().find(|a| a.name == name) else {
            return Ok(());
        };
        a.hits += 1;
        if a.hits > a.skip && a.fired < a.fail {
            a.fired += 1;
            return Err(Error::Io(format!("injected fault at fail-point {name}")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_strings_round_trip() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let plan = FaultPlan::from_seed(seed);
            let s = plan.seed_string();
            assert!(s.starts_with(SEED_PREFIX));
            assert_eq!(FaultPlan::parse(&s).unwrap(), plan);
            assert_eq!(plan.to_string(), s);
        }
        assert!(FaultPlan::parse("mc1:0000000000000000").is_err());
        assert!(FaultPlan::parse("fp1:xyz").is_err());
        assert!(FaultPlan::parse("fp1:123").is_err());
    }

    #[test]
    fn plans_are_deterministic() {
        assert_eq!(FaultPlan::from_seed(42), FaultPlan::from_seed(42));
        // Distinct seeds disagree somewhere across a small range.
        let distinct = (0..32u64)
            .map(FaultPlan::from_seed)
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 16);
    }

    impl std::hash::Hash for FaultPlan {
        fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
            self.seed.hash(state);
            self.short_read_permille.hash(state);
            self.fail_write_at.hash(state);
        }
    }

    #[test]
    fn benign_plan_is_transparent() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut reader = FaultyIo::new(&data[..], FaultPlan::benign());
        let mut back = Vec::new();
        reader.read_to_end(&mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(reader.injected_faults(), 0);

        let mut writer = FaultyIo::new(Vec::new(), FaultPlan::benign());
        writer.write_all(&data).unwrap();
        writer.flush().unwrap();
        assert_eq!(writer.injected_faults(), 0);
        assert_eq!(writer.into_inner(), data);
    }

    #[test]
    fn hard_write_error_is_offset_exact_and_sticky() {
        let mut plan = FaultPlan::benign();
        plan.fail_write_at = Some(100);
        let mut writer = FaultyIo::new(Vec::new(), plan);
        let payload = vec![7u8; 64];
        // First 100 bytes land; the boundary write fails.
        assert!(writer.write_all(&payload).is_ok());
        let err = writer.write_all(&payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Other);
        // Sticky: everything after the boundary fails too, flush included.
        assert!(writer.write_all(&[1]).is_err());
        assert!(writer.flush().is_err());
        let sunk = writer.into_inner();
        assert_eq!(sunk.len(), 100);
        assert!(sunk.iter().all(|&b| b == 7));
    }

    #[test]
    fn hard_read_error_delivers_the_boundary_first() {
        let mut plan = FaultPlan::benign();
        plan.fail_read_at = Some(10);
        let data = [3u8; 64];
        let mut reader = FaultyIo::new(&data[..], plan);
        let mut buf = [0u8; 64];
        let mut got = 0;
        while let Ok(n) = reader.read(&mut buf[got..]) {
            got += n;
        }
        assert_eq!(got, 10);
        assert!(reader.read(&mut buf).is_err(), "read errors stay sticky");
    }

    #[test]
    fn soft_faults_never_lose_bytes_under_retrying_callers() {
        // write_all/read_exact retry Interrupted and honour short ops, so
        // a soft-fault-only plan must still move every byte faithfully.
        for seed in 0..64u64 {
            let mut plan = FaultPlan::from_seed(seed);
            plan.fail_read_at = None;
            plan.fail_write_at = None;
            plan.wouldblock_permille = 0; // write_all does not retry these
            plan.delay_permille = 0; // keep the test fast
            let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
            let mut writer = FaultyIo::new(Vec::new(), plan.clone());
            let mut offset = 0;
            while offset < data.len() {
                let step = (offset % 97) + 1;
                let end = (offset + step).min(data.len());
                match writer.write_all(&data[offset..end]) {
                    Ok(()) => offset = end,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => panic!("fp {seed}: unexpected {e}"),
                }
            }
            assert_eq!(writer.into_inner(), data, "seed {seed}");
        }
    }

    #[test]
    fn fail_point_is_a_no_op_without_the_feature() {
        #[cfg(not(feature = "fault-inject"))]
        assert!(fail_point("pool.submit").is_ok());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn armed_fail_points_fire_on_schedule() {
        failpoints::disarm_all();
        failpoints::arm("test.point", 2, 1);
        assert!(fail_point("test.point").is_ok());
        assert!(fail_point("test.point").is_ok());
        assert!(fail_point("test.point").is_err());
        assert!(fail_point("test.point").is_ok(), "fail budget exhausted");
        assert_eq!(failpoints::hits("test.point"), 4);
        assert_eq!(failpoints::fired("test.point"), 1);
        failpoints::disarm_all();
        assert!(fail_point("test.point").is_ok());
    }
}

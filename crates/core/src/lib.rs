//! # fcbench-core
//!
//! Core abstractions for **FCBench-rs**, a pure-Rust reproduction of
//! *"FCBench: Cross-Domain Benchmarking of Lossless Compression for
//! Floating-Point Data"* (VLDB 2024).
//!
//! This crate defines:
//!
//! - the floating-point [data model](data) (precision, domain, shape);
//! - the [`Compressor`] trait with the Table 1 taxonomy
//!   and its buffer-reusing `compress_into`/`decompress_into` hot path;
//! - the [codec registry](registry) (lookup by name, filtering by platform,
//!   class, and precision);
//! - the self-describing [frame] containers (`FCB1` single-shot,
//!   `FCB2` chunked, `FCB3` streamed);
//! - the persistent [worker-pool execution engine](pool) every compression
//!   job runs on;
//! - the chunked block-parallel [pipeline], a façade over the pool;
//! - [streaming frame I/O](stream) for datasets that exceed memory;
//! - the paper's [metrics] (CR/CT/DT, harmonic/arithmetic means);
//! - the benchmark [run matrix](runner) (codecs × datasets);
//! - [boxplot & group summaries](summary) for Figures 5–6;
//! - [block/page compression](blocks) for the Table 10 experiment;
//! - the [thread-scaling harness](scaling) for Tables 7–8;
//! - the [sync] shim (one poison policy, swappable for the
//!   `fcbench-analyze` model checker behind the `model-check` feature) and
//!   the panic-free [wire] decode helpers the repo lints hold decode paths
//!   to;
//! - the seeded [fault]-injection harness (`fp1:` replayable plans, the
//!   `FaultyIo` Read/Write wrapper, and named fail-points behind the
//!   non-default `fault-inject` feature) the chaos suite drives resilience
//!   tests with.
//!
//! Compressor implementations live in `fcbench-codecs-cpu`,
//! `fcbench-codecs-gpu`, and `fcbench-dzip`; everything here is
//! codec-agnostic.

#![forbid(unsafe_code)]

pub mod blocks;
pub mod codec;
pub mod data;
pub mod error;
pub mod fault;
pub mod frame;
pub mod metrics;
pub mod pipeline;
pub mod pool;
pub mod registry;
pub mod runner;
pub mod scaling;
pub mod stream;
pub mod summary;
pub mod sync;
pub mod wire;

/// The zero-alloc telemetry spine every layer records into, re-exported
/// so downstream users (and the umbrella crate's tests) can construct a
/// [`Registry`](fcbench_telemetry::Registry) without naming the crate.
pub use fcbench_telemetry as telemetry;

pub use codec::{
    compress_verified, compress_verified_into, AuxTime, CodecClass, CodecInfo, Community,
    Compressor, OpProfile, Platform, PrecisionSupport,
};
pub use data::{DataDesc, Domain, FloatData, Precision};
pub use error::{Error, Result};
pub use metrics::Measurement;
pub use pipeline::Pipeline;
pub use pool::{PoolConfig, Ticket, WorkerPool};
pub use registry::{CodecRegistry, RegistryEntry};
pub use runner::{run_cell, run_matrix, CellOutcome, NamedData, RunConfig, RunMatrix};
pub use stream::{FrameReader, FrameWriter};

//! # fcbench-core
//!
//! Core abstractions for **FCBench-rs**, a pure-Rust reproduction of
//! *"FCBench: Cross-Domain Benchmarking of Lossless Compression for
//! Floating-Point Data"* (VLDB 2024).
//!
//! This crate defines:
//!
//! - the floating-point [data model](data) (precision, domain, shape);
//! - the [`Compressor`](codec::Compressor) trait with the Table 1 taxonomy;
//! - the self-describing [frame](frame) container;
//! - the paper's [metrics](metrics) (CR/CT/DT, harmonic/arithmetic means);
//! - the benchmark [run matrix](runner) (codecs × datasets);
//! - [boxplot & group summaries](summary) for Figures 5–6;
//! - [block/page compression](blocks) for the Table 10 experiment;
//! - the [thread-scaling harness](scaling) for Tables 7–8.
//!
//! Compressor implementations live in `fcbench-codecs-cpu`,
//! `fcbench-codecs-gpu`, and `fcbench-dzip`; everything here is
//! codec-agnostic.

pub mod blocks;
pub mod codec;
pub mod data;
pub mod error;
pub mod frame;
pub mod metrics;
pub mod runner;
pub mod scaling;
pub mod summary;

pub use codec::{
    AuxTime, CodecClass, CodecInfo, Community, Compressor, OpProfile, Platform, PrecisionSupport,
};
pub use data::{DataDesc, Domain, FloatData, Precision};
pub use error::{Error, Result};
pub use metrics::Measurement;
pub use runner::{run_cell, run_matrix, CellOutcome, NamedData, RunConfig, RunMatrix};

//! Evaluation metrics from §5.2 of the paper:
//!
//! ```text
//! CR = orig_size / comp_size
//! CT = orig_size / comp_time
//! DT = orig_size / decomp_time
//! ```
//!
//! plus the aggregation rules the paper uses: harmonic mean for compression
//! ratios, arithmetic mean for throughputs.

/// One measured compression + decompression run of a codec on a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Original (uncompressed) size in bytes.
    pub orig_bytes: u64,
    /// Compressed size in bytes (including nothing but the codec payload).
    pub comp_bytes: u64,
    /// Wall-clock compression time in seconds (kernel only, I/O excluded).
    pub comp_seconds: f64,
    /// Wall-clock decompression time in seconds.
    pub decomp_seconds: f64,
    /// Modelled host→device + device→host transfer seconds during compression
    /// (zero for CPU codecs). Included in end-to-end wall time (Table 6).
    pub comp_transfer_seconds: f64,
    /// Modelled transfer seconds during decompression.
    pub decomp_transfer_seconds: f64,
}

impl Measurement {
    /// Compression ratio `orig/comp`. Ratios below 1.0 mean expansion —
    /// the paper reports these too (e.g. BUFF 0.64 on rsim).
    #[inline]
    pub fn compression_ratio(&self) -> f64 {
        self.orig_bytes as f64 / self.comp_bytes.max(1) as f64
    }

    /// Compression throughput in GB/s (decimal GB, as in the paper).
    #[inline]
    pub fn compression_throughput_gbs(&self) -> f64 {
        self.orig_bytes as f64 / self.comp_seconds.max(f64::MIN_POSITIVE) / 1e9
    }

    /// Decompression throughput in GB/s.
    #[inline]
    pub fn decompression_throughput_gbs(&self) -> f64 {
        self.orig_bytes as f64 / self.decomp_seconds.max(f64::MIN_POSITIVE) / 1e9
    }

    /// End-to-end compression wall time in seconds, including modelled
    /// host↔device transfers (Table 6).
    #[inline]
    pub fn e2e_comp_seconds(&self) -> f64 {
        self.comp_seconds + self.comp_transfer_seconds
    }

    /// End-to-end decompression wall time in seconds.
    #[inline]
    pub fn e2e_decomp_seconds(&self) -> f64 {
        self.decomp_seconds + self.decomp_transfer_seconds
    }

    /// The paper's Figure 9 ratio `rD = (CT - DT) / CT`; positive means
    /// compression is faster than decompression.
    pub fn r_d(&self) -> f64 {
        let ct = self.compression_throughput_gbs();
        let dt = self.decompression_throughput_gbs();
        if ct == 0.0 {
            0.0
        } else {
            (ct - dt) / ct
        }
    }

    /// Merge repeated measurements of the same configuration by averaging
    /// times and keeping sizes (the paper repeats each run 10×, §5.2).
    pub fn average_of(runs: &[Measurement]) -> Option<Measurement> {
        if runs.is_empty() {
            return None;
        }
        let n = runs.len() as f64;
        Some(Measurement {
            orig_bytes: runs[0].orig_bytes,
            comp_bytes: runs[0].comp_bytes,
            comp_seconds: runs.iter().map(|m| m.comp_seconds).sum::<f64>() / n,
            decomp_seconds: runs.iter().map(|m| m.decomp_seconds).sum::<f64>() / n,
            comp_transfer_seconds: runs.iter().map(|m| m.comp_transfer_seconds).sum::<f64>() / n,
            decomp_transfer_seconds: runs.iter().map(|m| m.decomp_transfer_seconds).sum::<f64>()
                / n,
        })
    }
}

/// Harmonic mean — the paper's aggregation for compression ratios (§5.2).
/// Returns `None` for an empty slice; non-positive entries are rejected.
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let recip_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / recip_sum)
}

/// Arithmetic mean — the paper's aggregation for throughputs (§5.2).
pub fn arithmetic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Median of a sample (averaging the two central order statistics).
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    })
}

/// Linear-interpolation quantile (type-7, as NumPy's default), `q` in `[0,1]`.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas() -> Measurement {
        Measurement {
            orig_bytes: 1_000_000_000,
            comp_bytes: 500_000_000,
            comp_seconds: 2.0,
            decomp_seconds: 1.0,
            comp_transfer_seconds: 0.5,
            decomp_transfer_seconds: 0.25,
        }
    }

    #[test]
    fn ratio_and_throughputs() {
        let m = meas();
        assert!((m.compression_ratio() - 2.0).abs() < 1e-12);
        assert!((m.compression_throughput_gbs() - 0.5).abs() < 1e-12);
        assert!((m.decompression_throughput_gbs() - 1.0).abs() < 1e-12);
        assert!((m.e2e_comp_seconds() - 2.5).abs() < 1e-12);
        assert!((m.e2e_decomp_seconds() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn r_d_sign_convention() {
        // Decompression faster than compression => rD negative? No:
        // rD = (CT - DT)/CT; DT > CT gives negative rD, matching the paper
        // where nvcomp::LZ4 has rD = -18.64.
        let m = meas();
        assert!(m.r_d() < 0.0);
        let balanced = Measurement {
            decomp_seconds: 2.0,
            ..meas()
        };
        assert!(balanced.r_d().abs() < 1e-12);
    }

    #[test]
    fn zero_comp_bytes_does_not_divide_by_zero() {
        let m = Measurement {
            comp_bytes: 0,
            ..meas()
        };
        assert!(m.compression_ratio().is_finite());
    }

    #[test]
    fn average_of_runs() {
        let a = meas();
        let b = Measurement {
            comp_seconds: 4.0,
            decomp_seconds: 3.0,
            ..meas()
        };
        let avg = Measurement::average_of(&[a, b]).unwrap();
        assert!((avg.comp_seconds - 3.0).abs() < 1e-12);
        assert!((avg.decomp_seconds - 2.0).abs() < 1e-12);
        assert!(Measurement::average_of(&[]).is_none());
    }

    #[test]
    fn harmonic_mean_matches_hand_computation() {
        // HM of 1, 2, 4 = 3 / (1 + 0.5 + 0.25) = 12/7
        let hm = harmonic_mean(&[1.0, 2.0, 4.0]).unwrap();
        assert!((hm - 12.0 / 7.0).abs() < 1e-12);
        assert!(harmonic_mean(&[]).is_none());
        assert!(harmonic_mean(&[1.0, 0.0]).is_none());
        assert!(harmonic_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn harmonic_mean_le_arithmetic_mean() {
        let vals = [1.2, 3.4, 0.9, 2.2, 8.8];
        let hm = harmonic_mean(&vals).unwrap();
        let am = arithmetic_mean(&vals).unwrap();
        assert!(hm <= am);
    }

    #[test]
    fn median_and_quantiles() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert!(median(&[]).is_none());
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 1.0).unwrap(), 4.0);
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(quantile(&[1.0], 1.5).is_none());
    }
}

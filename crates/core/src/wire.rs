//! Infallible little-endian wire readers and saturating length
//! conversions.
//!
//! Every byte that crosses a trust boundary — FCS1 requests, FCB frame
//! headers, FCDB container directories — is decoded through these helpers
//! instead of `slice[a..b].try_into().expect(..)` patterns: a truncated
//! buffer is a typed [`Error::Corrupt`], never a panic, and a length claim
//! wider than `usize` **saturates** rather than truncates. Saturation is
//! the security-correct direction: an absurd claim becomes `usize::MAX`
//! and fails *upward* into the plausibility gates
//! ([`check_decode_claim`](crate::blocks::check_decode_claim) and friends),
//! where a truncating `as` cast on a 32-bit target could wrap a hostile
//! 2^32+16 claim into a small, in-bounds, silently-wrong length.
//!
//! The `fcbench-analyze` lint rules `no-panic` and `wire-cast` hold
//! decode paths to these helpers.

use crate::error::{Error, Result};

fn truncated(what: &str, pos: usize, len: usize) -> Error {
    Error::Corrupt(format!(
        "truncated wire field: {what} at offset {pos} needs more than the {len} bytes present"
    ))
}

/// Read a little-endian `u16` at `pos`, failing on a short buffer.
pub fn le_u16(buf: &[u8], pos: usize) -> Result<u16> {
    match buf.get(pos..).and_then(|t| t.first_chunk::<2>()) {
        Some(w) => Ok(u16::from_le_bytes(*w)),
        None => Err(truncated("u16", pos, buf.len())),
    }
}

/// Read a little-endian `u32` at `pos`, failing on a short buffer.
pub fn le_u32(buf: &[u8], pos: usize) -> Result<u32> {
    match buf.get(pos..).and_then(|t| t.first_chunk::<4>()) {
        Some(w) => Ok(u32::from_le_bytes(*w)),
        None => Err(truncated("u32", pos, buf.len())),
    }
}

/// Read a little-endian `u64` at `pos`, failing on a short buffer.
pub fn le_u64(buf: &[u8], pos: usize) -> Result<u64> {
    match buf.get(pos..).and_then(|t| t.first_chunk::<8>()) {
        Some(w) => Ok(u64::from_le_bytes(*w)),
        None => Err(truncated("u64", pos, buf.len())),
    }
}

/// A wire-claimed `u32` length as `usize`, saturating on narrow targets so
/// oversized claims fail upward into plausibility gates instead of
/// wrapping into small in-bounds values.
pub fn len32(v: u32) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// A wire-claimed `u64` length as `usize`, saturating (see [`len32`]).
pub fn len64(v: u64) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_at_offsets_and_fails_truncated() {
        let buf: Vec<u8> = (0u8..12).collect();
        assert_eq!(le_u16(&buf, 0).unwrap(), u16::from_le_bytes([0, 1]));
        assert_eq!(le_u32(&buf, 3).unwrap(), u32::from_le_bytes([3, 4, 5, 6]));
        assert_eq!(
            le_u64(&buf, 4).unwrap(),
            u64::from_le_bytes([4, 5, 6, 7, 8, 9, 10, 11])
        );
        assert!(le_u16(&buf, 11).is_err());
        assert!(le_u32(&buf, 9).is_err());
        assert!(le_u64(&buf, 5).is_err());
        // Offsets past the end (including overflow-prone ones) fail cleanly.
        assert!(le_u64(&buf, usize::MAX).is_err());
        assert!(le_u64(&[], 0).is_err());
    }

    #[test]
    fn lengths_convert_exactly_on_64_bit() {
        assert_eq!(len32(u32::MAX), u32::MAX as usize);
        assert_eq!(len64(7), 7);
        #[cfg(target_pointer_width = "64")]
        assert_eq!(len64(u64::MAX), u64::MAX as usize);
    }
}

//! Self-describing container frame wrapped around every compressed payload.
//!
//! The frame carries everything needed to decompress without out-of-band
//! metadata: codec name, precision, dimensional extent, domain tag, and the
//! original byte length. Layout (all integers little-endian):
//!
//! ```text
//! magic            4 bytes  "FCB1"
//! codec name len   1 byte   n
//! codec name       n bytes  UTF-8
//! precision        1 byte   0 = single, 1 = double
//! domain           1 byte   0 = HPC, 1 = TS, 2 = OBS, 3 = DB
//! ndims            1 byte   d  (1..=255)
//! dims             8*d bytes
//! payload len      8 bytes
//! payload          ...
//! ```

use crate::data::{DataDesc, Domain, FloatData, Precision};
use crate::error::{Error, Result};

const MAGIC: &[u8; 4] = b"FCB1";

/// Encode a frame around `payload` for data described by `desc`,
/// compressed by codec `name`.
pub fn encode_frame(name: &str, desc: &DataDesc, payload: &[u8]) -> Vec<u8> {
    let name_bytes = name.as_bytes();
    assert!(name_bytes.len() <= 255, "codec name too long");
    assert!(desc.dims.len() <= 255, "too many dimensions");

    let mut out =
        Vec::with_capacity(4 + 1 + name_bytes.len() + 3 + 8 * desc.dims.len() + 8 + payload.len());
    out.extend_from_slice(MAGIC);
    out.push(name_bytes.len() as u8);
    out.extend_from_slice(name_bytes);
    out.push(match desc.precision {
        Precision::Single => 0,
        Precision::Double => 1,
    });
    out.push(match desc.domain {
        Domain::Hpc => 0,
        Domain::TimeSeries => 1,
        Domain::Observation => 2,
        Domain::Database => 3,
    });
    out.push(desc.dims.len() as u8);
    for &d in &desc.dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A decoded frame: codec name, data descriptor, and borrowed payload.
#[derive(Debug, PartialEq, Eq)]
pub struct Frame<'a> {
    pub codec: String,
    pub desc: DataDesc,
    pub payload: &'a [u8],
}

/// Decode a frame produced by [`encode_frame`].
pub fn decode_frame(bytes: &[u8]) -> Result<Frame<'_>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        if *pos + n > bytes.len() {
            return Err(Error::Corrupt(format!(
                "frame truncated at offset {} (wanted {} more bytes of {})",
                pos,
                n,
                bytes.len()
            )));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };

    let magic = take(&mut pos, 4)?;
    if magic != MAGIC {
        return Err(Error::Corrupt("bad magic (expected FCB1)".into()));
    }
    let name_len = take(&mut pos, 1)?[0] as usize;
    let name_bytes = take(&mut pos, name_len)?;
    let codec = std::str::from_utf8(name_bytes)
        .map_err(|_| Error::Corrupt("codec name is not UTF-8".into()))?
        .to_string();

    let precision = match take(&mut pos, 1)?[0] {
        0 => Precision::Single,
        1 => Precision::Double,
        b => return Err(Error::Corrupt(format!("bad precision byte {b}"))),
    };
    let domain = match take(&mut pos, 1)?[0] {
        0 => Domain::Hpc,
        1 => Domain::TimeSeries,
        2 => Domain::Observation,
        3 => Domain::Database,
        b => return Err(Error::Corrupt(format!("bad domain byte {b}"))),
    };
    let ndims = take(&mut pos, 1)?[0] as usize;
    if ndims == 0 {
        return Err(Error::Corrupt("frame has zero dimensions".into()));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = take(&mut pos, 8)?;
        let v = u64::from_le_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]) as usize;
        if v == 0 {
            return Err(Error::Corrupt("frame has a zero-extent dimension".into()));
        }
        dims.push(v);
    }
    let plen_bytes = take(&mut pos, 8)?;
    let plen = u64::from_le_bytes([
        plen_bytes[0],
        plen_bytes[1],
        plen_bytes[2],
        plen_bytes[3],
        plen_bytes[4],
        plen_bytes[5],
        plen_bytes[6],
        plen_bytes[7],
    ]) as usize;
    let payload = take(&mut pos, plen)?;
    if pos != bytes.len() {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes after payload",
            bytes.len() - pos
        )));
    }

    let desc = DataDesc::new(precision, dims, domain)?;
    Ok(Frame {
        codec,
        desc,
        payload,
    })
}

/// Compress `data` with `codec` and wrap the result in a frame.
pub fn compress_framed(codec: &dyn crate::codec::Compressor, data: &FloatData) -> Result<Vec<u8>> {
    let payload = codec.compress(data)?;
    Ok(encode_frame(codec.info().name, data.desc(), &payload))
}

/// Decode a frame and decompress it with `codec`, checking the codec name.
pub fn decompress_framed(codec: &dyn crate::codec::Compressor, bytes: &[u8]) -> Result<FloatData> {
    let frame = decode_frame(bytes)?;
    if frame.codec != codec.info().name {
        return Err(Error::Corrupt(format!(
            "frame was written by codec {:?} but {:?} was asked to decode it",
            frame.codec,
            codec.info().name
        )));
    }
    codec.decompress(frame.payload, &frame.desc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> DataDesc {
        DataDesc::new(Precision::Double, vec![3, 5], Domain::TimeSeries).unwrap()
    }

    #[test]
    fn round_trip() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let framed = encode_frame("gorilla", &desc(), &payload);
        let frame = decode_frame(&framed).unwrap();
        assert_eq!(frame.codec, "gorilla");
        assert_eq!(frame.desc, desc());
        assert_eq!(frame.payload, &payload[..]);
    }

    #[test]
    fn empty_payload_round_trip() {
        let framed = encode_frame("x", &desc(), &[]);
        let frame = decode_frame(&framed).unwrap();
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut framed = encode_frame("x", &desc(), &[1, 2, 3]);
        framed[0] = b'Z';
        assert!(matches!(decode_frame(&framed), Err(Error::Corrupt(_))));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let framed = encode_frame("gorilla", &desc(), &[9u8; 32]);
        for cut in 0..framed.len() {
            assert!(
                decode_frame(&framed[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut framed = encode_frame("x", &desc(), &[1, 2, 3]);
        framed.push(0xAA);
        assert!(matches!(decode_frame(&framed), Err(Error::Corrupt(_))));
    }

    #[test]
    fn rejects_bad_precision_and_domain_bytes() {
        let framed = encode_frame("x", &desc(), &[]);
        // precision byte sits right after magic + name-len + name
        let ppos = 4 + 1 + 1;
        let mut bad = framed.clone();
        bad[ppos] = 9;
        assert!(decode_frame(&bad).is_err());
        let mut bad = framed.clone();
        bad[ppos + 1] = 9;
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn all_domains_and_precisions_encode() {
        for domain in Domain::ALL {
            for precision in [Precision::Single, Precision::Double] {
                let d = DataDesc::new(precision, vec![2, 2, 2], domain).unwrap();
                let framed = encode_frame("c", &d, &[0xFF]);
                let frame = decode_frame(&framed).unwrap();
                assert_eq!(frame.desc.domain, domain);
                assert_eq!(frame.desc.precision, precision);
            }
        }
    }
}

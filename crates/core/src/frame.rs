//! Self-describing container frames wrapped around compressed payloads.
//!
//! Frames carry everything needed to decompress without out-of-band
//! metadata: codec name, precision, dimensional extent, domain tag, and the
//! payload length(s). Two layouts share one header (all integers
//! little-endian):
//!
//! **`FCB1` — single-shot.** One payload covering the whole dataset:
//!
//! ```text
//! magic            4 bytes  "FCB1"
//! codec name len   1 byte   n
//! codec name       n bytes  UTF-8
//! precision        1 byte   0 = single, 1 = double
//! domain           1 byte   0 = HPC, 1 = TS, 2 = OBS, 3 = DB
//! ndims            1 byte   d  (1..=255)
//! dims             8*d bytes
//! payload len      8 bytes
//! payload          ...
//! ```
//!
//! **`FCB2` — chunked.** The element stream is split into fixed-size blocks
//! (the last may be short), each compressed independently — the layout
//! produced and consumed by [`crate::pipeline::Pipeline`], mirroring the
//! block decomposition FCBench applies to its ndzip/GPU methods:
//!
//! ```text
//! magic            4 bytes  "FCB2"
//! codec name len   1 byte   n
//! codec name       n bytes  UTF-8
//! precision        1 byte
//! domain           1 byte
//! ndims            1 byte   d  (1..=255)
//! dims             8*d bytes
//! block elems      8 bytes  elements per block (>= 1)
//! block count      4 bytes  == ceil(elements / block elems)
//! block lens       8 bytes each
//! payloads         concatenated
//! ```
//!
//! **`FCB3` — streamed chunks.** The on-wire form of `FCB2` for datasets
//! that never need to be fully resident: the same shared header, but block
//! records carry their own length inline so a writer can emit them as they
//! are compressed (an `FCB2` frame front-loads every length, which forces
//! the whole frame into memory). Produced and consumed by
//! [`crate::stream::FrameWriter`] / [`crate::stream::FrameReader`]:
//!
//! ```text
//! magic            4 bytes  "FCB3"
//! codec name len   1 byte   n
//! codec name       n bytes  UTF-8
//! precision        1 byte
//! domain           1 byte
//! ndims            1 byte   d  (1..=255)
//! dims             8*d bytes
//! block elems      8 bytes  elements per block (>= 1)
//! per block:       8-byte payload len, then the payload
//!                  (block count is implied: ceil(elements / block elems))
//! ```

use crate::data::{DataDesc, Domain, FloatData, Precision};
use crate::error::{Error, Result};

const MAGIC_V1: &[u8; 4] = b"FCB1";
const MAGIC_V2: &[u8; 4] = b"FCB2";
const MAGIC_V3: &[u8; 4] = b"FCB3";

/// Check that `name` and `desc` fit the frame header's single-byte length
/// fields. The benchmark runner calls this up front so an unencodable cell
/// is reported as a failure instead of panicking mid-campaign.
pub fn check_frame_params(name: &str, desc: &DataDesc) -> Result<()> {
    if name.len() > 255 {
        return Err(Error::NameTooLong { len: name.len() });
    }
    if desc.dims.len() > 255 {
        return Err(Error::TooManyDims {
            ndims: desc.dims.len(),
        });
    }
    Ok(())
}

/// Append the shared header (magic through dims) to `out`.
fn encode_header(magic: &[u8; 4], name: &str, desc: &DataDesc, out: &mut Vec<u8>) -> Result<()> {
    check_frame_params(name, desc)?;
    out.extend_from_slice(magic);
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
    out.push(match desc.precision {
        Precision::Single => 0,
        Precision::Double => 1,
    });
    out.push(match desc.domain {
        Domain::Hpc => 0,
        Domain::TimeSeries => 1,
        Domain::Observation => 2,
        Domain::Database => 3,
    });
    out.push(desc.dims.len() as u8);
    for &d in &desc.dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    Ok(())
}

/// Encode a frame around `payload` for data described by `desc`,
/// compressed by codec `name`.
pub fn encode_frame(name: &str, desc: &DataDesc, payload: &[u8]) -> Result<Vec<u8>> {
    let mut out =
        Vec::with_capacity(4 + 2 + name.len() + 3 + 8 * desc.dims.len() + 8 + payload.len());
    encode_header(MAGIC_V1, name, desc, &mut out)?;
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Bounds-checked slice cursor shared by both decoders.
fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    // `pos` never exceeds `bytes.len()`, so this subtraction cannot wrap —
    // and unlike `pos + n` it cannot overflow on hostile length fields.
    if n > bytes.len() - *pos {
        return Err(Error::Corrupt(format!(
            "frame truncated at offset {} (wanted {} more bytes of {})",
            pos,
            n,
            bytes.len()
        )));
    }
    let s = &bytes[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let s = take(bytes, pos, 8)?;
    crate::wire::le_u64(s, 0)
}

/// Decode the shared header after the magic: `(codec name, descriptor)`.
fn decode_header(bytes: &[u8], pos: &mut usize) -> Result<(String, DataDesc)> {
    let name_len = take(bytes, pos, 1)?[0] as usize;
    let name_bytes = take(bytes, pos, name_len)?;
    let codec = std::str::from_utf8(name_bytes)
        .map_err(|_| Error::Corrupt("codec name is not UTF-8".into()))?
        .to_string();

    let precision = match take(bytes, pos, 1)?[0] {
        0 => Precision::Single,
        1 => Precision::Double,
        b => return Err(Error::Corrupt(format!("bad precision byte {b}"))),
    };
    let domain = match take(bytes, pos, 1)?[0] {
        0 => Domain::Hpc,
        1 => Domain::TimeSeries,
        2 => Domain::Observation,
        3 => Domain::Database,
        b => return Err(Error::Corrupt(format!("bad domain byte {b}"))),
    };
    let ndims = take(bytes, pos, 1)?[0] as usize;
    if ndims == 0 {
        return Err(Error::Corrupt("frame has zero dimensions".into()));
    }
    // lint: claim-checked(ndims is u8-bounded, at most 255 dims)
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let v = read_u64(bytes, pos)?;
        if v == 0 {
            return Err(Error::Corrupt("frame has a zero-extent dimension".into()));
        }
        let v = usize::try_from(v)
            .map_err(|_| Error::Corrupt(format!("dimension {v} exceeds the address space")))?;
        dims.push(v);
    }
    // `DataDesc::new` re-validates with checked arithmetic, so hostile dims
    // (element-count or byte-length overflow) become typed errors here.
    let desc = DataDesc::new(precision, dims, domain)?;
    Ok((codec, desc))
}

/// A decoded single-shot frame: codec name, data descriptor, borrowed payload.
#[derive(Debug, PartialEq, Eq)]
pub struct Frame<'a> {
    pub codec: String,
    pub desc: DataDesc,
    pub payload: &'a [u8],
}

/// Decode a frame produced by [`encode_frame`].
pub fn decode_frame(bytes: &[u8]) -> Result<Frame<'_>> {
    let mut pos = 0usize;
    if take(bytes, &mut pos, 4)? != MAGIC_V1 {
        return Err(Error::Corrupt("bad magic (expected FCB1)".into()));
    }
    let (codec, desc) = decode_header(bytes, &mut pos)?;
    let plen = read_u64(bytes, &mut pos)?;
    let plen = usize::try_from(plen)
        .map_err(|_| Error::Corrupt(format!("payload length {plen} exceeds the address space")))?;
    let payload = take(bytes, &mut pos, plen)?;
    if pos != bytes.len() {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes after payload",
            bytes.len() - pos
        )));
    }
    Ok(Frame {
        codec,
        desc,
        payload,
    })
}

/// Encode a chunked `FCB2` frame from per-block payloads. `block_elems` is
/// the elements-per-block the stream was split with; `payloads.len()` must
/// equal `ceil(desc.elements() / block_elems)`.
pub fn encode_chunked_frame<P: AsRef<[u8]>>(
    name: &str,
    desc: &DataDesc,
    block_elems: usize,
    payloads: &[P],
) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    encode_chunked_frame_into(name, desc, block_elems, payloads, &mut out)?;
    Ok(out)
}

/// [`encode_chunked_frame`] into a reusable buffer (contents replaced).
/// Returns the frame length.
pub fn encode_chunked_frame_into<P: AsRef<[u8]>>(
    name: &str,
    desc: &DataDesc,
    block_elems: usize,
    payloads: &[P],
    out: &mut Vec<u8>,
) -> Result<usize> {
    check_chunked_params(desc, block_elems, payloads.len())?;
    let total: usize = payloads.iter().map(|p| p.as_ref().len()).sum();
    out.clear();
    out.reserve(4 + 2 + name.len() + 3 + 8 * desc.dims.len() + 12 + 8 * payloads.len() + total);
    encode_header(MAGIC_V2, name, desc, out)?;
    out.extend_from_slice(&(block_elems as u64).to_le_bytes());
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in payloads {
        out.extend_from_slice(&(p.as_ref().len() as u64).to_le_bytes());
    }
    for p in payloads {
        out.extend_from_slice(p.as_ref());
    }
    Ok(out.len())
}

/// Like [`encode_chunked_frame_into`] but from a `(lengths, contiguous
/// blob)` pair, so a sequential encoder can accumulate blocks through one
/// reused scratch buffer instead of allocating a `Vec` per block.
pub fn encode_chunked_frame_parts_into(
    name: &str,
    desc: &DataDesc,
    block_elems: usize,
    lens: &[usize],
    blob: &[u8],
    out: &mut Vec<u8>,
) -> Result<usize> {
    check_chunked_params(desc, block_elems, lens.len())?;
    let total: usize = lens.iter().sum();
    if total != blob.len() {
        return Err(Error::BadDescriptor(format!(
            "block lengths sum to {total} but the blob holds {} bytes",
            blob.len()
        )));
    }
    out.clear();
    out.reserve(4 + 2 + name.len() + 3 + 8 * desc.dims.len() + 12 + 8 * lens.len() + total);
    encode_header(MAGIC_V2, name, desc, out)?;
    out.extend_from_slice(&(block_elems as u64).to_le_bytes());
    out.extend_from_slice(&(lens.len() as u32).to_le_bytes());
    for &l in lens {
        out.extend_from_slice(&(l as u64).to_le_bytes());
    }
    out.extend_from_slice(blob);
    Ok(out.len())
}

fn check_chunked_params(desc: &DataDesc, block_elems: usize, nblocks: usize) -> Result<()> {
    if block_elems == 0 {
        return Err(Error::BadDescriptor("block_elems must be >= 1".into()));
    }
    let expected = desc.elements().div_ceil(block_elems);
    if nblocks != expected {
        return Err(Error::BadDescriptor(format!(
            "{nblocks} payloads but {} elements in {block_elems}-element blocks need {expected}",
            desc.elements()
        )));
    }
    if nblocks > u32::MAX as usize {
        return Err(Error::Unsupported("too many blocks for FCB2".into()));
    }
    Ok(())
}

/// A decoded chunked frame: shared header fields plus borrowed per-block
/// payload slices in stream order.
#[derive(Debug, PartialEq, Eq)]
pub struct ChunkedFrame<'a> {
    pub codec: String,
    pub desc: DataDesc,
    /// Elements per block (the final block holds the remainder).
    pub block_elems: usize,
    pub payloads: Vec<&'a [u8]>,
}

impl ChunkedFrame<'_> {
    /// Element count of block `i` (the tail block may be short). Returns 0
    /// for `i >= payloads.len()`; the arithmetic saturates so out-of-range
    /// indices and `block_elems` near `usize::MAX` never overflow.
    pub fn block_len(&self, i: usize) -> usize {
        let total = self.desc.elements();
        let start = i.saturating_mul(self.block_elems).min(total);
        self.block_elems.min(total - start)
    }
}

/// Decode a frame produced by [`encode_chunked_frame`].
pub fn decode_chunked_frame(bytes: &[u8]) -> Result<ChunkedFrame<'_>> {
    let mut pos = 0usize;
    if take(bytes, &mut pos, 4)? != MAGIC_V2 {
        return Err(Error::Corrupt("bad magic (expected FCB2)".into()));
    }
    let (codec, desc) = decode_header(bytes, &mut pos)?;
    let block_elems = read_u64(bytes, &mut pos)?;
    let block_elems = usize::try_from(block_elems)
        .ok()
        .filter(|&b| b >= 1)
        .ok_or_else(|| Error::Corrupt(format!("bad block size {block_elems}")))?;
    let nblocks = crate::wire::le_u32(take(bytes, &mut pos, 4)?, 0)?;
    let expected = desc.elements().div_ceil(block_elems);
    if nblocks as usize != expected {
        return Err(Error::Corrupt(format!(
            "frame declares {nblocks} blocks but {} elements in {block_elems}-element \
             blocks need {expected}",
            desc.elements()
        )));
    }
    // Bound the preallocation by the bytes actually present (8 per length)
    // so a hostile count can't trigger a huge allocation before validation.
    let avail = bytes.len().saturating_sub(pos) / 8;
    // lint: claim-checked(count clamped to the directory bytes actually present)
    let mut lens = Vec::with_capacity((nblocks as usize).min(avail));
    for _ in 0..nblocks {
        let l = read_u64(bytes, &mut pos)?;
        let l = usize::try_from(l)
            .map_err(|_| Error::Corrupt(format!("block length {l} exceeds the address space")))?;
        lens.push(l);
    }
    // lint: claim-checked(lens were all parsed from real bytes above)
    let mut payloads = Vec::with_capacity(lens.len());
    for l in lens {
        payloads.push(take(bytes, &mut pos, l)?);
    }
    if pos != bytes.len() {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes after final block",
            bytes.len() - pos
        )));
    }
    Ok(ChunkedFrame {
        codec,
        desc,
        block_elems,
        payloads,
    })
}

/// Encode the streaming `FCB3` prologue — everything before the first
/// block record.
pub fn encode_stream_header(name: &str, desc: &DataDesc, block_elems: usize) -> Result<Vec<u8>> {
    if block_elems == 0 {
        return Err(Error::BadDescriptor("block_elems must be >= 1".into()));
    }
    let mut out = Vec::with_capacity(4 + 2 + name.len() + 3 + 8 * desc.dims.len() + 8);
    encode_header(MAGIC_V3, name, desc, &mut out)?;
    out.extend_from_slice(&(block_elems as u64).to_le_bytes());
    Ok(out)
}

/// Decode a streaming `FCB3` prologue from `src`:
/// `(codec name, descriptor, block elems)`. Reads exactly the prologue
/// bytes, leaving `src` positioned at the first block record.
pub fn decode_stream_header<R: std::io::Read>(src: &mut R) -> Result<(String, DataDesc, usize)> {
    let mut magic = [0u8; 4];
    src.read_exact(&mut magic)?;
    if &magic != MAGIC_V3 {
        return Err(Error::Corrupt("bad magic (expected FCB3)".into()));
    }
    // Accumulate the variable-length header and reuse the slice decoder
    // (and all its validation).
    let mut hdr = vec![0u8; 1];
    src.read_exact(&mut hdr)?;
    let name_len = hdr[0] as usize;
    let mut at = hdr.len();
    hdr.resize(at + name_len + 3, 0); // name, precision, domain, ndims
    src.read_exact(&mut hdr[at..])?;
    let ndims = usize::from(hdr[hdr.len() - 1]);
    at = hdr.len();
    hdr.resize(at + 8 * ndims, 0);
    src.read_exact(&mut hdr[at..])?;
    let mut pos = 0usize;
    let (codec, desc) = decode_header(&hdr, &mut pos)?;
    debug_assert_eq!(pos, hdr.len());

    let mut be = [0u8; 8];
    src.read_exact(&mut be)?;
    let block_elems = u64::from_le_bytes(be);
    let block_elems = usize::try_from(block_elems)
        .ok()
        .filter(|&b| b >= 1)
        .ok_or_else(|| Error::Corrupt(format!("bad block size {block_elems}")))?;
    Ok((codec, desc, block_elems))
}

/// Compress `data` with `codec` and wrap the result in an `FCB1` frame.
pub fn compress_framed(codec: &dyn crate::codec::Compressor, data: &FloatData) -> Result<Vec<u8>> {
    let payload = codec.compress(data)?;
    encode_frame(codec.info().name, data.desc(), &payload)
}

/// Decode a frame and decompress it with `codec`, checking the codec name.
pub fn decompress_framed(codec: &dyn crate::codec::Compressor, bytes: &[u8]) -> Result<FloatData> {
    let frame = decode_frame(bytes)?;
    if frame.codec != codec.info().name {
        return Err(Error::Corrupt(format!(
            "frame was written by codec {:?} but {:?} was asked to decode it",
            frame.codec,
            codec.info().name
        )));
    }
    // Codecs typically reserve the descriptor's full byte length before
    // validating the payload, so gate implausible descriptors here — the
    // FCB1 counterpart of the pipeline's per-block check.
    crate::blocks::check_decode_claim(&frame.desc, frame.payload.len())?;
    codec.decompress(frame.payload, &frame.desc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> DataDesc {
        DataDesc::new(Precision::Double, vec![3, 5], Domain::TimeSeries).unwrap()
    }

    #[test]
    fn round_trip() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let framed = encode_frame("gorilla", &desc(), &payload).unwrap();
        let frame = decode_frame(&framed).unwrap();
        assert_eq!(frame.codec, "gorilla");
        assert_eq!(frame.desc, desc());
        assert_eq!(frame.payload, &payload[..]);
    }

    #[test]
    fn implausible_fcb1_descriptor_is_rejected_before_the_codec_runs() {
        use crate::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};

        /// Panics if decompression is ever attempted.
        struct MustNotDecode;
        impl crate::codec::Compressor for MustNotDecode {
            fn info(&self) -> CodecInfo {
                CodecInfo {
                    name: "nodecode",
                    year: 2024,
                    community: Community::General,
                    class: CodecClass::Delta,
                    platform: Platform::Cpu,
                    parallel: false,
                    precisions: PrecisionSupport::Both,
                }
            }
            fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
                Ok(data.bytes().to_vec())
            }
            fn decompress(&self, _payload: &[u8], _desc: &DataDesc) -> Result<FloatData> {
                panic!("hostile frame must be rejected before the codec runs");
            }
        }

        // A tiny FCB1 frame claiming 2^59 doubles (2^62 bytes): the gate
        // must return a typed error without handing the codec the
        // descriptor (whose byte length it would try to reserve).
        let huge = DataDesc::new(Precision::Double, vec![1usize << 59], Domain::Hpc).unwrap();
        let framed = encode_frame("nodecode", &huge, &[1, 2, 3, 4]).unwrap();
        assert!(matches!(
            decompress_framed(&MustNotDecode, &framed),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn empty_payload_round_trip() {
        let framed = encode_frame("x", &desc(), &[]).unwrap();
        let frame = decode_frame(&framed).unwrap();
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut framed = encode_frame("x", &desc(), &[1, 2, 3]).unwrap();
        framed[0] = b'Z';
        assert!(matches!(decode_frame(&framed), Err(Error::Corrupt(_))));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let framed = encode_frame("gorilla", &desc(), &[9u8; 32]).unwrap();
        for cut in 0..framed.len() {
            assert!(
                decode_frame(&framed[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut framed = encode_frame("x", &desc(), &[1, 2, 3]).unwrap();
        framed.push(0xAA);
        assert!(matches!(decode_frame(&framed), Err(Error::Corrupt(_))));
    }

    #[test]
    fn rejects_bad_precision_and_domain_bytes() {
        let framed = encode_frame("x", &desc(), &[]).unwrap();
        // precision byte sits right after magic + name-len + name
        let ppos = 4 + 1 + 1;
        let mut bad = framed.clone();
        bad[ppos] = 9;
        assert!(decode_frame(&bad).is_err());
        let mut bad = framed.clone();
        bad[ppos + 1] = 9;
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn oversized_params_are_typed_errors_not_panics() {
        let long = "x".repeat(256);
        assert!(matches!(
            encode_frame(&long, &desc(), &[]),
            Err(Error::NameTooLong { len: 256 })
        ));
        let many = DataDesc::new(Precision::Single, vec![1; 300], Domain::Hpc).unwrap();
        assert!(matches!(
            encode_frame("x", &many, &[]),
            Err(Error::TooManyDims { ndims: 300 })
        ));
        assert!(check_frame_params("x", &desc()).is_ok());
    }

    #[test]
    fn all_domains_and_precisions_encode() {
        for domain in Domain::ALL {
            for precision in [Precision::Single, Precision::Double] {
                let d = DataDesc::new(precision, vec![2, 2, 2], domain).unwrap();
                let framed = encode_frame("c", &d, &[0xFF]).unwrap();
                let frame = decode_frame(&framed).unwrap();
                assert_eq!(frame.desc.domain, domain);
                assert_eq!(frame.desc.precision, precision);
            }
        }
    }

    #[test]
    fn chunked_round_trip() {
        let d = DataDesc::new(Precision::Single, vec![10], Domain::Hpc).unwrap();
        // 10 elements in 4-element blocks => 3 blocks.
        let payloads = [vec![1u8, 2], vec![3u8], vec![4u8, 5, 6]];
        let framed = encode_chunked_frame("chimp128", &d, 4, &payloads).unwrap();
        let frame = decode_chunked_frame(&framed).unwrap();
        assert_eq!(frame.codec, "chimp128");
        assert_eq!(frame.desc, d);
        assert_eq!(frame.block_elems, 4);
        assert_eq!(frame.payloads.len(), 3);
        assert_eq!(frame.payloads[2], &[4, 5, 6]);
        assert_eq!(frame.block_len(0), 4);
        assert_eq!(frame.block_len(2), 2);
    }

    #[test]
    fn chunked_rejects_wrong_block_count_and_truncation() {
        let d = DataDesc::new(Precision::Single, vec![10], Domain::Hpc).unwrap();
        // Wrong payload count at encode time.
        assert!(encode_chunked_frame("c", &d, 4, &[vec![0u8]]).is_err());
        assert!(encode_chunked_frame::<Vec<u8>>("c", &d, 0, &[]).is_err());

        let payloads = [vec![1u8, 2], vec![3u8], vec![4u8, 5, 6]];
        let framed = encode_chunked_frame("c", &d, 4, &payloads).unwrap();
        for cut in 0..framed.len() {
            assert!(decode_chunked_frame(&framed[..cut]).is_err());
        }
        let mut extra = framed.clone();
        extra.push(0);
        assert!(decode_chunked_frame(&extra).is_err());
        // FCB1 magic on an FCB2 decoder and vice versa.
        assert!(decode_chunked_frame(&encode_frame("c", &d, &[]).unwrap()).is_err());
        assert!(decode_frame(&framed).is_err());
    }

    #[test]
    fn chunked_encode_into_reuses_buffer() {
        let d = DataDesc::new(Precision::Single, vec![4], Domain::Hpc).unwrap();
        let mut buf = vec![0xFF; 3];
        let n = encode_chunked_frame_into("c", &d, 4, &[vec![9u8, 9]], &mut buf).unwrap();
        assert_eq!(n, buf.len());
        let frame = decode_chunked_frame(&buf).unwrap();
        assert_eq!(frame.payloads, vec![&[9u8, 9][..]]);
    }
}

//! Error types shared by every FCBench-rs crate.

use std::fmt;

/// Errors that can occur while compressing, decompressing, or framing data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The compressed stream is malformed or truncated.
    Corrupt(String),
    /// The codec does not support the requested precision
    /// (e.g. pFPC and GFC are double-only, per Table 1 of the paper).
    UnsupportedPrecision {
        codec: &'static str,
        precision: crate::data::Precision,
    },
    /// The data description is inconsistent (dims product != element count,
    /// byte length not a multiple of the element size, ...).
    BadDescriptor(String),
    /// The input violates a codec-specific constraint
    /// (e.g. GFC's 512 MB input limit, BUFF's precision table bounds).
    Unsupported(String),
    /// A name lookup in a [`CodecRegistry`](crate::registry::CodecRegistry)
    /// found no such codec. Carries the registry's available names so the
    /// boundary that surfaces the error (CLI, network reply) can say what
    /// *would* have worked.
    UnknownCodec {
        requested: String,
        available: Vec<String>,
    },
    /// A codec name longer than the frame format's 255-byte name field.
    NameTooLong { len: usize },
    /// More dimensions than the frame format's single-byte dim count.
    TooManyDims { ndims: usize },
    /// Decompressed output did not match the original input byte-for-byte.
    LosslessViolation { codec: String },
    /// A codec panicked inside a worker-pool job; the panic was caught and
    /// the pool kept running, but the job is lost.
    WorkerPanic(String),
    /// An I/O error from the on-disk container (message only, to stay `Clone`).
    Io(String),
    /// The server is saturated and shed this request instead of queueing
    /// it unboundedly. Carries the server's backoff hint; retrying after
    /// (at least) that long is expected to succeed. The only error variant
    /// that *invites* an automatic retry — see `RetryPolicy` in
    /// `fcbench-serve`.
    Busy {
        /// Suggested minimum wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A stored checksum did not match the recomputed one — corruption
    /// *inside* the committed region of a container. (A torn tail after the
    /// last commit point is recovered, not errored; see `fcbench-dbsim`.)
    ChecksumMismatch {
        /// What was being validated ("container prologue", "chunk record", ...).
        context: String,
        stored: u32,
        computed: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Corrupt(msg) => write!(f, "corrupt compressed stream: {msg}"),
            Error::UnsupportedPrecision { codec, precision } => {
                write!(f, "codec {codec} does not support {precision:?} precision")
            }
            Error::BadDescriptor(msg) => write!(f, "bad data descriptor: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported input: {msg}"),
            Error::UnknownCodec {
                requested,
                available,
            } => {
                write!(
                    f,
                    "codec {requested:?} is not registered (available: {})",
                    available.join(", ")
                )
            }
            Error::NameTooLong { len } => {
                write!(f, "codec name is {len} bytes; frames allow at most 255")
            }
            Error::TooManyDims { ndims } => {
                write!(
                    f,
                    "descriptor has {ndims} dimensions; frames allow at most 255"
                )
            }
            Error::LosslessViolation { codec } => {
                write!(
                    f,
                    "codec {codec} violated losslessness (round-trip mismatch)"
                )
            }
            Error::WorkerPanic(msg) => {
                write!(f, "codec panicked in a pool worker: {msg}")
            }
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::Busy { retry_after_ms } => {
                write!(f, "server is busy; retry after {retry_after_ms}ms")
            }
            Error::ChecksumMismatch {
                context,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "checksum mismatch in {context}: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Precision;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::Corrupt("truncated header".into());
        assert!(e.to_string().contains("truncated header"));

        let e = Error::UnsupportedPrecision {
            codec: "gfc",
            precision: Precision::Single,
        };
        assert!(e.to_string().contains("gfc"));
        assert!(e.to_string().contains("Single"));

        let e = Error::LosslessViolation {
            codec: "spdp".into(),
        };
        assert!(e.to_string().contains("spdp"));
    }

    #[test]
    fn frame_limit_errors_name_the_limit() {
        let e = Error::NameTooLong { len: 300 };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("255"));
        let e = Error::TooManyDims { ndims: 1000 };
        assert!(e.to_string().contains("1000"));
        assert!(e.to_string().contains("255"));
    }

    #[test]
    fn worker_panic_names_the_payload() {
        let e = Error::WorkerPanic("index out of bounds".into());
        assert!(e.to_string().contains("panicked"));
        assert!(e.to_string().contains("index out of bounds"));
    }

    #[test]
    fn unknown_codec_lists_the_alternatives() {
        let e = Error::UnknownCodec {
            requested: "zstd".into(),
            available: vec!["gorilla".into(), "chimp128".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("\"zstd\""));
        assert!(msg.contains("gorilla, chimp128"));
    }

    #[test]
    fn checksum_mismatch_names_context_and_both_values() {
        let e = Error::ChecksumMismatch {
            context: "commit directory".into(),
            stored: 0xDEAD_BEEF,
            computed: 0x0000_0001,
        };
        let msg = e.to_string();
        assert!(msg.contains("commit directory"));
        assert!(msg.contains("0xdeadbeef"));
        assert!(msg.contains("0x00000001"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("missing file"));
    }
}

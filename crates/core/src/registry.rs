//! A first-class registry of compression methods.
//!
//! The benchmark harness, database simulation, examples, and tests all used
//! to build ad-hoc `Vec<Box<dyn Compressor>>` lists; the registry replaces
//! those with one queryable catalogue supporting lookup by name, filtering
//! by [`Platform`] / [`CodecClass`] / precision, and iteration in
//! registration order. Entries hold `Arc<dyn Compressor>` so the same codec
//! instance can be shared across worker threads (see
//! [`crate::pipeline::Pipeline`]) without re-construction.
//!
//! Three per-entry capabilities ride along:
//!
//! - **block-capable** — the codec tolerates being driven block-at-a-time
//!   (the paper's Table 10 keeps 8 of the 14);
//! - **thread-scalable** — the execution engine may fan the codec's blocks
//!   out across [`WorkerPool`](crate::pool::WorkerPool) workers; this flag
//!   gates pool dispatch for pipelines built from the registry;
//! - **scalable** — a factory producing the codec configured for an
//!   explicit internal worker count (Tables 7–8 sweep four of them).

use crate::codec::{CodecClass, Compressor, Platform};
use crate::data::Precision;
use crate::error::{Error, Result};
use std::sync::Arc;

/// Factory producing a codec configured for a given thread count.
pub type ScaleFn = dyn Fn(usize) -> Box<dyn Compressor> + Send + Sync;

/// One registered codec plus its capabilities.
pub struct RegistryEntry {
    codec: Arc<dyn Compressor>,
    block_capable: bool,
    thread_scalable: bool,
    scale: Option<Box<ScaleFn>>,
}

impl RegistryEntry {
    /// Wrap a codec with no extra capabilities.
    pub fn new(codec: impl Compressor + 'static) -> Self {
        Self::from_arc(Arc::new(codec))
    }

    /// Wrap an already-shared codec.
    pub fn from_arc(codec: Arc<dyn Compressor>) -> Self {
        RegistryEntry {
            codec,
            block_capable: false,
            thread_scalable: false,
            scale: None,
        }
    }

    /// Mark the codec as usable under fixed-size block decomposition.
    pub fn block_capable(mut self) -> Self {
        self.block_capable = true;
        self
    }

    /// Mark the codec as safe and sensible to fan out across the
    /// [`WorkerPool`](crate::pool::WorkerPool)'s block-parallel workers.
    /// This is the flag that gates pool dispatch when a
    /// [`Pipeline`](crate::pipeline::Pipeline) is built from the registry:
    /// unmarked entries (e.g. the GPU-simulated codecs, whose kernels
    /// already model device-wide parallelism) run inline regardless of the
    /// configured thread count.
    pub fn thread_scalable(mut self) -> Self {
        self.thread_scalable = true;
        self
    }

    /// Attach a thread-count factory (Tables 7–8 scalability sweeps).
    pub fn scalable(
        mut self,
        factory: impl Fn(usize) -> Box<dyn Compressor> + Send + Sync + 'static,
    ) -> Self {
        self.scale = Some(Box::new(factory));
        self
    }

    /// The shared codec instance.
    pub fn codec(&self) -> &Arc<dyn Compressor> {
        &self.codec
    }

    /// Canonical codec name (from [`Compressor::info`]).
    pub fn name(&self) -> &'static str {
        self.codec.info().name
    }

    /// Is this codec driven block-at-a-time in the Table 10 study?
    pub fn is_block_capable(&self) -> bool {
        self.block_capable
    }

    /// May the execution engine dispatch this codec's blocks across pool
    /// workers?
    pub fn is_thread_scalable(&self) -> bool {
        self.thread_scalable
    }

    /// Does this entry carry a thread-count factory?
    pub fn is_scalable(&self) -> bool {
        self.scale.is_some()
    }
}

impl<C: Compressor + 'static> From<C> for RegistryEntry {
    fn from(codec: C) -> Self {
        RegistryEntry::new(codec)
    }
}

/// An ordered, name-unique collection of compression methods.
#[derive(Default)]
pub struct CodecRegistry {
    entries: Vec<RegistryEntry>,
}

impl CodecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        CodecRegistry::default()
    }

    /// Register an entry (or bare codec, via `Into`). Names must be unique;
    /// re-registering a name is an error so lookups stay unambiguous.
    pub fn register(&mut self, entry: impl Into<RegistryEntry>) -> Result<()> {
        let entry = entry.into();
        let name = entry.name();
        if self.entry(name).is_some() {
            return Err(Error::Unsupported(format!(
                "codec {name:?} is already registered"
            )));
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Builder-style [`register`](Self::register) that panics on duplicates —
    /// for static catalogues written out in source.
    #[must_use]
    pub fn with(mut self, entry: impl Into<RegistryEntry>) -> Self {
        self.register(entry).expect("duplicate codec name");
        self
    }

    /// Number of registered codecs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The full entry for `name`, if registered.
    pub fn entry(&self, name: &str) -> Option<&RegistryEntry> {
        self.entries.iter().find(|e| e.name() == name)
    }

    /// The shared codec instance for `name`, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Compressor>> {
        self.entry(name).map(|e| Arc::clone(&e.codec))
    }

    /// Like [`get`](Self::get) but with a typed [`Error::UnknownCodec`]
    /// that lists every registered name — the error a serving boundary can
    /// hand straight back to a client that asked for a codec it misspelled.
    pub fn require(&self, name: &str) -> Result<Arc<dyn Compressor>> {
        self.get(name).ok_or_else(|| self.unknown(name))
    }

    /// The [`Error::UnknownCodec`] for a failed lookup of `name`.
    pub fn unknown(&self, name: &str) -> Error {
        Error::UnknownCodec {
            requested: name.to_string(),
            available: self.names().iter().map(|n| n.to_string()).collect(),
        }
    }

    /// Entries in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter()
    }

    /// Shared codec handles in registration order.
    pub fn codecs(&self) -> impl Iterator<Item = &Arc<dyn Compressor>> {
        self.entries.iter().map(|e| &e.codec)
    }

    /// Codec names in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }

    /// Entries whose codec metadata satisfies `pred`.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&crate::codec::CodecInfo) -> bool + 'a,
    ) -> impl Iterator<Item = &'a RegistryEntry> {
        self.entries.iter().filter(move |e| pred(&e.codec.info()))
    }

    /// Entries targeting `platform` (Table 1's CPU/GPU split).
    pub fn by_platform(&self, platform: Platform) -> impl Iterator<Item = &RegistryEntry> {
        self.filter(move |i| i.platform == platform)
    }

    /// Entries in predictor/transform family `class` (Figure 6b grouping).
    pub fn by_class(&self, class: CodecClass) -> impl Iterator<Item = &RegistryEntry> {
        self.filter(move |i| i.class == class)
    }

    /// Entries whose precision support accepts `precision`.
    pub fn accepting(&self, precision: Precision) -> impl Iterator<Item = &RegistryEntry> {
        self.filter(move |i| i.precisions.accepts(precision))
    }

    /// Block-capable entries (the Table 10 set).
    pub fn block_capable(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter().filter(|e| e.block_capable)
    }

    /// Entries the execution engine may dispatch across pool workers.
    pub fn thread_scalable(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter().filter(|e| e.thread_scalable)
    }

    /// Names of the entries carrying a thread-count factory (the Tables 7–8
    /// set).
    pub fn scalable_names(&self) -> Vec<&'static str> {
        self.entries
            .iter()
            .filter(|e| e.is_scalable())
            .map(|e| e.name())
            .collect()
    }

    /// Construct `name` configured for `threads` workers via its registered
    /// factory. Errors if the codec is unknown or not thread-scalable.
    pub fn scaled(&self, name: &str, threads: usize) -> Result<Box<dyn Compressor>> {
        let entry = self.entry(name).ok_or_else(|| self.unknown(name))?;
        let factory = entry
            .scale
            .as_ref()
            .ok_or_else(|| Error::Unsupported(format!("codec {name:?} is not thread-scalable")))?;
        Ok(factory(threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecInfo, Community, PrecisionSupport};
    use crate::data::{DataDesc, FloatData};

    struct Fake(&'static str, Platform, CodecClass, PrecisionSupport);

    impl Compressor for Fake {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: self.0,
                year: 2024,
                community: Community::General,
                class: self.2,
                platform: self.1,
                parallel: false,
                precisions: self.3,
            }
        }
        fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
            Ok(data.bytes().to_vec())
        }
        fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
            FloatData::from_bytes(desc.clone(), payload.to_vec())
        }
    }

    fn sample() -> CodecRegistry {
        CodecRegistry::new()
            .with(
                RegistryEntry::new(Fake(
                    "a",
                    Platform::Cpu,
                    CodecClass::Delta,
                    PrecisionSupport::Both,
                ))
                .block_capable()
                .thread_scalable()
                .scalable(|_t| {
                    Box::new(Fake(
                        "a",
                        Platform::Cpu,
                        CodecClass::Delta,
                        PrecisionSupport::Both,
                    ))
                }),
            )
            .with(Fake(
                "b",
                Platform::Gpu,
                CodecClass::Dictionary,
                PrecisionSupport::DoubleOnly,
            ))
    }

    #[test]
    fn lookup_iteration_and_order() {
        let r = sample();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.names(), vec!["a", "b"]);
        assert_eq!(r.get("a").unwrap().info().name, "a");
        assert!(r.get("zz").is_none());
        let err = match r.require("zz") {
            Ok(_) => panic!("lookup of \"zz\" must fail"),
            Err(e) => e,
        };
        match &err {
            Error::UnknownCodec {
                requested,
                available,
            } => {
                assert_eq!(requested, "zz");
                assert_eq!(available, &["a", "b"]);
            }
            other => panic!("expected UnknownCodec, got {other:?}"),
        }
        assert!(err.to_string().contains("a, b"));
        assert_eq!(r.codecs().count(), 2);
    }

    #[test]
    fn filters() {
        let r = sample();
        let cpu: Vec<_> = r.by_platform(Platform::Cpu).map(|e| e.name()).collect();
        assert_eq!(cpu, vec!["a"]);
        let dict: Vec<_> = r
            .by_class(CodecClass::Dictionary)
            .map(|e| e.name())
            .collect();
        assert_eq!(dict, vec!["b"]);
        let single: Vec<_> = r.accepting(Precision::Single).map(|e| e.name()).collect();
        assert_eq!(single, vec!["a"]);
        let blocky: Vec<_> = r.block_capable().map(|e| e.name()).collect();
        assert_eq!(blocky, vec!["a"]);
        let pooled: Vec<_> = r.thread_scalable().map(|e| e.name()).collect();
        assert_eq!(pooled, vec!["a"]);
        assert!(r.entry("a").unwrap().is_thread_scalable());
        assert!(!r.entry("b").unwrap().is_thread_scalable());
    }

    #[test]
    fn scalable_entries() {
        let r = sample();
        assert_eq!(r.scalable_names(), vec!["a"]);
        assert!(r.scaled("a", 8).is_ok());
        assert!(r.scaled("b", 8).is_err());
        assert!(r.scaled("zz", 8).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut r = sample();
        let err = r
            .register(Fake(
                "a",
                Platform::Cpu,
                CodecClass::Delta,
                PrecisionSupport::Both,
            ))
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }
}

//! Chunked, block-parallel compression pipeline — a thin façade over the
//! persistent [`WorkerPool`] execution engine.
//!
//! [`Pipeline`] splits a [`FloatData`] element stream into fixed-size blocks
//! (the discipline FCBench applies to its ndzip/GPU methods and the Table 10
//! page study), compresses the blocks independently, and emits the
//! self-describing chunked [`FCB2`
//! frame](crate::frame::encode_chunked_frame). Decompression reverses the
//! process and reassembles the exact original bytes.
//!
//! With more than one thread configured, blocks are **submitted to a
//! long-lived [`WorkerPool`]** rather than to per-call scoped threads: the
//! pool is spawned once (lazily, on the first multi-block call) and reused
//! by every subsequent call, so worker scratch — slot buffers, codec
//! thread-locals such as chimp's window state — reaches steady state across
//! calls instead of being rebuilt each time. Pipelines built from a
//! [`CodecRegistry`] honour the entry's `thread_scalable` capability: codecs
//! not marked for pool dispatch (e.g. the GPU-simulated methods, which
//! already model device-wide parallelism) run inline regardless of the
//! configured thread count.
//!
//! For datasets that should never be fully resident, the same engine drives
//! the streaming [`FrameWriter`](crate::stream::FrameWriter) /
//! [`FrameReader`](crate::stream::FrameReader) pair — see
//! [`Pipeline::frame_writer`] and [`Pipeline::frame_reader`].
//!
//! ```
//! use fcbench_core::pipeline::Pipeline;
//! use fcbench_core::registry::{CodecRegistry, RegistryEntry};
//! use fcbench_core::{Domain, FloatData};
//! # use fcbench_core::{codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport},
//! #                    Compressor, DataDesc, Result};
//! # struct Store;
//! # impl Compressor for Store {
//! #     fn info(&self) -> CodecInfo {
//! #         CodecInfo { name: "store", year: 2024, community: Community::General,
//! #                     class: CodecClass::Delta, platform: Platform::Cpu,
//! #                     parallel: false, precisions: PrecisionSupport::Both }
//! #     }
//! #     fn compress(&self, data: &FloatData) -> Result<Vec<u8>> { Ok(data.bytes().to_vec()) }
//! #     fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
//! #         FloatData::from_bytes(desc.clone(), payload.to_vec())
//! #     }
//! # }
//! let registry = CodecRegistry::new().with(RegistryEntry::new(Store).thread_scalable());
//! let pipeline = Pipeline::new(&registry, "store")
//!     .unwrap()
//!     .block_elems(64 * 1024)
//!     .threads(4);
//!
//! let values: Vec<f64> = (0..200_000).map(|i| (i as f64).sin()).collect();
//! let data = FloatData::from_f64(&values, vec![values.len()], Domain::TimeSeries).unwrap();
//! let frame = pipeline.compress(&data).unwrap();
//! let back = pipeline.decompress(&frame).unwrap();
//! assert_eq!(back.bytes(), data.bytes());
//! ```

use crate::codec::Compressor;
use crate::data::{DataDesc, FloatData};
use crate::error::{Error, Result};
use crate::frame::{decode_chunked_frame, encode_chunked_frame_parts_into};
use crate::pool::{PoolConfig, Ticket, WorkerPool};
use crate::registry::CodecRegistry;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// Default elements per block: 64 Ki elements, the paper's bitshuffle/nvCOMP
/// working-set scale.
pub const DEFAULT_BLOCK_ELEMS: usize = 64 * 1024;

/// Cap on the speculative upfront reservation for decoding: output memory
/// beyond this grows only with actually-decoded data, so a tiny hostile
/// frame claiming petabytes cannot force a huge allocation. (Per-block
/// output claims are additionally gated against payload plausibility —
/// see [`crate::blocks::check_decode_claim`].)
const MAX_UPFRONT_RESERVE: usize = 16 * 1024 * 1024;

/// A configured block-parallel compression pipeline around one codec.
pub struct Pipeline {
    codec: Arc<dyn Compressor>,
    block_elems: usize,
    threads: usize,
    /// `false` forces inline execution (registry entries not marked
    /// `thread_scalable`).
    pool_dispatch: bool,
    /// The lazily-spawned private engine (unused when an external pool was
    /// attached via [`Pipeline::with_pool`], which pre-fills it).
    pool: OnceLock<Arc<WorkerPool>>,
}

impl Pipeline {
    /// Build a pipeline around the registered codec `name`. Pool dispatch
    /// is gated on the entry's `thread_scalable` capability: unmarked
    /// codecs execute inline whatever [`threads`](Self::threads) says.
    pub fn new(registry: &CodecRegistry, name: &str) -> Result<Self> {
        let entry = registry.entry(name).ok_or_else(|| registry.unknown(name))?;
        let mut p = Self::with_codec(Arc::clone(entry.codec()));
        p.pool_dispatch = entry.is_thread_scalable();
        Ok(p)
    }

    /// Build a pipeline around an explicit codec handle (pool dispatch
    /// ungated).
    pub fn with_codec(codec: Arc<dyn Compressor>) -> Self {
        Pipeline {
            codec,
            block_elems: DEFAULT_BLOCK_ELEMS,
            threads: 1,
            pool_dispatch: true,
            pool: OnceLock::new(),
        }
    }

    /// Build a pipeline that shares an existing [`WorkerPool`] instead of
    /// owning one — the way to drive many codecs through a single warm
    /// engine. The thread count defaults to the pool's.
    pub fn with_pool(codec: Arc<dyn Compressor>, pool: Arc<WorkerPool>) -> Self {
        let mut p = Self::with_codec(codec);
        p.threads = pool.threads();
        // `p` was freshly constructed above, so its OnceLock is empty and
        // this set always lands.
        let _ = p.pool.set(pool);
        p
    }

    /// Set the block size in elements (clamped to at least 1).
    #[must_use]
    pub fn block_elems(mut self, elems: usize) -> Self {
        self.block_elems = elems.max(1);
        self
    }

    /// Set the worker-thread count (clamped to at least 1; 1 = run inline).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The codec this pipeline drives.
    pub fn codec(&self) -> &Arc<dyn Compressor> {
        &self.codec
    }

    /// The configured block size in elements.
    pub fn block_size(&self) -> usize {
        self.block_elems
    }

    /// The thread count the engine will actually use: the configured count,
    /// or 1 when the registry gated this codec off pool dispatch.
    pub fn effective_threads(&self) -> usize {
        if self.pool_dispatch {
            self.threads
        } else {
            1
        }
    }

    /// The execution engine, spawned on first use. `None` means inline
    /// execution (single thread, or pool dispatch gated off).
    pub fn engine(&self) -> Option<&Arc<WorkerPool>> {
        if self.effective_threads() <= 1 {
            return None;
        }
        Some(self.pool.get_or_init(|| {
            Arc::new(WorkerPool::new(
                PoolConfig::with_threads(self.threads).block_elems(self.block_elems),
            ))
        }))
    }

    /// Compress `data` into a freshly allocated `FCB2` frame.
    pub fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compress_into(data, &mut out)?;
        Ok(out)
    }

    /// Compress `data` into `out` (contents replaced, capacity reused).
    /// Returns the frame length.
    pub fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let desc = data.desc();
        let esize = desc.precision.bytes();
        // Saturate: block_elems beyond the element count means one block, and
        // any bpb >= data.bytes().len() chunks identically (no overflow UB).
        let bpb = self.block_elems.saturating_mul(esize);
        let nblocks = data.elements().div_ceil(self.block_elems);
        let bytes = data.bytes();

        let pool = if nblocks > 1 { self.engine() } else { None };
        let Some(pool) = pool else {
            // Inline path: reusable scratch + payload buffer, contiguous
            // blob — no per-block allocation.
            let (lens, blob) =
                crate::blocks::compress_blocks_sequential(&*self.codec, data, bpb, nblocks)?;
            return encode_chunked_frame_parts_into(
                self.codec.info().name,
                desc,
                self.block_elems,
                &lens,
                &blob,
                out,
            );
        };

        // Engine path: feed blocks to the persistent pool, collecting
        // completed payloads in submission order so the queue stays at most
        // `queue_depth` deep. Workers reuse warm slot buffers; this loop
        // owns only the (lens, blob) accumulator the frame is built from.
        // `submit_compress_draining` applies the saturation discipline:
        // when the pool is full, the drain closure collects our own oldest
        // block instead of blocking with tickets in hand.
        let mut lens: Vec<usize> = Vec::with_capacity(nblocks);
        let mut blob: Vec<u8> = Vec::new();
        let mut pending: VecDeque<Ticket> = VecDeque::with_capacity(pool.queue_depth());
        let mut first_err: Option<Error> = None;
        let mut bdesc = DataDesc {
            precision: desc.precision,
            dims: vec![0],
            domain: desc.domain,
        };

        /// Collect the oldest in-flight block into (lens, blob); `false`
        /// when nothing is in flight.
        fn collect_front(
            pending: &mut VecDeque<Ticket>,
            lens: &mut Vec<usize>,
            blob: &mut Vec<u8>,
        ) -> Result<bool> {
            let Some(ticket) = pending.pop_front() else {
                return Ok(false);
            };
            let n = ticket.collect(|payload| {
                blob.extend_from_slice(payload);
                payload.len()
            })?;
            lens.push(n);
            Ok(true)
        }

        for i in 0..nblocks {
            let start = i * bpb;
            let end = (start + bpb).min(bytes.len());
            bdesc.dims[0] = (end - start) / esize;
            let block = &bytes[start..end];
            let submitted = pool.submit_compress_draining(&self.codec, &bdesc, block, || {
                collect_front(&mut pending, &mut lens, &mut blob)
            });
            match submitted {
                Ok(t) => pending.push_back(t),
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        // Always empty the queue — outstanding slots must be recycled even
        // after an error (their results are discarded past the first error).
        while !pending.is_empty() {
            if let Err(e) = collect_front(&mut pending, &mut lens, &mut blob) {
                let _ = first_err.get_or_insert(e);
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        encode_chunked_frame_parts_into(
            self.codec.info().name,
            desc,
            self.block_elems,
            &lens,
            &blob,
            out,
        )
    }

    /// Decode an `FCB2` frame produced by this pipeline's codec into a
    /// freshly allocated container.
    pub fn decompress(&self, frame: &[u8]) -> Result<FloatData> {
        let mut out = FloatData::scratch();
        self.decompress_into(frame, &mut out)?;
        Ok(out)
    }

    /// Decode an `FCB2` frame into a reusable container.
    ///
    /// The frame's block size takes precedence over the pipeline's
    /// configured one — frames are self-describing. Every declared size in
    /// the frame is untrusted: per-block output claims are gated against
    /// payload plausibility before any codec runs, and output memory is
    /// reserved incrementally, so a tiny hostile frame cannot force a huge
    /// allocation.
    pub fn decompress_into(&self, frame: &[u8], out: &mut FloatData) -> Result<()> {
        let frame = decode_chunked_frame(frame)?;
        let name = self.codec.info().name;
        if frame.codec != name {
            return Err(Error::Corrupt(format!(
                "frame was written by codec {:?} but {:?} was asked to decode it",
                frame.codec, name
            )));
        }
        let desc = frame.desc.clone();
        let nblocks = frame.payloads.len();
        let pool = if nblocks > 1 { self.engine() } else { None };

        out.refill(&desc, |bytes| {
            // Blocks are appended in stream order — no zero-fill of the
            // output, every byte written exactly once, allocation growth
            // bounded by actually-decoded data.
            bytes.reserve(desc.byte_len().min(MAX_UPFRONT_RESERVE));

            let Some(pool) = pool else {
                let mut scratch = FloatData::scratch();
                for (i, payload) in frame.payloads.iter().enumerate() {
                    crate::blocks::decode_block_into(
                        &*self.codec,
                        &desc,
                        frame.block_len(i),
                        payload,
                        &mut scratch,
                        bytes,
                    )?;
                }
                return Ok(());
            };

            // Engine path: workers decode blocks concurrently (each gated
            // for plausibility and size-checked); collection in submission
            // order reassembles the stream, with the same saturation
            // discipline as the compress path.
            let mut pending: VecDeque<Ticket> = VecDeque::with_capacity(pool.queue_depth());
            let mut first_err: Option<Error> = None;
            let mut bdesc = DataDesc {
                precision: desc.precision,
                dims: vec![0],
                domain: desc.domain,
            };

            /// Append the oldest in-flight decoded block; `false` when
            /// nothing is in flight.
            fn collect_front(pending: &mut VecDeque<Ticket>, bytes: &mut Vec<u8>) -> Result<bool> {
                let Some(ticket) = pending.pop_front() else {
                    return Ok(false);
                };
                ticket.collect(|decoded| bytes.extend_from_slice(decoded))?;
                Ok(true)
            }

            for (i, payload) in frame.payloads.iter().enumerate() {
                bdesc.dims[0] = frame.block_len(i);
                let submitted =
                    pool.submit_decompress_draining(&self.codec, &bdesc, payload, || {
                        collect_front(&mut pending, bytes)
                    });
                match submitted {
                    Ok(t) => pending.push_back(t),
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
            while !pending.is_empty() {
                if let Err(e) = collect_front(&mut pending, bytes) {
                    let _ = first_err.get_or_insert(e);
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })
    }

    /// A streaming `FCB3` writer over this pipeline's codec, block size, and
    /// engine: element bytes go in chunk-by-chunk, compressed block records
    /// come out on `sink`, and the dataset is never fully resident.
    pub fn frame_writer<W: std::io::Write>(
        &self,
        desc: &DataDesc,
        sink: W,
    ) -> Result<crate::stream::FrameWriter<W>> {
        crate::stream::FrameWriter::new(
            sink,
            Arc::clone(&self.codec),
            desc.clone(),
            self.block_elems,
            self.engine().cloned(),
        )
    }

    /// A streaming `FCB3` reader over this pipeline's codec and engine;
    /// decoded blocks come out in stream order, read-ahead bounded by the
    /// engine's queue depth.
    pub fn frame_reader<R: std::io::Read>(&self, src: R) -> Result<crate::stream::FrameReader<R>> {
        crate::stream::FrameReader::new(src, Arc::clone(&self.codec), self.engine().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
    use crate::data::Domain;
    use crate::registry::{CodecRegistry, RegistryEntry};

    /// Store codec with a 2-byte header so block boundaries are observable.
    struct HeaderedStore;

    impl Compressor for HeaderedStore {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "hstore",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
            out.clear();
            out.extend_from_slice(&[0xAB, 0xCD]);
            out.extend_from_slice(data.bytes());
            Ok(out.len())
        }
        fn decompress_into(
            &self,
            payload: &[u8],
            desc: &DataDesc,
            out: &mut FloatData,
        ) -> Result<()> {
            if payload.len() < 2 || payload[0] != 0xAB || payload[1] != 0xCD {
                return Err(Error::Corrupt("bad hstore header".into()));
            }
            out.refill_from_slice(desc, &payload[2..])
        }
    }

    fn registry() -> CodecRegistry {
        CodecRegistry::new().with(RegistryEntry::new(HeaderedStore).thread_scalable())
    }

    fn sample(n: usize) -> FloatData {
        let vals: Vec<f64> = (0..n)
            .map(|i| match i % 7 {
                0 => f64::NAN,
                1 => -0.0,
                2 => 5e-324,
                _ => i as f64 * 0.37,
            })
            .collect();
        FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).unwrap()
    }

    #[test]
    fn unknown_codec_is_a_typed_error() {
        assert!(matches!(
            Pipeline::new(&registry(), "nope"),
            Err(Error::UnknownCodec { requested, available })
                if requested == "nope" && !available.is_empty()
        ));
    }

    #[test]
    fn round_trips_across_block_sizes_and_threads() {
        let r = registry();
        let n = 1000;
        let data = sample(n);
        for block in [1usize, n - 1, n, n + 1, 64 * 1024] {
            for threads in [1usize, 2, 8] {
                let p = Pipeline::new(&r, "hstore")
                    .unwrap()
                    .block_elems(block)
                    .threads(threads);
                let frame = p.compress(&data).unwrap();
                let back = p.decompress(&frame).unwrap();
                assert_eq!(
                    back.bytes(),
                    data.bytes(),
                    "block {block} x threads {threads}"
                );
                assert_eq!(back.desc(), data.desc());
            }
        }
    }

    #[test]
    fn repeated_calls_reuse_one_engine() {
        let r = registry();
        let p = Pipeline::new(&r, "hstore")
            .unwrap()
            .block_elems(64)
            .threads(4);
        let data = sample(1000);
        let mut frame = Vec::new();
        let mut out = FloatData::scratch();
        for _ in 0..5 {
            p.compress_into(&data, &mut frame).unwrap();
            p.decompress_into(&frame, &mut out).unwrap();
            assert_eq!(out.bytes(), data.bytes());
        }
        // The engine was spawned exactly once and never re-spawned a thread.
        let pool = p.engine().expect("multi-thread pipeline has an engine");
        assert_eq!(pool.threads_spawned(), 4);
        // 5 rounds x ceil(1000/64) blocks x (compress + decompress).
        assert_eq!(pool.jobs_completed(), 5 * 2 * 16);
    }

    #[test]
    fn registry_gating_forces_inline_execution() {
        // Entry NOT marked thread_scalable: threads(8) must stay inline.
        let r = CodecRegistry::new().with(HeaderedStore);
        let p = Pipeline::new(&r, "hstore").unwrap().threads(8);
        assert_eq!(p.effective_threads(), 1);
        assert!(p.engine().is_none());
        let data = sample(300);
        let frame = p.compress(&data).unwrap();
        assert_eq!(p.decompress(&frame).unwrap().bytes(), data.bytes());

        // Marked entry: engine engages.
        let p = Pipeline::new(&registry(), "hstore").unwrap().threads(8);
        assert_eq!(p.effective_threads(), 8);
    }

    #[test]
    fn shared_pool_drives_multiple_pipelines() {
        let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(2)));
        let a = Pipeline::with_pool(Arc::new(HeaderedStore), Arc::clone(&pool)).block_elems(32);
        let b = Pipeline::with_pool(Arc::new(HeaderedStore), Arc::clone(&pool)).block_elems(96);
        let data = sample(500);
        let fa = a.compress(&data).unwrap();
        let fb = b.compress(&data).unwrap();
        assert_eq!(a.decompress(&fa).unwrap().bytes(), data.bytes());
        assert_eq!(b.decompress(&fb).unwrap().bytes(), data.bytes());
        assert_eq!(pool.threads_spawned(), 2);
    }

    #[test]
    fn pipeline_makes_progress_on_a_nearly_exhausted_shared_pool() {
        // Another session pins 3 of the 4 slots (jobs completed but never
        // collected). A pipeline streaming many blocks through the single
        // remaining slot must drain its own jobs rather than deadlock in
        // submit.
        let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(2).queue_depth(4)));
        let codec: Arc<dyn Compressor> = Arc::new(HeaderedStore);
        let data = sample(500);
        let hostages: Vec<_> = (0..3)
            .map(|_| {
                pool.submit_compress(&codec, data.desc(), data.bytes())
                    .unwrap()
            })
            .collect();
        pool.drain();

        let p = Pipeline::with_pool(Arc::new(HeaderedStore), Arc::clone(&pool)).block_elems(32);
        let frame = p.compress(&data).unwrap();
        assert_eq!(p.decompress(&frame).unwrap().bytes(), data.bytes());

        // The streaming writer/reader obey the same discipline.
        let mut w = p.frame_writer(data.desc(), Vec::new()).unwrap();
        w.write(data.bytes()).unwrap();
        let stored = w.finish().unwrap();
        let mut r = p.frame_reader(&stored[..]).unwrap();
        let mut out = FloatData::scratch();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.bytes(), data.bytes());

        for t in hostages {
            t.collect(|_| ()).unwrap();
        }
    }

    #[test]
    fn huge_block_size_saturates_instead_of_overflowing() {
        // block_elems * esize would overflow usize; both the compress and
        // decompress paths must saturate to a single full-buffer block.
        let r = registry();
        let data = sample(100);
        for threads in [1usize, 4] {
            let p = Pipeline::new(&r, "hstore")
                .unwrap()
                .block_elems(usize::MAX)
                .threads(threads);
            let frame = p.compress(&data).unwrap();
            let back = p.decompress(&frame).unwrap();
            assert_eq!(back.bytes(), data.bytes());
        }
    }

    /// Mimics the production codecs' habit of reserving the descriptor's
    /// full byte length before decoding anything — the reason hostile
    /// descriptors must be rejected before the codec is handed one.
    struct ReservingStore;

    impl Compressor for ReservingStore {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "rstore",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
            out.clear();
            out.extend_from_slice(data.bytes());
            Ok(out.len())
        }
        fn decompress_into(
            &self,
            payload: &[u8],
            desc: &DataDesc,
            out: &mut FloatData,
        ) -> Result<()> {
            out.refill(desc, |bytes| {
                bytes.reserve(desc.byte_len());
                bytes.extend_from_slice(payload);
                Ok(())
            })
        }
    }

    #[test]
    fn implausible_declared_size_errors_without_huge_allocation() {
        // A ~40-byte hostile frame declaring 2^50 doubles (8 PB) must fail
        // with a typed error before the codec can reserve the claimed size.
        let r = CodecRegistry::new().with(RegistryEntry::new(ReservingStore).thread_scalable());
        for threads in [1usize, 8] {
            let p = Pipeline::new(&r, "rstore").unwrap().threads(threads);
            let mut f = Vec::new();
            f.extend_from_slice(b"FCB2");
            f.push(6);
            f.extend_from_slice(b"rstore");
            f.push(1); // double
            f.push(1); // time series
            f.push(1); // ndims
            f.extend_from_slice(&(1u64 << 50).to_le_bytes()); // dims[0]
            f.extend_from_slice(&(1u64 << 50).to_le_bytes()); // block elems -> 1 block
            f.extend_from_slice(&1u32.to_le_bytes());
            let payload = [1u8, 2, 3, 4, 5, 6, 7, 8];
            f.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            f.extend_from_slice(&payload);
            assert!(matches!(p.decompress(&f), Err(Error::Corrupt(_))));
        }
    }

    #[test]
    fn buffers_are_reusable_across_calls() {
        let r = registry();
        let p = Pipeline::new(&r, "hstore")
            .unwrap()
            .block_elems(64)
            .threads(2);
        let mut frame_buf = Vec::new();
        let mut out = FloatData::scratch();
        for n in [10usize, 500, 129] {
            let data = sample(n);
            let len = p.compress_into(&data, &mut frame_buf).unwrap();
            assert_eq!(len, frame_buf.len());
            p.decompress_into(&frame_buf, &mut out).unwrap();
            assert_eq!(out.bytes(), data.bytes());
        }
    }

    #[test]
    fn rejects_foreign_and_corrupt_frames() {
        let r = registry();
        let p = Pipeline::new(&r, "hstore").unwrap().block_elems(16);
        let data = sample(64);
        let frame = p.compress(&data).unwrap();

        // Codec-name byte flipped -> foreign-codec error.
        let mut foreign = frame.clone();
        foreign[4 + 1] ^= 0x55; // first byte of the name "hstore"
        assert!(p.decompress(&foreign).is_err());

        // Truncations never panic.
        for cut in [0, 4, frame.len() / 2, frame.len() - 1] {
            assert!(p.decompress(&frame[..cut]).is_err());
        }

        // Corrupt the first block's 0xAB marker: the per-block decode error
        // must surface through both the inline and the engine path.
        let payload_total: usize = decode_chunked_frame(&frame)
            .unwrap()
            .payloads
            .iter()
            .map(|b| b.len())
            .sum();
        let mut bad = frame.clone();
        let first_payload_offset = bad.len() - payload_total;
        bad[first_payload_offset] ^= 0xFF;
        assert!(p.decompress(&bad).is_err());
        let p8 = Pipeline::new(&r, "hstore")
            .unwrap()
            .block_elems(16)
            .threads(8);
        assert!(p8.decompress(&bad).is_err());
    }
}

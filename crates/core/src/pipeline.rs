//! Chunked, block-parallel compression pipeline.
//!
//! [`Pipeline`] splits a [`FloatData`] element stream into fixed-size blocks
//! (the discipline FCBench applies to its ndzip/GPU methods and the Table 10
//! page study), compresses the blocks independently — in parallel across a
//! configurable number of worker threads, each with its own reusable scratch
//! buffers — and emits the self-describing chunked [`FCB2`
//! frame](crate::frame::encode_chunked_frame). Decompression reverses the
//! process, fanning blocks back out to workers and reassembling the exact
//! original bytes.
//!
//! ```
//! use fcbench_core::pipeline::Pipeline;
//! use fcbench_core::registry::CodecRegistry;
//! use fcbench_core::{Domain, FloatData};
//! # use fcbench_core::{codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport},
//! #                    Compressor, DataDesc, Result};
//! # struct Store;
//! # impl Compressor for Store {
//! #     fn info(&self) -> CodecInfo {
//! #         CodecInfo { name: "store", year: 2024, community: Community::General,
//! #                     class: CodecClass::Delta, platform: Platform::Cpu,
//! #                     parallel: false, precisions: PrecisionSupport::Both }
//! #     }
//! #     fn compress(&self, data: &FloatData) -> Result<Vec<u8>> { Ok(data.bytes().to_vec()) }
//! #     fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
//! #         FloatData::from_bytes(desc.clone(), payload.to_vec())
//! #     }
//! # }
//! let registry = CodecRegistry::new().with(Store);
//! let pipeline = Pipeline::new(&registry, "store")
//!     .unwrap()
//!     .block_elems(64 * 1024)
//!     .threads(4);
//!
//! let values: Vec<f64> = (0..200_000).map(|i| (i as f64).sin()).collect();
//! let data = FloatData::from_f64(&values, vec![values.len()], Domain::TimeSeries).unwrap();
//! let frame = pipeline.compress(&data).unwrap();
//! let back = pipeline.decompress(&frame).unwrap();
//! assert_eq!(back.bytes(), data.bytes());
//! ```

use crate::codec::Compressor;
use crate::data::{DataDesc, FloatData};
use crate::error::{Error, Result};
use crate::frame::{
    decode_chunked_frame, encode_chunked_frame_into, encode_chunked_frame_parts_into,
};
use crate::registry::CodecRegistry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default elements per block: 64 Ki elements, the paper's bitshuffle/nvCOMP
/// working-set scale.
pub const DEFAULT_BLOCK_ELEMS: usize = 64 * 1024;

/// Expansion ratio above which a frame's declared output size is treated as
/// implausible and decoded incrementally instead of preallocated (none of
/// the 14 codecs come near this on real data; only degenerate constant
/// streams can legitimately exceed it, and those still decode correctly on
/// the incremental path).
const MAX_PLAUSIBLE_EXPANSION: usize = 4096;

/// Cap on the speculative upfront reservation for incremental decoding.
const MAX_UPFRONT_RESERVE: usize = 16 * 1024 * 1024;

/// A configured block-parallel compression pipeline around one codec.
pub struct Pipeline {
    codec: Arc<dyn Compressor>,
    block_elems: usize,
    threads: usize,
}

impl Pipeline {
    /// Build a pipeline around the registered codec `name`.
    pub fn new(registry: &CodecRegistry, name: &str) -> Result<Self> {
        Ok(Self::with_codec(registry.require(name)?))
    }

    /// Build a pipeline around an explicit codec handle.
    pub fn with_codec(codec: Arc<dyn Compressor>) -> Self {
        Pipeline {
            codec,
            block_elems: DEFAULT_BLOCK_ELEMS,
            threads: 1,
        }
    }

    /// Set the block size in elements (clamped to at least 1).
    #[must_use]
    pub fn block_elems(mut self, elems: usize) -> Self {
        self.block_elems = elems.max(1);
        self
    }

    /// Set the worker-thread count (clamped to at least 1; 1 = run inline).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The codec this pipeline drives.
    pub fn codec(&self) -> &Arc<dyn Compressor> {
        &self.codec
    }

    /// Descriptor for block `i` of a stream shaped like `desc`.
    fn block_desc(&self, desc: &DataDesc, i: usize, nblocks: usize) -> DataDesc {
        let total = desc.elements();
        let elems = if i + 1 == nblocks {
            total - i * self.block_elems
        } else {
            self.block_elems
        };
        DataDesc {
            precision: desc.precision,
            dims: vec![elems],
            domain: desc.domain,
        }
    }

    /// Compress `data` into a freshly allocated `FCB2` frame.
    pub fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compress_into(data, &mut out)?;
        Ok(out)
    }

    /// Compress `data` into `out` (contents replaced, capacity reused).
    /// Returns the frame length.
    pub fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
        let desc = data.desc();
        let esize = desc.precision.bytes();
        // Saturate: block_elems beyond the element count means one block, and
        // any bpb >= data.bytes().len() chunks identically (no overflow UB).
        let bpb = self.block_elems.saturating_mul(esize);
        let nblocks = data.elements().div_ceil(self.block_elems);
        let bytes = data.bytes();

        if self.threads <= 1 || nblocks <= 1 {
            // Inline path: reusable scratch + payload buffer, contiguous
            // blob — no per-block allocation.
            let (lens, blob) =
                crate::blocks::compress_blocks_sequential(&*self.codec, data, bpb, nblocks)?;
            return encode_chunked_frame_parts_into(
                self.codec.info().name,
                desc,
                self.block_elems,
                &lens,
                &blob,
                out,
            );
        }

        let payloads: Vec<Vec<u8>> = {
            let next = AtomicUsize::new(0);
            let stop = AtomicBool::new(false);
            let results: Mutex<Vec<Option<Vec<u8>>>> =
                Mutex::new((0..nblocks).map(|_| None).collect());
            let first_err: Mutex<Option<Error>> = Mutex::new(None);
            let workers = self.threads.min(nblocks);

            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        // Per-worker reusable input scratch; payload buffers
                        // are per block because the frame keeps them all.
                        let mut scratch = FloatData::scratch();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= nblocks || stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let start = i * bpb;
                            let end = (start + bpb).min(bytes.len());
                            let bdesc = self.block_desc(desc, i, nblocks);
                            let mut payload = Vec::new();
                            let r = scratch
                                .refill_from_slice(&bdesc, &bytes[start..end])
                                .and_then(|()| self.codec.compress_into(&scratch, &mut payload));
                            match r {
                                Ok(_) => results.lock()[i] = Some(payload),
                                Err(e) => {
                                    stop.store(true, Ordering::Relaxed);
                                    first_err.lock().get_or_insert(e);
                                    break;
                                }
                            }
                        }
                    });
                }
            });

            if let Some(e) = first_err.into_inner() {
                return Err(e);
            }
            results
                .into_inner()
                .into_iter()
                .map(|p| p.ok_or_else(|| Error::Corrupt("pipeline worker dropped a block".into())))
                .collect::<Result<Vec<_>>>()?
        };

        encode_chunked_frame_into(
            self.codec.info().name,
            desc,
            self.block_elems,
            &payloads,
            out,
        )
    }

    /// Decode an `FCB2` frame produced by this pipeline's codec into a
    /// freshly allocated container.
    pub fn decompress(&self, frame: &[u8]) -> Result<FloatData> {
        let mut out = FloatData::scratch();
        self.decompress_into(frame, &mut out)?;
        Ok(out)
    }

    /// Decode an `FCB2` frame into a reusable container.
    ///
    /// The frame's block size takes precedence over the pipeline's
    /// configured one — frames are self-describing.
    pub fn decompress_into(&self, frame: &[u8], out: &mut FloatData) -> Result<()> {
        let frame = decode_chunked_frame(frame)?;
        let name = self.codec.info().name;
        if frame.codec != name {
            return Err(Error::Corrupt(format!(
                "frame was written by codec {:?} but {:?} was asked to decode it",
                frame.codec, name
            )));
        }
        let desc = frame.desc.clone();
        let esize = desc.precision.bytes();
        // Saturate: a hostile frame can declare a block size up to u64::MAX;
        // the decoder only guarantees block_elems >= 1 and a consistent block
        // count, so the multiply must not overflow. block_elems beyond the
        // element count implies one block, where any bpb >= byte_len chunks
        // identically.
        let bpb = frame.block_elems.saturating_mul(esize);
        let nblocks = frame.payloads.len();

        // The frame's declared output size is untrusted: a tiny hostile
        // frame may claim petabytes. The parallel path needs the full
        // output buffer up front (disjoint `chunks_mut`), so it is reserved
        // for frames whose claim is plausible against the payload bytes
        // present; anything beyond that ratio — hostile, or legitimately
        // ultra-compressible — takes the inline path, whose allocation
        // grows only with actually-decoded data. A frame that passes this
        // gate can still force the parallel-path allocation before its
        // blocks fail to decode, but only up to MAX_PLAUSIBLE_EXPANSION
        // times the bytes the caller already holds in memory.
        let payload_total: usize = frame.payloads.iter().map(|p| p.len()).sum();
        let plausible = desc.byte_len() / MAX_PLAUSIBLE_EXPANSION <= payload_total;

        out.refill(&desc, |bytes| {
            if self.threads <= 1 || nblocks <= 1 || !plausible {
                // Inline path: append blocks in stream order — no zero-fill
                // of the output, every byte is written exactly once.
                // (`refill` hands the closure an already-cleared buffer.)
                bytes.reserve(desc.byte_len().min(MAX_UPFRONT_RESERVE));
                let mut scratch = FloatData::scratch();
                for (i, payload) in frame.payloads.iter().enumerate() {
                    crate::blocks::decode_block_into(
                        &*self.codec,
                        &desc,
                        frame.block_len(i),
                        payload,
                        &mut scratch,
                        bytes,
                    )?;
                }
                return Ok(());
            }
            bytes.resize(desc.byte_len(), 0);

            // Parallel path: hand each (output chunk, payload) pair to the
            // worker pool; chunks are disjoint `&mut` slices so workers
            // write the reassembled stream without further coordination.
            let mut items: Vec<(usize, &mut [u8], &[u8])> = bytes
                .chunks_mut(bpb)
                .zip(frame.payloads.iter().copied())
                .enumerate()
                .map(|(i, (chunk, payload))| (i, chunk, payload))
                .collect();
            items.reverse(); // pop() then hands blocks out in stream order
            let work = Mutex::new(items);
            let stop = AtomicBool::new(false);
            let first_err: Mutex<Option<Error>> = Mutex::new(None);
            let workers = self.threads.min(nblocks);
            let frame = &frame;

            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        let mut scratch = FloatData::scratch();
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let Some((i, chunk, payload)) = work.lock().pop() else {
                                break;
                            };
                            let r = crate::blocks::decode_block_to_slice(
                                &*self.codec,
                                &desc,
                                frame.block_len(i),
                                payload,
                                &mut scratch,
                                chunk,
                            );
                            if let Err(e) = r {
                                stop.store(true, Ordering::Relaxed);
                                first_err.lock().get_or_insert(e);
                                break;
                            }
                        }
                    });
                }
            });

            match first_err.into_inner() {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
    use crate::data::Domain;
    use crate::registry::CodecRegistry;

    /// Store codec with a 2-byte header so block boundaries are observable.
    struct HeaderedStore;

    impl Compressor for HeaderedStore {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "hstore",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
            out.clear();
            out.extend_from_slice(&[0xAB, 0xCD]);
            out.extend_from_slice(data.bytes());
            Ok(out.len())
        }
        fn decompress_into(
            &self,
            payload: &[u8],
            desc: &DataDesc,
            out: &mut FloatData,
        ) -> Result<()> {
            if payload.len() < 2 || payload[0] != 0xAB || payload[1] != 0xCD {
                return Err(Error::Corrupt("bad hstore header".into()));
            }
            out.refill_from_slice(desc, &payload[2..])
        }
    }

    fn registry() -> CodecRegistry {
        CodecRegistry::new().with(HeaderedStore)
    }

    fn sample(n: usize) -> FloatData {
        let vals: Vec<f64> = (0..n)
            .map(|i| match i % 7 {
                0 => f64::NAN,
                1 => -0.0,
                2 => 5e-324,
                _ => i as f64 * 0.37,
            })
            .collect();
        FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).unwrap()
    }

    #[test]
    fn unknown_codec_is_a_typed_error() {
        assert!(matches!(
            Pipeline::new(&registry(), "nope"),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn round_trips_across_block_sizes_and_threads() {
        let r = registry();
        let n = 1000;
        let data = sample(n);
        for block in [1usize, n - 1, n, n + 1, 64 * 1024] {
            for threads in [1usize, 2, 8] {
                let p = Pipeline::new(&r, "hstore")
                    .unwrap()
                    .block_elems(block)
                    .threads(threads);
                let frame = p.compress(&data).unwrap();
                let back = p.decompress(&frame).unwrap();
                assert_eq!(
                    back.bytes(),
                    data.bytes(),
                    "block {block} x threads {threads}"
                );
                assert_eq!(back.desc(), data.desc());
            }
        }
    }

    #[test]
    fn huge_block_size_saturates_instead_of_overflowing() {
        // block_elems * esize would overflow usize; both the compress and
        // decompress paths must saturate to a single full-buffer block.
        let r = registry();
        let data = sample(100);
        for threads in [1usize, 4] {
            let p = Pipeline::new(&r, "hstore")
                .unwrap()
                .block_elems(usize::MAX)
                .threads(threads);
            let frame = p.compress(&data).unwrap();
            let back = p.decompress(&frame).unwrap();
            assert_eq!(back.bytes(), data.bytes());
        }
    }

    /// Mimics the production codecs' habit of reserving the descriptor's
    /// full byte length before decoding anything — the reason hostile
    /// descriptors must be rejected before the codec is handed one.
    struct ReservingStore;

    impl Compressor for ReservingStore {
        fn info(&self) -> CodecInfo {
            CodecInfo {
                name: "rstore",
                year: 2024,
                community: Community::General,
                class: CodecClass::Delta,
                platform: Platform::Cpu,
                parallel: false,
                precisions: PrecisionSupport::Both,
            }
        }
        fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
            out.clear();
            out.extend_from_slice(data.bytes());
            Ok(out.len())
        }
        fn decompress_into(
            &self,
            payload: &[u8],
            desc: &DataDesc,
            out: &mut FloatData,
        ) -> Result<()> {
            out.refill(desc, |bytes| {
                bytes.reserve(desc.byte_len());
                bytes.extend_from_slice(payload);
                Ok(())
            })
        }
    }

    #[test]
    fn implausible_declared_size_errors_without_huge_allocation() {
        // A ~40-byte hostile frame declaring 2^50 doubles (8 PB) must fail
        // with a typed error before the codec can reserve the claimed size.
        let r = CodecRegistry::new().with(ReservingStore);
        for threads in [1usize, 8] {
            let p = Pipeline::new(&r, "rstore").unwrap().threads(threads);
            let mut f = Vec::new();
            f.extend_from_slice(b"FCB2");
            f.push(6);
            f.extend_from_slice(b"rstore");
            f.push(1); // double
            f.push(1); // time series
            f.push(1); // ndims
            f.extend_from_slice(&(1u64 << 50).to_le_bytes()); // dims[0]
            f.extend_from_slice(&(1u64 << 50).to_le_bytes()); // block elems -> 1 block
            f.extend_from_slice(&1u32.to_le_bytes());
            let payload = [1u8, 2, 3, 4, 5, 6, 7, 8];
            f.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            f.extend_from_slice(&payload);
            assert!(matches!(p.decompress(&f), Err(Error::Corrupt(_))));
        }
    }

    #[test]
    fn buffers_are_reusable_across_calls() {
        let r = registry();
        let p = Pipeline::new(&r, "hstore")
            .unwrap()
            .block_elems(64)
            .threads(2);
        let mut frame_buf = Vec::new();
        let mut out = FloatData::scratch();
        for n in [10usize, 500, 129] {
            let data = sample(n);
            let len = p.compress_into(&data, &mut frame_buf).unwrap();
            assert_eq!(len, frame_buf.len());
            p.decompress_into(&frame_buf, &mut out).unwrap();
            assert_eq!(out.bytes(), data.bytes());
        }
    }

    #[test]
    fn rejects_foreign_and_corrupt_frames() {
        let r = registry();
        let p = Pipeline::new(&r, "hstore").unwrap().block_elems(16);
        let data = sample(64);
        let frame = p.compress(&data).unwrap();

        // Codec-name byte flipped -> foreign-codec error.
        let mut foreign = frame.clone();
        foreign[4 + 1] ^= 0x55; // first byte of the name "hstore"
        assert!(p.decompress(&foreign).is_err());

        // Truncations never panic.
        for cut in [0, 4, frame.len() / 2, frame.len() - 1] {
            assert!(p.decompress(&frame[..cut]).is_err());
        }

        // Corrupt the first block's 0xAB marker: the per-block decode error
        // must surface through both the inline and the parallel path.
        let payload_total: usize = decode_chunked_frame(&frame)
            .unwrap()
            .payloads
            .iter()
            .map(|b| b.len())
            .sum();
        let mut bad = frame.clone();
        let first_payload_offset = bad.len() - payload_total;
        bad[first_payload_offset] ^= 0xFF;
        assert!(p.decompress(&bad).is_err());
        let p8 = Pipeline::new(&r, "hstore")
            .unwrap()
            .block_elems(16)
            .threads(8);
        assert!(p8.decompress(&bad).is_err());
    }
}

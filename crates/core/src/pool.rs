//! Persistent worker-pool execution engine.
//!
//! FCBench's throughput comparisons are only meaningful when the harness
//! measures codec work, not thread spawn and allocator churn. The
//! [`WorkerPool`] therefore spawns its workers **once** and keeps them alive
//! for the pool's whole lifetime: every compress/decompress job is pushed
//! onto a bounded queue, executed by a long-lived worker whose reusable
//! scratch (including codec-internal thread-local state such as chimp's
//! window buffers) is warmed on the first job and reused by every later one,
//! and collected in submission order. In steady state a `submit`/`collect`
//! round performs **zero thread spawns and ~zero heap allocations** — the
//! regression test in `crates/bench/tests/alloc_into.rs` holds the gorilla
//! and chimp paths to exactly that.
//!
//! # Model
//!
//! The pool owns `queue_depth` recyclable **job slots**. [`submit_compress`]
//! / [`submit_decompress`](WorkerPool::submit_decompress) copy the input block
//! into a free slot (blocking while every slot is in flight — natural
//! backpressure for the streaming frame I/O built on top) and return a
//! [`Ticket`]. Workers pop slots off the queue and run the codec against
//! slot-owned buffers. [`Ticket::collect`] blocks until that job finished,
//! hands the output bytes to a caller closure, and recycles the slot.
//! Dropping a ticket without collecting it abandons the job: its result is
//! discarded and the slot returns to the free list on completion.
//!
//! Shutdown is graceful: [`WorkerPool::shutdown`] (or dropping the pool)
//! lets workers finish every queued job before exiting, and outstanding
//! tickets stay collectable. A panicking codec does not poison the pool: the
//! worker catches the panic, surfaces it to the collector as the typed
//! [`Error::WorkerPanic`], and keeps serving jobs.
//!
//! [`submit_compress`]: WorkerPool::submit_compress
//!
//! ```
//! use fcbench_core::pool::{PoolConfig, WorkerPool};
//! use fcbench_core::{Domain, FloatData};
//! # use fcbench_core::{codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport},
//! #                    Compressor, DataDesc, Result};
//! # use std::sync::Arc;
//! # struct Store;
//! # impl Compressor for Store {
//! #     fn info(&self) -> CodecInfo {
//! #         CodecInfo { name: "store", year: 2024, community: Community::General,
//! #                     class: CodecClass::Delta, platform: Platform::Cpu,
//! #                     parallel: false, precisions: PrecisionSupport::Both }
//! #     }
//! #     fn compress(&self, data: &FloatData) -> Result<Vec<u8>> { Ok(data.bytes().to_vec()) }
//! #     fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
//! #         FloatData::from_bytes(desc.clone(), payload.to_vec())
//! #     }
//! # }
//! let pool = WorkerPool::new(PoolConfig::with_threads(2));
//! let codec: Arc<dyn Compressor> = Arc::new(Store);
//!
//! let data = FloatData::from_f64(&[1.0, 2.0, 3.0], vec![3], Domain::Hpc).unwrap();
//! let ticket = pool
//!     .submit_compress(&codec, data.desc(), data.bytes())
//!     .unwrap();
//! let payload = ticket.collect(|bytes| bytes.to_vec()).unwrap();
//!
//! let ticket = pool
//!     .submit_decompress(&codec, data.desc(), &payload)
//!     .unwrap();
//! let back = ticket.collect(|bytes| bytes.to_vec()).unwrap();
//! assert_eq!(back, data.bytes());
//! ```

use crate::codec::Compressor;
use crate::data::{DataDesc, FloatData};
use crate::error::{Error, Result};
use crate::sync::thread::JoinHandle;
use crate::sync::{lock, wait, AtomicU64, Condvar, Mutex};
use fcbench_telemetry::{Counter, Gauge, Histogram, HistogramFamily, Registry};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a [`WorkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Persistent worker threads (clamped to at least 1).
    pub threads: usize,
    /// Job slots — the maximum number of in-flight jobs before `submit`
    /// blocks (clamped to at least 1). This bounds the memory a streaming
    /// producer can pin: at most `queue_depth` blocks exist at once.
    pub queue_depth: usize,
    /// Default elements per block for frame streaming built on this pool
    /// (callers that chunk their own work may ignore it).
    pub block_elems: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig::with_threads(1)
    }
}

impl PoolConfig {
    /// A configuration with `threads` workers, a `2 * threads` slot queue,
    /// and the pipeline's default block size.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        PoolConfig {
            threads,
            queue_depth: 2 * threads,
            block_elems: crate::pipeline::DEFAULT_BLOCK_ELEMS,
        }
    }

    /// A configuration sized for the machine the process is running on:
    /// one worker per available hardware thread (via
    /// [`std::thread::available_parallelism`], falling back to 2 when the
    /// host won't say) and a `4 * threads` slot queue clamped to `[8, 256]`.
    ///
    /// The deeper-than-default queue is deliberate: a host-sized pool is
    /// what serving front-ends share across many concurrent streams, and
    /// each stream pins at most its own in-flight window — extra slots keep
    /// workers fed while any one stream is stalled on its client.
    pub fn for_host() -> Self {
        let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
        PoolConfig::with_threads(threads).queue_depth((threads * 4).clamp(8, 256))
    }

    /// Builder-style queue-depth override (clamped to at least 1).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Builder-style block-size override (clamped to at least 1).
    #[must_use]
    pub fn block_elems(mut self, elems: usize) -> Self {
        self.block_elems = elems.max(1);
        self
    }
}

/// What a job slot asks its worker to do.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Compress,
    Decompress,
}

/// Buffers owned by one job slot. Slots are recycled: every field keeps its
/// capacity across jobs, so a warm slot serves a steady-state job without
/// touching the allocator.
struct Slot {
    kind: JobKind,
    codec: Option<Arc<dyn Compressor>>,
    /// Block descriptor, rewritten in place (dims capacity reused).
    desc: DataDesc,
    /// Compress: the input block. Decompress: the decoded output.
    data: FloatData,
    /// Compress: the produced payload. Decompress: the input payload.
    buf: Vec<u8>,
    /// Stamped at enqueue; the worker turns it into the queue-wait sample.
    enqueued_at: Option<Instant>,
}

impl Slot {
    fn new() -> Self {
        Slot {
            kind: JobKind::Compress,
            codec: None,
            desc: FloatData::scratch().desc().clone(),
            data: FloatData::scratch(),
            buf: Vec::new(),
            enqueued_at: None,
        }
    }

    /// Rewrite `self.desc` from `src` without allocating once the dims
    /// vector has capacity.
    fn set_desc(&mut self, src: &DataDesc) {
        self.desc.precision = src.precision;
        self.desc.domain = src.domain;
        self.desc.dims.clear();
        self.desc.dims.extend_from_slice(&src.dims);
    }

    /// Run this slot's job; called on a worker thread.
    fn execute(&mut self) -> Result<usize> {
        // Every dispatch_* fills `codec` before enqueueing; a bare slot
        // here is an internal bug, surfaced as a typed error rather than a
        // panic so it cannot take a worker down.
        let Some(codec) = self.codec.as_ref().map(Arc::clone) else {
            return Err(Error::Unsupported(
                "internal: queued slot carries no codec".into(),
            ));
        };
        match self.kind {
            JobKind::Compress => codec.compress_into(&self.data, &mut self.buf),
            JobKind::Decompress => {
                // The descriptor is untrusted on this path (frames and
                // containers hand it over from the wire): gate the claimed
                // output size against the payload before the codec can
                // reserve it.
                crate::blocks::check_decode_claim(&self.desc, self.buf.len())?;
                codec.decompress_into(&self.buf, &self.desc, &mut self.data)?;
                if self.data.bytes().len() != self.desc.byte_len() {
                    return Err(Error::Corrupt("job decoded to a wrong size".into()));
                }
                Ok(self.data.bytes().len())
            }
        }
    }

    /// The output bytes of a completed job.
    fn output(&self, n: usize) -> &[u8] {
        match self.kind {
            JobKind::Compress => &self.buf[..n],
            JobKind::Decompress => self.data.bytes(),
        }
    }
}

/// Lifecycle of a slot, tracked under the pool lock.
enum JobState {
    /// On the free list.
    Free,
    /// Queued or running; `abandoned` means the ticket was dropped and the
    /// result should be discarded on completion.
    Pending { abandoned: bool },
    /// Finished; result waiting for its collector.
    Done(Result<usize>),
}

struct Inner {
    /// Slot indices ready for a worker, in submission order.
    queue: VecDeque<usize>,
    /// Recyclable slot indices.
    free: Vec<usize>,
    /// Per-slot lifecycle state.
    states: Vec<JobState>,
    /// Jobs submitted but not yet finished (queued + running).
    unfinished: usize,
    /// Set by [`WorkerPool::shutdown`] / `Drop`; workers drain the queue
    /// and exit, and further submits fail.
    shutdown: bool,
}

/// Pre-resolved telemetry handles: every record below is a handful of
/// relaxed atomic ops, so instrumentation never shows up in the profiles
/// it feeds (the alloc test in `crates/bench/tests/alloc_into.rs` holds
/// warm submits to zero allocations with all of this enabled).
struct PoolMetrics {
    registry: Arc<Registry>,
    /// `pool.queue_wait` — enqueue to worker pickup, nanoseconds.
    queue_wait: Histogram,
    /// `pool.exec` — codec execution time inside the worker.
    exec: Histogram,
    /// `pool.exec.codec.<name>` — per-codec job timing.
    exec_codec: HistogramFamily,
    /// `pool.drain.stalls` — saturated submits that collected their own
    /// oldest job before getting a slot.
    drain_stalls: Counter,
    /// `pool.slots.occupied` — slots currently in flight (acquired, queued,
    /// running, or awaiting collection).
    slots_occupied: Gauge,
}

impl PoolMetrics {
    fn new() -> Self {
        let registry = Arc::new(Registry::new());
        PoolMetrics {
            queue_wait: registry.histogram("pool.queue_wait"),
            exec: registry.histogram("pool.exec"),
            exec_codec: registry.histogram_family("pool.exec.codec"),
            drain_stalls: registry.counter("pool.drain.stalls"),
            slots_occupied: registry.gauge("pool.slots.occupied"),
            registry,
        }
    }
}

struct Shared {
    inner: Mutex<Inner>,
    /// Workers wait here for queued jobs.
    work: Condvar,
    /// Collectors and `drain` wait here for completions.
    done: Condvar,
    /// Submitters wait here for a free slot.
    free: Condvar,
    /// Slot buffers, locked individually so workers and collectors touch
    /// them without holding the pool lock.
    slots: Box<[Mutex<Slot>]>,
    /// Jobs executed over the pool's lifetime (includes abandoned ones).
    jobs_done: AtomicU64,
    metrics: PoolMetrics,
}

// Lock poisoning: the pool uses the engine-wide policy implemented by
// [`crate::sync::lock`] / [`crate::sync::wait`] — recover the guard. The
// pool's invariants are maintained under the lock by straight-line code,
// and worker panics are caught before they can unwind through a guard
// (see `worker_loop`), so a poisoned mutex only ever reflects a panic in a
// caller-supplied collect closure; the regression tests
// `worker_panic_is_a_typed_error_and_pool_survives` and
// `panicking_collect_closures_do_not_leak_slots` pin this down.

impl Shared {
    /// Refresh the occupancy gauge from the free-list length; called under
    /// the pool lock at every point the free list changes.
    fn note_occupancy(&self, inner: &Inner) {
        self.metrics
            .slots_occupied
            .set((self.slots.len() - inner.free.len()) as u64);
    }

    /// Mark `idx` finished (or recycle it if abandoned) and wake waiters.
    fn complete(&self, idx: usize, result: Result<usize>) {
        let mut inner = lock(&self.inner);
        let abandoned = matches!(
            inner.states[idx],
            JobState::Pending {
                abandoned: true,
                ..
            }
        );
        if abandoned {
            inner.states[idx] = JobState::Free;
            inner.free.push(idx);
            self.note_occupancy(&inner);
            self.free.notify_all();
        } else {
            inner.states[idx] = JobState::Done(result);
        }
        inner.unfinished -= 1;
        self.jobs_done.fetch_add(1, Ordering::Relaxed);
        self.done.notify_all();
    }
}

/// Worker main loop: pop jobs until shutdown *and* the queue is drained.
fn worker_loop(shared: &Shared) {
    loop {
        let idx = {
            let mut inner = lock(&shared.inner);
            loop {
                if let Some(idx) = inner.queue.pop_front() {
                    break idx;
                }
                if inner.shutdown {
                    return;
                }
                inner = wait(&shared.work, inner);
            }
        };

        // Execute outside the pool lock. A panicking codec must not take
        // the worker (or the pool) down with it: catch it and surface a
        // typed error to the collector.
        let result = {
            let mut slot = lock(&shared.slots[idx]);
            if let Some(enqueued) = slot.enqueued_at.take() {
                shared
                    .metrics
                    .queue_wait
                    .record_duration(enqueued.elapsed());
            }
            let codec_name = slot.codec.as_ref().map(|c| c.info().name);
            let started = Instant::now();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| slot.execute()))
                .unwrap_or_else(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".to_string());
                    Err(Error::WorkerPanic(msg))
                });
            let elapsed = started.elapsed();
            shared.metrics.exec.record_duration(elapsed);
            if let Some(h) = codec_name.and_then(|name| shared.metrics.exec_codec.get(name)) {
                h.record_duration(elapsed);
            }
            result
        };
        shared.complete(idx, result);
    }
}

/// A long-lived pool of compression workers; see the [module docs](self).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    config: PoolConfig,
}

impl WorkerPool {
    /// Spawn `config.threads` persistent workers. This is the **only** place
    /// the pool creates threads; no submit ever spawns again.
    pub fn new(config: PoolConfig) -> Self {
        let threads = config.threads.max(1);
        let depth = config.queue_depth.max(1);
        let config = PoolConfig {
            threads,
            queue_depth: depth,
            block_elems: config.block_elems.max(1),
        };
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(depth),
                free: (0..depth).rev().collect(),
                states: (0..depth).map(|_| JobState::Free).collect(),
                unfinished: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            free: Condvar::new(),
            slots: (0..depth).map(|_| Mutex::new(Slot::new())).collect(),
            jobs_done: AtomicU64::new(0),
            metrics: PoolMetrics::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::Builder::new()
                    .name(format!("fcbench-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            config,
        }
    }

    /// The effective configuration (after clamping).
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// Number of job slots (maximum in-flight jobs).
    pub fn queue_depth(&self) -> usize {
        self.config.queue_depth
    }

    /// Threads spawned over the pool's lifetime — always exactly
    /// [`threads`](Self::threads): submits never spawn.
    pub fn threads_spawned(&self) -> usize {
        self.handles.len()
    }

    /// Jobs executed so far (including abandoned ones).
    pub fn jobs_completed(&self) -> u64 {
        self.shared.jobs_done.load(Ordering::Relaxed)
    }

    /// The pool's telemetry registry: `pool.queue_wait`, `pool.exec`,
    /// `pool.exec.codec.<name>`, `pool.drain.stalls`, and
    /// `pool.slots.occupied`. Layers built on the pool (frame streams, the
    /// FCS1 server) register their own metrics here so one registry spans
    /// the whole stack.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.shared.metrics.registry
    }

    /// Acquire a free slot, blocking while all are in flight.
    ///
    /// Deadlock discipline: a caller that already holds uncollected
    /// [`Ticket`]s must not block here — with every slot pinned by ticket
    /// holders, nobody would ever free one. The pipelined consumers
    /// (pipeline, frame streams, containers) therefore use the
    /// `try_submit_*` forms and collect their own oldest job when the pool
    /// is saturated, only blocking when they hold nothing.
    fn acquire_slot(&self) -> Result<usize> {
        let mut inner = lock(&self.shared.inner);
        loop {
            if inner.shutdown {
                return Err(Error::Unsupported("worker pool is shut down".into()));
            }
            if let Some(idx) = inner.free.pop() {
                self.shared.note_occupancy(&inner);
                return Ok(idx);
            }
            inner = wait(&self.shared.free, inner);
        }
    }

    /// Like [`acquire_slot`](Self::acquire_slot) but returns `Ok(None)`
    /// instead of blocking when every slot is in flight.
    fn try_acquire_slot(&self) -> Result<Option<usize>> {
        let mut inner = lock(&self.shared.inner);
        if inner.shutdown {
            return Err(Error::Unsupported("worker pool is shut down".into()));
        }
        let idx = inner.free.pop();
        if idx.is_some() {
            self.shared.note_occupancy(&inner);
        }
        Ok(idx)
    }

    /// Return an acquired-but-never-enqueued slot to the free list
    /// (used when filling the slot fails validation).
    fn release_unused_slot(&self, idx: usize) {
        let mut inner = lock(&self.shared.inner);
        inner.free.push(idx);
        self.shared.note_occupancy(&inner);
        drop(inner);
        self.shared.free.notify_all();
    }

    /// Enqueue the filled slot `idx` and wake a worker.
    fn enqueue(&self, idx: usize) {
        let mut inner = lock(&self.shared.inner);
        inner.states[idx] = JobState::Pending { abandoned: false };
        inner.queue.push_back(idx);
        inner.unfinished += 1;
        drop(inner);
        self.shared.work.notify_one();
    }

    /// Fill acquired slot `idx` with a compress job and enqueue it.
    fn dispatch_compress(
        &self,
        idx: usize,
        codec: &Arc<dyn Compressor>,
        desc: &DataDesc,
        bytes: &[u8],
    ) -> Result<Ticket> {
        {
            let mut guard = lock(&self.shared.slots[idx]);
            let slot = &mut *guard;
            slot.kind = JobKind::Compress;
            slot.codec = Some(Arc::clone(codec));
            slot.set_desc(desc);
            if let Err(e) = slot.data.refill_from_slice(&slot.desc, bytes) {
                drop(guard);
                self.release_unused_slot(idx);
                return Err(e);
            }
            slot.enqueued_at = Some(Instant::now());
        }
        self.enqueue(idx);
        Ok(Ticket::new(Arc::clone(&self.shared), idx))
    }

    /// Fill acquired slot `idx` with a decompress job and enqueue it.
    fn dispatch_decompress(
        &self,
        idx: usize,
        codec: &Arc<dyn Compressor>,
        desc: &DataDesc,
        payload: &[u8],
    ) -> Result<Ticket> {
        {
            let mut slot = lock(&self.shared.slots[idx]);
            slot.kind = JobKind::Decompress;
            slot.codec = Some(Arc::clone(codec));
            slot.set_desc(desc);
            slot.buf.clear();
            slot.buf.extend_from_slice(payload);
            slot.enqueued_at = Some(Instant::now());
        }
        self.enqueue(idx);
        Ok(Ticket::new(Arc::clone(&self.shared), idx))
    }

    fn check_compress_job(desc: &DataDesc, bytes: &[u8]) -> Result<()> {
        if bytes.len() != desc.byte_len() {
            return Err(Error::BadDescriptor(format!(
                "job holds {} bytes but descriptor implies {}",
                bytes.len(),
                desc.byte_len()
            )));
        }
        Ok(())
    }

    /// Submit a compression job over `bytes`, a little-endian element
    /// buffer shaped like `desc` (`bytes.len()` must equal
    /// `desc.byte_len()`). Blocks while every slot is in flight — callers
    /// holding uncollected tickets should use
    /// [`try_submit_compress`](Self::try_submit_compress) and drain their
    /// own jobs instead. The
    /// returned ticket's [`collect`](Ticket::collect) sees the compressed
    /// payload.
    pub fn submit_compress(
        &self,
        codec: &Arc<dyn Compressor>,
        desc: &DataDesc,
        bytes: &[u8],
    ) -> Result<Ticket> {
        crate::fault::fail_point("pool.submit")?;
        Self::check_compress_job(desc, bytes)?;
        let idx = self.acquire_slot()?;
        self.dispatch_compress(idx, codec, desc, bytes)
    }

    /// Non-blocking [`submit_compress`](Self::submit_compress): returns
    /// `Ok(None)` when every slot is in flight.
    pub fn try_submit_compress(
        &self,
        codec: &Arc<dyn Compressor>,
        desc: &DataDesc,
        bytes: &[u8],
    ) -> Result<Option<Ticket>> {
        crate::fault::fail_point("pool.submit")?;
        Self::check_compress_job(desc, bytes)?;
        match self.try_acquire_slot()? {
            Some(idx) => Ok(Some(self.dispatch_compress(idx, codec, desc, bytes)?)),
            None => Ok(None),
        }
    }

    /// Submit a decompression job: `payload` was produced by `codec` for
    /// data shaped like `desc`. The descriptor is treated as untrusted —
    /// the worker rejects implausible output claims before the codec can
    /// reserve them. Blocks while every slot is in flight (same caveat as
    /// [`submit_compress`](Self::submit_compress)). The ticket's
    /// [`collect`](Ticket::collect) sees the decoded element bytes.
    pub fn submit_decompress(
        &self,
        codec: &Arc<dyn Compressor>,
        desc: &DataDesc,
        payload: &[u8],
    ) -> Result<Ticket> {
        crate::fault::fail_point("pool.submit")?;
        let idx = self.acquire_slot()?;
        self.dispatch_decompress(idx, codec, desc, payload)
    }

    /// Non-blocking [`submit_decompress`](Self::submit_decompress): returns
    /// `Ok(None)` when every slot is in flight.
    pub fn try_submit_decompress(
        &self,
        codec: &Arc<dyn Compressor>,
        desc: &DataDesc,
        payload: &[u8],
    ) -> Result<Option<Ticket>> {
        crate::fault::fail_point("pool.submit")?;
        match self.try_acquire_slot()? {
            Some(idx) => Ok(Some(self.dispatch_decompress(idx, codec, desc, payload)?)),
            None => Ok(None),
        }
    }

    /// The saturation-discipline loop shared by every pipelined consumer:
    /// try to take a slot; when the pool is saturated, ask the caller to
    /// collect its own oldest job (`drain_own` returns `Ok(false)` when it
    /// holds nothing, at which point blocking is safe — the slots are
    /// pinned by other sessions, which will release them).
    fn acquire_slot_draining(&self, mut drain_own: impl FnMut() -> Result<bool>) -> Result<usize> {
        loop {
            if let Some(idx) = self.try_acquire_slot()? {
                return Ok(idx);
            }
            if !drain_own()? {
                return self.acquire_slot();
            }
            self.shared.metrics.drain_stalls.inc();
        }
    }

    /// [`submit_compress`](Self::submit_compress) for callers that hold
    /// uncollected tickets: instead of ever blocking on a saturated pool
    /// (a deadlock when every slot is pinned by ticket holders), calls
    /// `drain_own` so the caller collects its own oldest job; `drain_own`
    /// returns `Ok(false)` when the caller holds nothing, and only then
    /// does the submit block.
    pub fn submit_compress_draining(
        &self,
        codec: &Arc<dyn Compressor>,
        desc: &DataDesc,
        bytes: &[u8],
        drain_own: impl FnMut() -> Result<bool>,
    ) -> Result<Ticket> {
        crate::fault::fail_point("pool.submit")?;
        Self::check_compress_job(desc, bytes)?;
        let idx = self.acquire_slot_draining(drain_own)?;
        self.dispatch_compress(idx, codec, desc, bytes)
    }

    /// [`submit_decompress`](Self::submit_decompress) with the same
    /// drain-own-oldest saturation discipline as
    /// [`submit_compress_draining`](Self::submit_compress_draining).
    pub fn submit_decompress_draining(
        &self,
        codec: &Arc<dyn Compressor>,
        desc: &DataDesc,
        payload: &[u8],
        drain_own: impl FnMut() -> Result<bool>,
    ) -> Result<Ticket> {
        crate::fault::fail_point("pool.submit")?;
        let idx = self.acquire_slot_draining(drain_own)?;
        self.dispatch_decompress(idx, codec, desc, payload)
    }

    /// Compress `data` through the pool as one job, replacing `out` with
    /// the payload (capacity reused). Returns the payload length. This is
    /// the single-call form the benchmark runner routes cells through.
    pub fn run_compress(
        &self,
        codec: &Arc<dyn Compressor>,
        data: &FloatData,
        out: &mut Vec<u8>,
    ) -> Result<usize> {
        let ticket = self.submit_compress(codec, data.desc(), data.bytes())?;
        ticket.collect(|payload| {
            out.clear();
            out.extend_from_slice(payload);
            out.len()
        })
    }

    /// Decompress `payload` through the pool as one job into the reusable
    /// container `out`.
    pub fn run_decompress(
        &self,
        codec: &Arc<dyn Compressor>,
        payload: &[u8],
        desc: &DataDesc,
        out: &mut FloatData,
    ) -> Result<()> {
        let ticket = self.submit_decompress(codec, desc, payload)?;
        ticket.collect(|bytes| out.refill_from_slice(desc, bytes))?
    }

    /// Block until every submitted job has finished executing (collected or
    /// not). Queued jobs keep running; this does not shut the pool down.
    pub fn drain(&self) {
        let mut inner = lock(&self.shared.inner);
        while inner.unfinished > 0 {
            inner = wait(&self.shared.done, inner);
        }
    }

    /// Begin a graceful shutdown: workers finish every queued job, then
    /// exit. Outstanding tickets remain collectable; new submits fail with
    /// a typed error. Dropping the pool implies this and joins the workers.
    pub fn shutdown(&self) {
        let mut inner = lock(&self.shared.inner);
        inner.shutdown = true;
        drop(inner);
        self.shared.work.notify_all();
        self.shared.free.notify_all();
        self.shared.done.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.handles.drain(..) {
            // Workers catch job panics themselves; a join error would mean
            // a bug in the pool, which Drop has no way to report.
            let _ = h.join();
        }
    }
}

/// A handle to one submitted job. Collect it to obtain the result and
/// recycle the slot; dropping it abandons the job (the result is discarded
/// and the slot is recycled once the worker finishes).
pub struct Ticket {
    shared: Arc<Shared>,
    slot: usize,
    live: bool,
}

impl Ticket {
    fn new(shared: Arc<Shared>, slot: usize) -> Self {
        Ticket {
            shared,
            slot,
            live: true,
        }
    }

    /// Has this job finished executing? A `true` here means
    /// [`collect`](Ticket::collect) will not block. Lets pipelined callers
    /// flush completed work opportunistically (e.g. while waiting on a slow
    /// input source) instead of pinning finished slots.
    pub fn is_finished(&self) -> bool {
        matches!(
            lock(&self.shared.inner).states[self.slot],
            JobState::Done(_)
        )
    }

    /// Wait for the job to finish. On success, hand the output bytes
    /// (compressed payload or decoded elements, by job kind) to `f` and
    /// return its value; on failure return the job's error. The slot is
    /// recycled either way.
    pub fn collect<R>(mut self, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.live = false;
        let shared = Arc::clone(&self.shared);
        let idx = self.slot;

        let result = {
            let mut inner = lock(&shared.inner);
            loop {
                let state = std::mem::replace(&mut inner.states[idx], JobState::Free);
                match state {
                    JobState::Done(result) => break result,
                    other => inner.states[idx] = other,
                }
                inner = wait(&shared.done, inner);
            }
        };

        // Recycle the slot on every exit from here on — including an unwind
        // out of the caller's closure, which must not leak the slot (leaked
        // slots would shrink the queue until every submit blocks forever).
        struct Recycle<'a> {
            shared: &'a Shared,
            idx: usize,
        }
        impl Drop for Recycle<'_> {
            fn drop(&mut self) {
                let mut inner = lock(&self.shared.inner);
                inner.free.push(self.idx);
                self.shared.note_occupancy(&inner);
                drop(inner);
                self.shared.free.notify_all();
            }
        }
        let _recycle = Recycle {
            shared: &shared,
            idx,
        };

        // The worker finished and released the slot lock; this ticket is the
        // slot's sole owner until the guard pushes it back onto the free
        // list.
        match result {
            Ok(n) => {
                let slot = lock(&shared.slots[idx]);
                Ok(f(slot.output(n)))
            }
            Err(e) => Err(e),
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let mut inner = lock(&self.shared.inner);
        match &mut inner.states[self.slot] {
            // Still queued or running: the worker recycles it on completion.
            JobState::Pending { abandoned, .. } => *abandoned = true,
            // Already done and never collected: recycle here.
            state @ JobState::Done(_) => {
                *state = JobState::Free;
                inner.free.push(self.slot);
                self.shared.note_occupancy(&inner);
                drop(inner);
                self.shared.free.notify_all();
            }
            JobState::Free => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecClass, CodecInfo, Community, Platform, PrecisionSupport};
    use crate::data::Domain;
    use std::sync::atomic::AtomicUsize;

    fn info(name: &'static str) -> CodecInfo {
        CodecInfo {
            name,
            year: 2024,
            community: Community::General,
            class: CodecClass::Delta,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }

    struct Store;

    impl Compressor for Store {
        fn info(&self) -> CodecInfo {
            info("store")
        }
        fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
            out.clear();
            out.extend_from_slice(data.bytes());
            Ok(out.len())
        }
        fn decompress_into(
            &self,
            payload: &[u8],
            desc: &DataDesc,
            out: &mut FloatData,
        ) -> Result<()> {
            out.refill_from_slice(desc, payload)
        }
    }

    /// Sleeps per call and counts executions — for shutdown/drain tests.
    struct Slow(Arc<AtomicUsize>);

    impl Compressor for Slow {
        fn info(&self) -> CodecInfo {
            info("slow")
        }
        fn compress_into(&self, data: &FloatData, out: &mut Vec<u8>) -> Result<usize> {
            std::thread::sleep(std::time::Duration::from_millis(5));
            self.0.fetch_add(1, Ordering::SeqCst);
            out.clear();
            out.extend_from_slice(data.bytes());
            Ok(out.len())
        }
        fn decompress_into(
            &self,
            payload: &[u8],
            desc: &DataDesc,
            out: &mut FloatData,
        ) -> Result<()> {
            out.refill_from_slice(desc, payload)
        }
    }

    struct Panicker;

    impl Compressor for Panicker {
        fn info(&self) -> CodecInfo {
            info("panicker")
        }
        fn compress_into(&self, _data: &FloatData, _out: &mut Vec<u8>) -> Result<usize> {
            panic!("deliberate test panic");
        }
        fn decompress_into(&self, _p: &[u8], _d: &DataDesc, _o: &mut FloatData) -> Result<()> {
            panic!("deliberate test panic");
        }
    }

    fn sample(n: usize) -> FloatData {
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).unwrap()
    }

    fn arc(c: impl Compressor + 'static) -> Arc<dyn Compressor> {
        Arc::new(c)
    }

    #[test]
    fn round_trips_through_the_pool() {
        let pool = WorkerPool::new(PoolConfig::with_threads(4));
        let codec = arc(Store);
        let data = sample(257);
        for _ in 0..3 {
            let t = pool
                .submit_compress(&codec, data.desc(), data.bytes())
                .unwrap();
            let payload = t.collect(|b| b.to_vec()).unwrap();
            assert_eq!(payload, data.bytes());
            let t = pool
                .submit_decompress(&codec, data.desc(), &payload)
                .unwrap();
            let back = t.collect(|b| b.to_vec()).unwrap();
            assert_eq!(back, data.bytes());
        }
        assert_eq!(pool.threads_spawned(), 4);
        assert_eq!(pool.jobs_completed(), 6);
    }

    #[test]
    fn run_helpers_reuse_buffers() {
        let pool = WorkerPool::new(PoolConfig::with_threads(2));
        let codec = arc(Store);
        let mut payload = Vec::new();
        let mut out = FloatData::scratch();
        for n in [10usize, 300, 17] {
            let data = sample(n);
            let len = pool.run_compress(&codec, &data, &mut payload).unwrap();
            assert_eq!(len, data.bytes().len());
            pool.run_decompress(&codec, &payload[..len], data.desc(), &mut out)
                .unwrap();
            assert_eq!(out.bytes(), data.bytes());
        }
    }

    #[test]
    fn many_in_flight_jobs_respect_backpressure_and_order() {
        let pool = WorkerPool::new(PoolConfig::with_threads(3).queue_depth(4));
        let codec = arc(Store);
        let data = sample(64);
        // Submit far more jobs than slots, collecting in submission order.
        let mut pending = VecDeque::new();
        let mut seen = 0usize;
        for i in 0..40usize {
            if pending.len() == pool.queue_depth() {
                let t: Ticket = pending.pop_front().unwrap();
                t.collect(|b| assert_eq!(b, data.bytes())).unwrap();
                seen += 1;
            }
            let t = pool
                .submit_compress(&codec, data.desc(), data.bytes())
                .unwrap();
            pending.push_back(t);
            let _ = i;
        }
        while let Some(t) = pending.pop_front() {
            t.collect(|b| assert_eq!(b, data.bytes())).unwrap();
            seen += 1;
        }
        assert_eq!(seen, 40);
    }

    #[test]
    fn worker_panic_is_a_typed_error_and_pool_survives() {
        let pool = WorkerPool::new(PoolConfig::with_threads(2));
        let bad = arc(Panicker);
        let good = arc(Store);
        let data = sample(32);

        let t = pool
            .submit_compress(&bad, data.desc(), data.bytes())
            .unwrap();
        let err = t.collect(|_| ()).unwrap_err();
        assert!(matches!(err, Error::WorkerPanic(_)), "got {err:?}");
        assert!(err.to_string().contains("deliberate test panic"));

        // The worker that caught the panic keeps serving jobs.
        for _ in 0..8 {
            let t = pool
                .submit_compress(&good, data.desc(), data.bytes())
                .unwrap();
            t.collect(|b| assert_eq!(b, data.bytes())).unwrap();
        }
    }

    #[test]
    fn shutdown_finishes_queued_jobs_and_rejects_new_ones() {
        let executed = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(PoolConfig::with_threads(1).queue_depth(8));
        let codec = arc(Slow(Arc::clone(&executed)));
        let data = sample(16);

        let tickets: Vec<Ticket> = (0..6)
            .map(|_| {
                pool.submit_compress(&codec, data.desc(), data.bytes())
                    .unwrap()
            })
            .collect();
        pool.shutdown();

        // New submits fail with a typed error...
        assert!(matches!(
            pool.submit_compress(&codec, data.desc(), data.bytes()),
            Err(Error::Unsupported(_))
        ));
        // ...but every queued job still runs to completion and collects.
        for t in tickets {
            t.collect(|b| assert_eq!(b, data.bytes())).unwrap();
        }
        assert_eq!(executed.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn dropping_the_pool_drains_the_queue_gracefully() {
        let executed = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(PoolConfig::with_threads(2).queue_depth(8));
            let codec = arc(Slow(Arc::clone(&executed)));
            let data = sample(16);
            // Abandon all tickets; Drop must still run every queued job.
            for _ in 0..8 {
                drop(
                    pool.submit_compress(&codec, data.desc(), data.bytes())
                        .unwrap(),
                );
            }
        }
        assert_eq!(executed.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panicking_collect_closures_do_not_leak_slots() {
        let pool = WorkerPool::new(PoolConfig::with_threads(1).queue_depth(2));
        let codec = arc(Store);
        let data = sample(16);
        // Panic inside the collect closure more times than there are slots:
        // if any panic leaked its slot, the later submits would block
        // forever instead of completing.
        for _ in 0..4 {
            let t = pool
                .submit_compress(&codec, data.desc(), data.bytes())
                .unwrap();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                t.collect(|_| panic!("collector bug"))
            }));
            assert!(r.is_err());
        }
        // Every slot is still usable.
        let tickets: Vec<Ticket> = (0..pool.queue_depth())
            .map(|_| {
                pool.submit_compress(&codec, data.desc(), data.bytes())
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.collect(|b| assert_eq!(b, data.bytes())).unwrap();
        }
    }

    #[test]
    fn draining_submits_make_progress_on_a_saturated_pool() {
        let pool = WorkerPool::new(PoolConfig::with_threads(2).queue_depth(2));
        let codec = arc(Store);
        let data = sample(32);
        let mut pending: VecDeque<Ticket> = VecDeque::new();
        let mut collected = 0usize;
        for _ in 0..12 {
            let t = pool
                .submit_compress_draining(&codec, data.desc(), data.bytes(), || {
                    match pending.pop_front() {
                        None => Ok(false),
                        Some(t) => {
                            t.collect(|b| assert_eq!(b, data.bytes()))?;
                            collected += 1;
                            Ok(true)
                        }
                    }
                })
                .unwrap();
            pending.push_back(t);
        }
        while let Some(t) = pending.pop_front() {
            t.collect(|b| assert_eq!(b, data.bytes())).unwrap();
            collected += 1;
        }
        assert_eq!(collected, 12);
    }

    #[test]
    fn abandoned_tickets_recycle_their_slots() {
        let pool = WorkerPool::new(PoolConfig::with_threads(2).queue_depth(2));
        let codec = arc(Store);
        let data = sample(8);
        // 3x the slot count: if abandonment leaked slots this would hang.
        for _ in 0..6 {
            drop(
                pool.submit_compress(&codec, data.desc(), data.bytes())
                    .unwrap(),
            );
        }
        pool.drain();
        let t = pool
            .submit_compress(&codec, data.desc(), data.bytes())
            .unwrap();
        t.collect(|b| assert_eq!(b, data.bytes())).unwrap();
    }

    #[test]
    fn drain_waits_for_all_submitted_work() {
        let executed = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(PoolConfig::with_threads(2).queue_depth(4));
        let codec = arc(Slow(Arc::clone(&executed)));
        let data = sample(16);
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| {
                pool.submit_compress(&codec, data.desc(), data.bytes())
                    .unwrap()
            })
            .collect();
        pool.drain();
        assert_eq!(executed.load(Ordering::SeqCst), 4);
        for t in tickets {
            t.collect(|_| ()).unwrap();
        }
    }

    #[test]
    fn hostile_decompress_descriptor_is_rejected_in_the_worker() {
        let pool = WorkerPool::new(PoolConfig::with_threads(1));
        let codec = arc(Store);
        // 2^50 doubles claimed from an 8-byte payload.
        let huge =
            DataDesc::new(crate::data::Precision::Double, vec![1 << 50], Domain::Hpc).unwrap();
        let t = pool.submit_decompress(&codec, &huge, &[0u8; 8]).unwrap();
        assert!(matches!(t.collect(|_| ()), Err(Error::Corrupt(_))));
    }

    #[test]
    fn compress_length_mismatch_is_a_typed_error() {
        let pool = WorkerPool::new(PoolConfig::default());
        let codec = arc(Store);
        let desc = DataDesc::new(crate::data::Precision::Double, vec![4], Domain::Hpc).unwrap();
        assert!(matches!(
            pool.submit_compress(&codec, &desc, &[0u8; 7]),
            Err(Error::BadDescriptor(_))
        ));
    }

    #[test]
    fn for_host_sizes_from_the_machine() {
        let c = PoolConfig::for_host();
        assert!(c.threads >= 1);
        assert!((8..=256).contains(&c.queue_depth));
        assert!(c.queue_depth >= c.threads.min(256));
        // It must build a working pool.
        let pool = WorkerPool::new(c);
        let codec = arc(Store);
        let data = sample(16);
        let t = pool
            .submit_compress(&codec, data.desc(), data.bytes())
            .unwrap();
        t.collect(|b| assert_eq!(b, data.bytes())).unwrap();
    }

    #[test]
    fn telemetry_counts_jobs_and_settles_occupancy() {
        let pool = WorkerPool::new(PoolConfig::with_threads(2));
        let codec = arc(Store);
        let data = sample(64);
        for _ in 0..5 {
            let t = pool
                .submit_compress(&codec, data.desc(), data.bytes())
                .unwrap();
            t.collect(|_| ()).unwrap();
        }
        let snap = pool.telemetry().snapshot();
        assert_eq!(snap.histogram("pool.exec").map(|h| h.count()), Some(5));
        assert_eq!(
            snap.histogram("pool.queue_wait").map(|h| h.count()),
            Some(5)
        );
        assert_eq!(
            snap.histogram("pool.exec.codec.store").map(|h| h.count()),
            Some(5)
        );
        assert_eq!(
            snap.gauge("pool.slots.occupied"),
            Some(0),
            "every slot recycled after collect"
        );
    }

    #[test]
    fn config_clamps() {
        let p = WorkerPool::new(PoolConfig {
            threads: 0,
            queue_depth: 0,
            block_elems: 0,
        });
        assert_eq!(p.threads(), 1);
        assert_eq!(p.queue_depth(), 1);
        assert_eq!(p.config().block_elems, 1);
        let c = PoolConfig::with_threads(3).queue_depth(9).block_elems(128);
        assert_eq!(c.threads, 3);
        assert_eq!(c.queue_depth, 9);
        assert_eq!(c.block_elems, 128);
    }
}

//! `fcbench-analyze` — the repo's own analysis gate.
//!
//! ```text
//! fcbench-analyze lint [--root DIR] [--allowlist FILE]
//! fcbench-analyze check-pool [--scenario NAME] [--preemptions N]
//!                            [--max-schedules N] [--time-budget-secs N]
//!                            [--replay SEED] [--seed-out FILE]
//! fcbench-analyze list-scenarios
//! ```
//!
//! `lint` exits non-zero on any finding not covered by the committed
//! allowlist. `check-pool` explores every schedule of each scenario within
//! the preemption bound and exits non-zero on a counterexample, printing
//! the `mc1:…` seed that replays it deterministically (and writing it to
//! `--seed-out`, which CI uploads as an artifact).

#![forbid(unsafe_code)]

use fcbench_analyze::{lint, scenarios};
use fcbench_core::sync::model;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.split_first() {
        Some((&"lint", rest)) => cmd_lint(rest),
        Some((&"check-pool", rest)) => cmd_check_pool(rest),
        Some((&"list-scenarios", _)) => {
            for s in scenarios::all() {
                println!("{:<24} {}", s.name, s.about);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: fcbench-analyze <lint|check-pool|list-scenarios> [options]\n\
                 run with a subcommand; see crate docs for the option list"
            );
            ExitCode::from(2)
        }
    }
}

fn take_opt(args: &[&str], name: &str) -> Option<String> {
    args.iter()
        .position(|a| *a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_string())
}

fn cmd_lint(args: &[&str]) -> ExitCode {
    let root = PathBuf::from(take_opt(args, "--root").unwrap_or_else(|| ".".into()));
    let allowlist = take_opt(args, "--allowlist")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("ANALYZE_ALLOWLIST"));
    match lint::run(&root, &allowlist) {
        Ok(findings) if findings.is_empty() => {
            println!("fcbench-analyze lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("fcbench-analyze lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fcbench-analyze lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_check_pool(args: &[&str]) -> ExitCode {
    let only = take_opt(args, "--scenario");
    let replay_seed = take_opt(args, "--replay");
    let seed_out = take_opt(args, "--seed-out").map(PathBuf::from);
    let preemptions: u32 = match take_opt(args, "--preemptions").as_deref() {
        None => 2,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => return usage_err(&format!("--preemptions {s:?} is not a number")),
        },
    };
    let max_schedules: u64 = match take_opt(args, "--max-schedules").as_deref() {
        None => 0,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => return usage_err(&format!("--max-schedules {s:?} is not a number")),
        },
    };
    let budget: Option<u64> = match take_opt(args, "--time-budget-secs").as_deref() {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => return usage_err(&format!("--time-budget-secs {s:?} is not a number")),
        },
    };

    let list: Vec<scenarios::Scenario> = match &only {
        Some(name) => match scenarios::by_name(name) {
            Some(s) => vec![s],
            None => return usage_err(&format!("unknown scenario {name:?}")),
        },
        None => scenarios::all(),
    };

    if let Some(seed) = replay_seed {
        let Some(s) = list.into_iter().next() else {
            return usage_err("--replay needs --scenario");
        };
        return replay_one(&s, &seed);
    }

    let mut failed = false;
    for s in list {
        let mut opts = model::ExploreOpts {
            preemption_bound: preemptions,
            max_executions: max_schedules,
            ..model::ExploreOpts::default()
        };
        if let Some(secs) = budget {
            opts.deadline = Some(Instant::now() + Duration::from_secs(secs));
        }
        let started = Instant::now();
        let outcome = model::explore(&opts, s.run);
        let elapsed = started.elapsed();
        let coverage = if outcome.exhausted {
            format!("all schedules within {preemptions} preemption(s)")
        } else {
            "budget hit before exhaustion".to_string()
        };
        match (&outcome.failure, s.expect_failure) {
            (None, false) => {
                println!(
                    "check-pool {:<24} ok: {} executions, {} decisions, {coverage}, {:.2?}",
                    s.name, outcome.executions, outcome.decisions, elapsed
                );
            }
            (Some(cx), true) => {
                println!(
                    "check-pool {:<24} ok (self-test found the planted bug): seed {} — {}",
                    s.name,
                    cx.seed,
                    first_line(&cx.message)
                );
            }
            (Some(cx), false) => {
                println!(
                    "check-pool {:<24} FAILED after {} executions: {}\n  replay: \
                     fcbench-analyze check-pool --scenario {} --replay '{}'",
                    s.name, outcome.executions, cx.message, s.name, cx.seed
                );
                if let Some(path) = &seed_out {
                    let line = format!("{} {}\n", s.name, cx.seed);
                    if let Err(e) = std::fs::write(path, line) {
                        eprintln!("check-pool: writing {}: {e}", path.display());
                    }
                }
                failed = true;
            }
            (None, true) => {
                println!(
                    "check-pool {:<24} FAILED: the planted bug was not found \
                     ({} executions, {coverage}) — the scheduler lost coverage",
                    s.name, outcome.executions
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn replay_one(s: &scenarios::Scenario, seed: &str) -> ExitCode {
    match model::replay(seed, s.run) {
        Ok(outcome) => match outcome.failure {
            Some(cx) => {
                println!(
                    "replay {}: reproduced — {}\n  seed {}",
                    s.name, cx.message, cx.seed
                );
                ExitCode::FAILURE
            }
            None => {
                println!("replay {}: schedule ran clean", s.name);
                ExitCode::SUCCESS
            }
        },
        Err(e) => {
            eprintln!("replay {}: {e}", s.name);
            ExitCode::from(2)
        }
    }
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or(s)
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("fcbench-analyze: {msg}");
    ExitCode::from(2)
}

//! Model-check scenarios: small, closed concurrent programs over the real
//! engine types, run under the deterministic scheduler in
//! [`fcbench_core::sync::model`].
//!
//! Each scenario is a plain `fn()` executed once per explored schedule. A
//! scenario *passes* a schedule by returning; it *fails* it by panicking
//! (assertion) or by deadlocking (every registered thread blocked —
//! including the lost-wakeup shape, since the model's condvars never wake
//! spuriously). Configurations are deliberately tiny — two workers, two
//! slots, two jobs — because exhaustive interleaving coverage of a small
//! instance catches ordering bugs that stress tests miss at any size.
//!
//! The two `toy-*` scenarios are the checker's own self-test: a condvar
//! protocol with a textbook lost-wakeup window that exploration must
//! refute, and its repaired form that must verify clean. They keep the
//! checker honest — if the buggy one stops failing, the scheduler has lost
//! coverage, and `tests/model_check.rs` pins that.

use fcbench_core::sync::{lock, wait, Condvar, Mutex};
use fcbench_core::{
    CodecClass, CodecInfo, Community, Compressor, DataDesc, Domain, Error, FloatData, Platform,
    PoolConfig, PrecisionSupport, Result, WorkerPool,
};
use fcbench_dbsim::CompressedColumn;
use std::sync::Arc;

/// A registered scenario.
pub struct Scenario {
    pub name: &'static str,
    pub about: &'static str,
    pub run: fn(),
    /// The checker is expected to find a failure (self-test scenarios).
    pub expect_failure: bool,
}

/// Every registered scenario, in documentation order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "pool-submit-shutdown",
            about: "2 workers / 2 slots: submit two jobs, collect both, shutdown, join; \
                    jobs_completed must equal 2 on every schedule",
            run: pool_submit_shutdown,
            expect_failure: false,
        },
        Scenario {
            name: "pool-worker-panic",
            about: "a codec panic inside a worker surfaces as a typed error from collect \
                    and the pool keeps serving (the poison-policy regression)",
            run: pool_worker_panic,
            expect_failure: false,
        },
        Scenario {
            name: "pool-try-submit-drain",
            about: "try_submit on a saturated pool returns None instead of blocking; \
                    drain quiesces with tickets outstanding",
            run: pool_try_submit_drain,
            expect_failure: false,
        },
        Scenario {
            name: "pool-abandon",
            about: "dropping a ticket abandons the job; the slot is recycled and \
                    accounting still balances",
            run: pool_abandon,
            expect_failure: false,
        },
        Scenario {
            name: "cursor-read-ahead",
            about: "a ColumnCursor with read-ahead 1 over two chunks yields both pages \
                    in order while sharing the engine",
            run: cursor_read_ahead,
            expect_failure: false,
        },
        Scenario {
            name: "toy-missed-notify",
            about: "SELF-TEST (expected to fail): flag checked outside the critical \
                    section that waits — the notify can land in the window and be lost",
            run: toy_missed_notify,
            expect_failure: true,
        },
        Scenario {
            name: "toy-fixed-notify",
            about: "SELF-TEST (expected clean): the same protocol with the canonical \
                    while-wait loop under one guard",
            run: toy_fixed_notify,
            expect_failure: false,
        },
    ]
}

/// Look up a scenario by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------------
// Tiny codecs for driving the pool inside the model.

/// Identity codec: payload = element bytes.
struct StoreCodec;

impl Compressor for StoreCodec {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "mc-store",
            year: 2024,
            community: Community::General,
            class: CodecClass::Delta,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }
    fn compress(&self, data: &FloatData) -> Result<Vec<u8>> {
        Ok(data.bytes().to_vec())
    }
    fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
        FloatData::from_bytes(desc.clone(), payload.to_vec())
    }
}

/// Codec that panics in `compress` — the worker-panic injection.
struct PanicCodec;

impl Compressor for PanicCodec {
    fn info(&self) -> CodecInfo {
        CodecInfo {
            name: "mc-panic",
            year: 2024,
            community: Community::General,
            class: CodecClass::Delta,
            platform: Platform::Cpu,
            parallel: false,
            precisions: PrecisionSupport::Both,
        }
    }
    fn compress(&self, _data: &FloatData) -> Result<Vec<u8>> {
        panic!("injected codec panic");
    }
    fn decompress(&self, payload: &[u8], desc: &DataDesc) -> Result<FloatData> {
        FloatData::from_bytes(desc.clone(), payload.to_vec())
    }
}

fn sample() -> FloatData {
    match FloatData::from_f64(&[1.0, 2.0, 3.0, 4.0], vec![4], Domain::Hpc) {
        Ok(d) => d,
        Err(e) => panic!("scenario setup: {e}"),
    }
}

fn must<T>(r: Result<T>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("scenario step failed: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Engine scenarios.

fn pool_submit_shutdown() {
    let pool = WorkerPool::new(PoolConfig::with_threads(2).queue_depth(2));
    let codec: Arc<dyn Compressor> = Arc::new(StoreCodec);
    let data = sample();
    let t1 = must(pool.submit_compress(&codec, data.desc(), data.bytes()));
    let t2 = must(pool.submit_compress(&codec, data.desc(), data.bytes()));
    let n1 = must(t1.collect(|p| p.len()));
    let n2 = must(t2.collect(|p| p.len()));
    assert_eq!(n1, data.bytes().len(), "store codec must echo the input");
    assert_eq!(n2, data.bytes().len());
    pool.shutdown();
    drop(pool); // joins the workers
}

fn pool_worker_panic() {
    let pool = WorkerPool::new(PoolConfig::with_threads(1).queue_depth(1));
    let bad: Arc<dyn Compressor> = Arc::new(PanicCodec);
    let good: Arc<dyn Compressor> = Arc::new(StoreCodec);
    let data = sample();
    let t = must(pool.submit_compress(&bad, data.desc(), data.bytes()));
    match t.collect(|p| p.len()) {
        Err(Error::WorkerPanic(_)) => {}
        Err(e) => panic!("worker panic must surface as Error::WorkerPanic, got {e}"),
        Ok(_) => panic!("a panicking codec must surface as a typed error"),
    }
    // The pool must still serve after the panic (no poisoned-lock wedge,
    // no dead worker): this is the regression for the shared poison policy
    // in fcbench_core::sync::{lock, wait}.
    let t = must(pool.submit_compress(&good, data.desc(), data.bytes()));
    let n = must(t.collect(|p| p.len()));
    assert_eq!(n, data.bytes().len(), "pool must survive a worker panic");
}

fn pool_try_submit_drain() {
    let pool = WorkerPool::new(PoolConfig::with_threads(1).queue_depth(1));
    let codec: Arc<dyn Compressor> = Arc::new(StoreCodec);
    let data = sample();
    let first = must(pool.try_submit_compress(&codec, data.desc(), data.bytes()));
    let first = match first {
        Some(t) => t,
        None => panic!("an idle pool must accept the first job"),
    };
    // With the single slot held by an uncollected ticket, try_submit may
    // see the slot either in flight or finished-but-unreclaimed; it must
    // never block. Either outcome is legal, deadlock is not.
    let second = must(pool.try_submit_compress(&codec, data.desc(), data.bytes()));
    drop(second);
    pool.drain();
    let n = must(first.collect(|p| p.len()));
    assert_eq!(n, data.bytes().len());
}

fn pool_abandon() {
    let pool = WorkerPool::new(PoolConfig::with_threads(1).queue_depth(2));
    let codec: Arc<dyn Compressor> = Arc::new(StoreCodec);
    let data = sample();
    let t1 = must(pool.submit_compress(&codec, data.desc(), data.bytes()));
    drop(t1); // abandon: result discarded, slot recycled by the worker
    let t2 = must(pool.submit_compress(&codec, data.desc(), data.bytes()));
    let n = must(t2.collect(|p| p.len()));
    assert_eq!(n, data.bytes().len());
    pool.drain();
    assert_eq!(
        pool.jobs_completed(),
        2,
        "abandoned jobs still count as completed work"
    );
}

fn cursor_read_ahead() {
    let pool = WorkerPool::new(PoolConfig::with_threads(1).queue_depth(2));
    let codec: Arc<dyn Compressor> = Arc::new(StoreCodec);
    // Two 2-element f64 chunks, stored uncompressed by StoreCodec.
    let chunk = |a: f64, b: f64| {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&a.to_le_bytes());
        v.extend_from_slice(&b.to_le_bytes());
        v
    };
    let col = CompressedColumn {
        name: "mc".into(),
        precision: fcbench_core::Precision::Double,
        rows: 4,
        chunk_elems: 2,
        chunks: vec![chunk(1.0, 2.0), chunk(3.0, 4.0)],
    };
    let mut cursor = must(col.cursor(&pool, &codec)).max_in_flight(1);
    let mut seen = Vec::new();
    loop {
        match cursor.next_chunk() {
            Ok(Some(page)) => seen.extend_from_slice(page),
            Ok(None) => break,
            Err(e) => panic!("cursor failed: {e}"),
        }
    }
    let want: Vec<u8> = [1.0f64, 2.0, 3.0, 4.0]
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    assert_eq!(seen, want, "pages must come back complete and in order");
}

// ---------------------------------------------------------------------------
// Self-test scenarios.

/// BUGGY: the flag is sampled in one critical section and the wait happens
/// in another. A schedule where the setter runs in between loses the
/// notify, and the waiter blocks forever — which the model reports as a
/// deadlock with the reproducing seed.
fn toy_missed_notify() {
    let m = Arc::new(Mutex::new(false));
    let cv = Arc::new(Condvar::new());
    let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
    let waiter = fcbench_core::sync::thread::Builder::new()
        .name("mc-waiter".into())
        .spawn(move || {
            let set = *lock(&m2);
            if !set {
                // lost-wakeup window: the notify can land right here
                let g = lock(&m2);
                let _g = wait(&cv2, g);
            }
        });
    let waiter = match waiter {
        Ok(h) => h,
        Err(e) => panic!("spawn waiter: {e}"),
    };
    *lock(&m) = true;
    cv.notify_one();
    let _ = waiter.join();
}

/// FIXED: the canonical form — recheck the predicate under the same guard
/// the wait releases. No schedule can lose the wakeup.
fn toy_fixed_notify() {
    let m = Arc::new(Mutex::new(false));
    let cv = Arc::new(Condvar::new());
    let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
    let waiter = fcbench_core::sync::thread::Builder::new()
        .name("mc-waiter".into())
        .spawn(move || {
            let mut g = lock(&m2);
            while !*g {
                g = wait(&cv2, g);
            }
        });
    let waiter = match waiter {
        Ok(h) => h,
        Err(e) => panic!("spawn waiter: {e}"),
    };
    *lock(&m) = true;
    cv.notify_one();
    let _ = waiter.join();
}

//! The invariant lints: rules the compiler cannot express but the repo's
//! serving posture depends on.
//!
//! | Rule | Meaning |
//! |---|---|
//! | `R001` no-panic | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code of the production crates (`core`, `serve`, `dbsim`, `entropy`, `telemetry`) |
//! | `R002` claim-gate | no capacity reservation (`with_capacity`, `reserve`, `vec![x; n]`) in decode-like functions of the wire/container modules unless the function also calls a claim gate, or the site carries a `// lint: claim-checked(reason)` waiver |
//! | `R003` wire-cast | no truncating `as` cast on a line that decodes wire integers in `protocol.rs`/`stream.rs`/`container.rs`, unless waived with `// lint: cast-checked(reason)` |
//! | `R004` forbid-unsafe | every non-compat crate root carries `#![forbid(unsafe_code)]` (the `bench` crate is exempt: its tracking allocator implements `GlobalAlloc`) |
//!
//! Findings not burnable today live in a committed allowlist
//! (`ANALYZE_ALLOWLIST`), one `rule path count reason` entry per line.
//! Counts are exact in both directions: a new finding over the count fails
//! the build, and so does a stale entry whose findings were burned down —
//! the allowlist only ever shrinks.

use crate::lexer::{self, Scrubbed};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free (R001).
const PANIC_FREE_CRATES: &[&str] = &["core", "serve", "dbsim", "entropy", "telemetry"];

/// Files whose decode-like functions must gate reservations (R002).
const CLAIM_GATE_FILES: &[&str] = &[
    "crates/core/src/frame.rs",
    "crates/core/src/stream.rs",
    "crates/core/src/blocks.rs",
    "crates/core/src/fault.rs",
    "crates/serve/src/protocol.rs",
    "crates/dbsim/src/container.rs",
    "crates/codecs-cpu/src/predictor.rs",
];

/// Function-name prefixes that mark a function as decode-like.
const DECODE_PREFIXES: &[&str] = &[
    "decode",
    "decompress",
    "parse",
    "read",
    "load",
    "take",
    "recv",
    "valid",
    "check",
];

/// Tokens whose presence in a function body count as a claim gate.
const GATE_TOKENS: &[&str] = &["check_decode_claim", "stream_cap", "plausible"];

/// File basenames subject to the wire-cast rule (R003).
const WIRE_CAST_FILES: &[&str] = &["protocol.rs", "stream.rs", "container.rs"];

/// Tokens that mark a line as decoding wire integers. `take(` is handled
/// separately: only the bare call form (the cursor-advancing helpers in
/// the parsers) counts, not the `.take(n)` iterator adaptor.
const DECODE_MARKERS: &[&str] = &[
    "from_le_bytes",
    "from_be_bytes",
    "read_u8(",
    "read_u16(",
    "read_u32(",
    "read_u64(",
];

/// Cast targets that can truncate a wire-decoded integer.
const NARROW_CASTS: &[&str] = &[
    "as u8", "as u16", "as u32", "as i8", "as i16", "as i32", "as usize", "as isize",
];

/// Crate directories exempt from R004 (vendored shims; the bench
/// allocator needs `unsafe impl GlobalAlloc`).
const FORBID_UNSAFE_EXEMPT: &[&str] = &["compat", "bench"];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID, `R001`..`R004`.
    pub rule: &'static str,
    /// Path relative to the repo root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lint every watched file under `root`. Returns findings not covered by
/// the allowlist, plus allowlist integrity errors (stale or over-counted
/// entries) rendered as findings against the allowlist file itself.
pub fn run(root: &Path, allowlist_path: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for file in watched_files(root)? {
        let rel = relpath(root, &file);
        let src = fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let scrubbed = lexer::scrub(&src);
        if scrubbed.skip_file {
            continue;
        }
        lint_file(&rel, &scrubbed, &mut findings);
    }
    for rel in crate_roots(root)? {
        let file = root.join(&rel);
        let src = fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        if !lexer::scrub(&src).text.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                rule: "R004",
                path: rel,
                line: 1,
                message: "crate root is missing #![forbid(unsafe_code)]".into(),
            });
        }
    }
    apply_allowlist(findings, allowlist_path)
}

/// All lintable `.rs` files: `src/` trees of the non-compat crates plus
/// the umbrella crate, excluding tests/benches/examples directories.
fn watched_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut src_dirs = vec![root.join("src")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "compat" {
            continue;
        }
        src_dirs.push(entry.path().join("src"));
    }
    for dir in src_dirs {
        walk_rs(&dir, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(()); // crate without src/, nothing to lint
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Crate roots subject to R004.
fn crate_roots(root: &Path) -> Result<Vec<String>, String> {
    let mut roots = vec!["src/lib.rs".to_string()];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if FORBID_UNSAFE_EXEMPT.contains(&name.as_str()) {
            continue;
        }
        if entry.path().join("src/lib.rs").is_file() {
            roots.push(format!("crates/{name}/src/lib.rs"));
        }
    }
    roots.sort();
    Ok(roots)
}

fn relpath(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run R001–R003 over one scrubbed file.
pub fn lint_file(rel: &str, s: &Scrubbed, findings: &mut Vec<Finding>) {
    if in_panic_free_crate(rel) {
        no_panic(rel, s, findings);
    }
    if CLAIM_GATE_FILES.contains(&rel) {
        claim_gate(rel, s, findings);
    }
    if WIRE_CAST_FILES
        .iter()
        .any(|f| rel.ends_with(f) && rel.starts_with("crates/"))
    {
        wire_cast(rel, s, findings);
    }
}

fn in_panic_free_crate(rel: &str) -> bool {
    PANIC_FREE_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// R001: panics in non-test production code.
fn no_panic(rel: &str, s: &Scrubbed, findings: &mut Vec<Finding>) {
    const METHODS: &[&str] = &[".unwrap()", ".expect("];
    const MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];
    for pat in METHODS.iter().chain(MACROS) {
        for at in occurrences(&s.text, pat) {
            if s.is_ignored(at) {
                continue;
            }
            // `.expect(` must not also catch `.expect_err(`; boundary
            // checks keep `core::unreachable!` matched but `my_panic!` not.
            let b = s.text.as_bytes();
            let before_ok = pat.starts_with('.')
                || at == 0
                || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
            if !before_ok {
                continue;
            }
            findings.push(Finding {
                rule: "R001",
                path: rel.to_string(),
                line: lexer::line_of(&s.text, at),
                message: format!("`{pat}` in non-test production code"),
            });
        }
    }
}

/// R002: unguarded capacity reservations in decode-like functions.
fn claim_gate(rel: &str, s: &Scrubbed, findings: &mut Vec<Finding>) {
    let spans = lexer::fn_spans(&s.text);
    const RESERVATIONS: &[&str] = &["with_capacity(", ".reserve(", ".reserve_exact("];
    let mut sites: Vec<usize> = RESERVATIONS
        .iter()
        .flat_map(|p| occurrences(&s.text, p))
        .collect();
    // `vec![expr; len]` repeat form: a `;` at depth 1 inside the brackets.
    for at in occurrences(&s.text, "vec!") {
        let b = s.text.as_bytes();
        let Some(open) = (at + 4..s.text.len()).find(|&k| !b[k].is_ascii_whitespace()) else {
            continue;
        };
        if b[open] != b'[' {
            continue;
        }
        if let Some(close) = matching_bracket(b, open) {
            // Repeat form only, and only when the length is an expression:
            // `vec![0u8; 16]` with a literal count is a fixed buffer, not
            // a decoded claim.
            if let Some((_, len)) = s.text[open + 1..close].split_once(';') {
                let len = len.trim();
                if !len.is_empty() && !len.bytes().all(|c| c.is_ascii_digit() || c == b'_') {
                    sites.push(at);
                }
            }
        }
    }
    sites.sort_unstable();
    for at in sites {
        if s.is_ignored(at) {
            continue;
        }
        // innermost enclosing function
        let Some((name, bs, be)) = spans
            .iter()
            .filter(|(_, bs, be)| at >= *bs && at < *be)
            .min_by_key(|(_, bs, be)| be - bs)
        else {
            continue;
        };
        if !DECODE_PREFIXES.iter().any(|p| name.starts_with(p)) {
            continue;
        }
        let body = &s.text[*bs..*be];
        if GATE_TOKENS.iter().any(|g| body.contains(g)) {
            continue;
        }
        let line = lexer::line_of(&s.text, at);
        if s.waived("claim-checked", line) {
            continue;
        }
        findings.push(Finding {
            rule: "R002",
            path: rel.to_string(),
            line,
            message: format!(
                "capacity reservation in decode function `{name}` with no claim gate \
                 (call a plausibility check first, or waive with \
                 `// lint: claim-checked(reason)`)"
            ),
        });
    }
}

/// R003: truncating casts on wire-decode lines.
fn wire_cast(rel: &str, s: &Scrubbed, findings: &mut Vec<Finding>) {
    for (idx, line) in s.text.lines().enumerate() {
        let line_no = idx + 1;
        if !DECODE_MARKERS.iter().any(|m| line.contains(m)) && !has_bare_take(line) {
            continue;
        }
        let Some(col) = NARROW_CASTS
            .iter()
            .filter_map(|c| find_token(line, c))
            .min()
        else {
            continue;
        };
        // offset of this line in the file text
        let at: usize = s.text.lines().take(idx).map(|l| l.len() + 1).sum::<usize>() + col;
        if s.is_ignored(at) || s.waived("cast-checked", line_no) {
            continue;
        }
        findings.push(Finding {
            rule: "R003",
            path: rel.to_string(),
            line: line_no,
            message: "truncating `as` cast on a wire-decode line \
                      (use `usize::from`/`try_from` or the saturating \
                      `fcbench_core::wire::len32`/`len64` helpers, or waive with \
                      `// lint: cast-checked(reason)`)"
                .into(),
        });
    }
}

/// A bare `take(` call (the byte-cursor helpers in the parsers), as
/// opposed to the `.take(n)` iterator adaptor or a longer identifier.
fn has_bare_take(line: &str) -> bool {
    let b = line.as_bytes();
    occurrences(line, "take(").into_iter().any(|at| {
        at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_' || b[at - 1] == b'.')
    })
}

/// Find `tok` in `line` with identifier boundaries on both sides.
fn find_token(line: &str, tok: &str) -> Option<usize> {
    let b = line.as_bytes();
    for at in occurrences(line, tok) {
        let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let end = at + tok.len();
        let after_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

fn occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(off) = hay[i..].find(needle) {
        out.push(i + off);
        i += off + 1;
    }
    out
}

fn matching_bracket(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Subtract the allowlist from `findings`; surface integrity errors.
fn apply_allowlist(findings: Vec<Finding>, allowlist_path: &Path) -> Result<Vec<Finding>, String> {
    let mut allowed: BTreeMap<(String, String), usize> = BTreeMap::new();
    let text = match fs::read_to_string(allowlist_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("read {}: {e}", allowlist_path.display())),
    };
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "{}:{}: malformed allowlist entry (want `rule path count reason`)",
                allowlist_path.display(),
                no + 1
            ));
        };
        let count: usize = count.parse().map_err(|_| {
            format!(
                "{}:{}: count {count:?} is not a number",
                allowlist_path.display(),
                no + 1
            )
        })?;
        if parts.next().is_none() {
            return Err(format!(
                "{}:{}: allowlist entry has no justification",
                allowlist_path.display(),
                no + 1
            ));
        }
        allowed.insert((rule.to_string(), path.to_string()), count);
    }

    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &findings {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    let mut out = Vec::new();
    let list = allowlist_path.display();
    for f in findings {
        let key = (f.rule.to_string(), f.path.clone());
        let found = counts[&key];
        match allowed.get(&key) {
            Some(&n) if n == found => {} // exactly covered
            Some(&n) => out.push(Finding {
                message: format!(
                    "{} (allowlist covers {n} for this rule+file, found {found} — \
                     update {list} with a justification, or burn the finding down)",
                    f.message
                ),
                ..f
            }),
            None => out.push(f),
        }
    }
    // Stale entries: the allowlist only shrinks.
    for ((rule, path), n) in &allowed {
        let found = counts
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if found < *n {
            out.push(Finding {
                rule: match rule.as_str() {
                    "R001" => "R001",
                    "R002" => "R002",
                    "R003" => "R003",
                    _ => "R004",
                },
                path: relpath_str(allowlist_path),
                line: 1,
                message: format!(
                    "stale allowlist entry: `{rule} {path}` allows {n} but only \
                     {found} remain — shrink the entry"
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(out)
}

fn relpath_str(p: &Path) -> String {
    p.to_string_lossy().replace('\\', "/")
}

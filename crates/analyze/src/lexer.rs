//! A deliberately small Rust source scrubber.
//!
//! The lint rules in [`crate::lint`] are token-level: they look for
//! `.unwrap()`, `with_capacity(`, `as u32`, and similar spellings. Matching
//! those against raw source would fire inside comments, doc examples, and
//! string literals, and — worse — inside `#[cfg(test)]` code where panics
//! are the correct idiom. This module produces a *scrubbed* view of a file:
//!
//! - comments (line, doc, nested block) and string/char literals are
//!   blanked with spaces, **preserving byte offsets and line numbers**;
//! - `// lint: <kind>(<reason>)` waiver comments are collected with their
//!   line numbers before being blanked;
//! - byte ranges of test-only items (`#[cfg(test)]`, `#[test]`,
//!   `mod tests { .. }`) and model-check-only items
//!   (`#[cfg(feature = "model-check")]`) are recorded so rules can skip
//!   them;
//! - files that are test/model-check-only as a whole (an inner
//!   `#![cfg(test)]` / `#![cfg(feature = "model-check")]`) are flagged for
//!   a whole-file skip.
//!
//! This is not a parser, and does not try to be `syn`: the repo bans
//! exotic token trees in its own source far more effectively than the
//! scrubber could cope with them, and the fixture tests in
//! `tests/lint_fixtures.rs` pin the cases that matter (lifetimes vs char
//! literals, raw strings, nested block comments, strings containing
//! `unwrap(`).

/// A `// lint: kind(reason)` waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the comment sits on (applies to that line and the
    /// next, so a waiver can sit above the waived expression).
    pub line: usize,
    /// The waiver kind: `claim-checked`, `cast-checked`, ...
    pub kind: String,
    /// The justification inside the parentheses. Must be non-empty.
    pub reason: String,
}

/// The scrubbed view of one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// Source with comments and literals blanked, byte-for-byte aligned
    /// with the original.
    pub text: String,
    /// Collected `// lint:` waivers.
    pub waivers: Vec<Waiver>,
    /// Byte ranges (half-open) of items the rules must ignore.
    pub ignored: Vec<(usize, usize)>,
    /// The whole file is test- or model-check-only.
    pub skip_file: bool,
}

impl Scrubbed {
    /// Is byte offset `at` inside an ignored (test-only) item?
    pub fn is_ignored(&self, at: usize) -> bool {
        self.ignored.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// Is there a waiver of `kind` on `line` or up to two lines above it?
    /// (Two, not one, because rustfmt wraps the waived expression onto a
    /// continuation line often enough that "the line right below the
    /// comment" is not where the flagged token lands.)
    pub fn waived(&self, kind: &str, line: usize) -> bool {
        self.waivers
            .iter()
            .any(|w| w.kind == kind && (w.line..w.line + 3).contains(&line))
    }
}

/// Scrub `src` (see module docs).
pub fn scrub(src: &str) -> Scrubbed {
    let (text, waivers) = blank_noncode(src);
    let (ignored, skip_file) = find_ignored(&text, src);
    Scrubbed {
        text,
        waivers,
        ignored,
        skip_file,
    }
}

/// 1-based line number of byte offset `at` in `text`.
pub fn line_of(text: &str, at: usize) -> usize {
    text.as_bytes()[..at.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Pass 1: blank comments and literals, harvesting `// lint:` waivers.
fn blank_noncode(src: &str) -> (String, Vec<Waiver>) {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut waivers = Vec::new();
    let mut i = 0;
    let mut line = 1usize;

    // Emit `n` source bytes verbatim (code) or blanked (non-code),
    // keeping newlines either way so offsets and line counts survive.
    macro_rules! emit {
        (code $n:expr) => {{
            for _ in 0..$n {
                if b[i] == b'\n' {
                    line += 1;
                }
                out.push(b[i]);
                i += 1;
            }
        }};
        (blank $n:expr) => {{
            for _ in 0..$n {
                if b[i] == b'\n' {
                    line += 1;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
        }};
    }

    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
                if let Some(w) = parse_waiver(&src[i..end], line) {
                    waivers.push(w);
                }
                emit!(blank end - i);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                let start = i;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
                let len = i - start;
                i = start;
                emit!(blank len);
            }
            b'"' => {
                // String literal: blank contents, keep the quotes as code
                // so `("...")` still scans as a call with an argument.
                emit!(code 1);
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        emit!(blank 2);
                    } else {
                        emit!(blank 1);
                    }
                }
                if i < b.len() {
                    emit!(code 1);
                }
            }
            b'r' if is_raw_string_start(b, i) => {
                let hashes = count_hashes(b, i + 1);
                emit!(code 1 + hashes + 1); // r##"
                let close: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while i < b.len() && !b[i..].starts_with(&close) {
                    emit!(blank 1);
                }
                if i < b.len() {
                    emit!(code close.len());
                }
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                emit!(code 2);
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        emit!(blank 2);
                    } else {
                        emit!(blank 1);
                    }
                }
                if i < b.len() {
                    emit!(code 1);
                }
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime's identifier is not followed by a
                // closing quote.
                if is_char_literal(b, i) {
                    let mut j = i + 1;
                    if b.get(j) == Some(&b'\\') {
                        j += 2;
                        // \u{...}
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                    } else {
                        // possibly multi-byte UTF-8 scalar
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                    }
                    let len = (j + 1).min(b.len()) - i;
                    emit!(code 1);
                    emit!(blank len - 2);
                    emit!(code 1);
                } else {
                    emit!(code 1);
                }
            }
            _ => emit!(code 1),
        }
    }
    // The blanking above is byte-for-byte, and only ever blanks whole
    // multi-byte sequences inside literals, so the output is valid UTF-8.
    (String::from_utf8(out).unwrap_or_default(), waivers)
}

/// Does `// lint: kind(reason)` appear in this line comment?
fn parse_waiver(comment: &str, line: usize) -> Option<Waiver> {
    let at = comment.find("lint:")?;
    let rest = comment[at + 5..].trim_start();
    let open = rest.find('(')?;
    let close = rest.rfind(')')?;
    if close <= open {
        return None;
    }
    let kind = rest[..open].trim();
    let reason = rest[open + 1..close].trim();
    if kind.is_empty() || reason.is_empty() {
        return None;
    }
    Some(Waiver {
        line,
        kind: kind.to_string(),
        reason: reason.to_string(),
    })
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  (not an identifier like `ркey` — require the char
    // before `r` to not be alphanumeric/underscore)
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let h = count_hashes(b, i + 1);
    b.get(i + 1 + h) == Some(&b'"')
}

fn count_hashes(b: &[u8], mut i: usize) -> usize {
    let start = i;
    while b.get(i) == Some(&b'#') {
        i += 1;
    }
    i - start
}

fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) if c != b'\'' => {
            // `'x'` is a char; `'x` followed by anything else is a
            // lifetime. Scan a short window for the closing quote.
            if c.is_ascii_alphanumeric() || c == b'_' {
                // single-char identifier start: char iff next is a quote
                b.get(i + 2) == Some(&b'\'')
            } else {
                // punctuation / multi-byte scalar: treat as char literal
                true
            }
        }
        _ => false,
    }
}

/// Pass 2: collect ignored (test-only / model-check-only) item ranges.
///
/// Works on the scrubbed text so braces inside literals don't confuse the
/// matcher, but reads attribute payloads from the original source, because
/// `"model-check"` is a string literal and was blanked.
fn find_ignored(text: &str, orig: &str) -> (Vec<(usize, usize)>, bool) {
    let b = text.as_bytes();
    let mut ignored = Vec::new();
    let mut skip_file = false;
    let mut i = 0;
    while let Some(off) = text[i..].find('#') {
        let at = i + off;
        i = at + 1;
        let inner = b.get(at + 1) == Some(&b'!');
        let open = at + if inner { 2 } else { 1 };
        if b.get(open) != Some(&b'[') {
            continue;
        }
        let Some(close) = matching(b, open, b'[', b']') else {
            continue;
        };
        let payload = &orig[open + 1..close];
        let is_test = payload == "test"
            || (payload.starts_with("cfg") && payload.contains("test"))
            || (payload.starts_with("cfg") && payload.contains("model-check"));
        if !is_test {
            continue;
        }
        if inner {
            skip_file = true;
            continue;
        }
        if let Some(range) = item_after(b, close + 1) {
            ignored.push((at, range.1));
        }
    }
    // `mod tests {` / `mod test {` blocks, wherever the cfg sits.
    let mut j = 0;
    while let Some(off) = text[j..].find("mod ") {
        let at = j + off;
        j = at + 4;
        if at > 0 && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
            continue;
        }
        let name: String = text[at + 4..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name == "tests" || name == "test" {
            if let Some(range) = item_after(b, at) {
                ignored.push((at, range.1));
            }
        }
    }
    (ignored, skip_file)
}

/// The span of the item starting at/after `from`: everything up to the
/// close of its first brace block, or its terminating `;` for block-less
/// items (`use`, `type`, extern fns).
fn item_after(b: &[u8], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < b.len() {
        match b[i] {
            b'{' => {
                let close = matching(b, i, b'{', b'}')?;
                return Some((from, close + 1));
            }
            b';' => return Some((from, i + 1)),
            b'#' => {
                // another attribute on the same item — skip its brackets
                let mut k = i + 1;
                if b.get(k) == Some(&b'!') {
                    k += 1;
                }
                if b.get(k) == Some(&b'[') {
                    i = matching(b, k, b'[', b']')? + 1;
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Offset of the bracket matching the one at `open`.
fn matching(b: &[u8], open: usize, oc: u8, cc: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        if b[i] == oc {
            depth += 1;
        } else if b[i] == cc {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Function spans in scrubbed text: `(name, body_start, body_end)`.
///
/// Used by the claim-gate rule to scope reservations to decode-like
/// functions and to look for gate calls in the same body.
pub fn fn_spans(text: &str) -> Vec<(String, usize, usize)> {
    let b = text.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while let Some(off) = text[i..].find("fn ") {
        let at = i + off;
        i = at + 3;
        if at > 0 && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
            continue;
        }
        let name: String = text[at + 3..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        // Find the body: first `{` after the signature, skipping where-
        // clauses is unnecessary — the first top-level `{` after `fn` *is*
        // the body in this codebase's style. A `;` first means a trait
        // method declaration with no body.
        let mut k = at + 3;
        let mut body = None;
        while k < b.len() {
            match b[k] {
                b'{' => {
                    body = matching(b, k, b'{', b'}').map(|e| (k, e + 1));
                    break;
                }
                b';' => break,
                _ => k += 1,
            }
        }
        if let Some((s, e)) = body {
            spans.push((name, s, e));
            // Do not skip past the body: nested fns are found because the
            // outer loop continues from just after this `fn` keyword.
        }
    }
    spans
}

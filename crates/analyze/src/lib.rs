//! # fcbench-analyze
//!
//! Repo-native static analysis and deterministic concurrency model
//! checking for FCBench-rs, in two halves:
//!
//! - [`lint`] — offline token-level invariant lints over the workspace
//!   source: panic-freedom of the production crates, claim-gated capacity
//!   reservations in wire/container parsers, no truncating casts on
//!   wire-decoded integers, and `#![forbid(unsafe_code)]` in every
//!   non-compat crate root. Driven by `fcbench-analyze lint`.
//! - [`scenarios`] — small closed concurrent programs over the real
//!   [`WorkerPool`](fcbench_core::pool::WorkerPool) and
//!   [`ColumnCursor`](fcbench_dbsim::ColumnCursor), explored exhaustively
//!   (within a preemption bound) by the cooperative scheduler in
//!   [`fcbench_core::sync::model`]. Driven by `fcbench-analyze
//!   check-pool`; failures come back as deterministic replayable seeds.
//!
//! The crate is a workspace member but **not** a default member: it
//! enables fcbench-core's `model-check` feature, and feature unification
//! must never swap the instrumented sync layer into a plain workspace
//! build. The [`lexer`] underpinning the lints is a scrubber, not a
//! parser — see its module docs for the contract.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lint;
pub mod scenarios;

//! The model checker's own guarantees: exhaustive clean runs stay clean,
//! the planted lost-wakeup is found, and a counterexample seed replays
//! the same failure deterministically.

use fcbench_analyze::scenarios;
use fcbench_core::sync::model::{explore, replay, ExploreOpts};
use std::time::{Duration, Instant};

fn scenario(name: &str) -> scenarios::Scenario {
    scenarios::by_name(name).expect("registered scenario")
}

fn bounded() -> ExploreOpts {
    ExploreOpts {
        deadline: Some(Instant::now() + Duration::from_secs(60)),
        ..ExploreOpts::default()
    }
}

#[test]
fn fixed_notify_protocol_is_clean_and_exhausted() {
    let out = explore(&bounded(), scenario("toy-fixed-notify").run);
    assert!(out.failure.is_none(), "{:?}", out.failure);
    assert!(out.exhausted, "tiny scenario must exhaust well inside 60s");
    assert!(out.executions >= 2, "must explore more than one schedule");
}

#[test]
fn missed_notify_is_found_and_its_seed_replays_deterministically() {
    let out = explore(&bounded(), scenario("toy-missed-notify").run);
    let cx = out.failure.expect("the planted lost wakeup must be found");
    assert!(
        cx.message.contains("deadlock"),
        "a lost wakeup surfaces as a deadlock: {}",
        cx.message
    );
    // Replaying the seed reproduces the same class of failure, twice —
    // the schedule encoding is deterministic, not time-dependent.
    for _ in 0..2 {
        let again = replay(&cx.seed, scenario("toy-missed-notify").run).expect("seed must decode");
        let rcx = again.failure.expect("replay must reproduce the failure");
        assert!(rcx.message.contains("deadlock"), "{}", rcx.message);
        assert_eq!(rcx.seed, cx.seed, "replay must report the same schedule");
    }
}

#[test]
fn counterexample_seed_shape_round_trips() {
    let out = explore(&bounded(), scenario("toy-missed-notify").run);
    let cx = out.failure.expect("found");
    let decoded = fcbench_core::sync::model::decode_schedule(&cx.seed).expect("seed decodes");
    assert!(!decoded.is_empty());
    assert!(cx.seed.starts_with("mc1:"));
}

#[test]
fn worker_panic_scenario_verifies_clean_exhaustively() {
    // The poison-policy regression: a worker panic must never wedge the
    // pool on any schedule within the bound.
    let out = explore(&bounded(), scenario("pool-worker-panic").run);
    assert!(out.failure.is_none(), "{:?}", out.failure);
    assert!(out.exhausted);
}

#[test]
fn replay_of_a_clean_schedule_is_clean() {
    // The all-zeros schedule (never preempt) of the fixed protocol.
    let out = replay("mc1:0.0.0", scenario("toy-fixed-notify").run).expect("decodes");
    assert!(out.failure.is_none(), "{:?}", out.failure);
    assert_eq!(out.executions, 1);
}

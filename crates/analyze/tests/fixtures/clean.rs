//! Fixture: none of these may produce a finding. Every shape here is a
//! known false-positive hazard for a token-level scanner.

/// Doc comments may say `.unwrap()` and `panic!("...")` freely.
pub fn decode_with_gate(src: &[u8], claim: usize) -> Vec<u8> {
    // A string literal is not a call site: ".unwrap() with_capacity( as u32"
    let banner = "don't panic!(now) .unwrap() Vec::with_capacity(9999)";
    let _ = banner;
    check_decode_claim(claim); // the gate token that licenses the reserve below
    let mut out = Vec::with_capacity(claim);
    out.extend_from_slice(src);
    out
}

pub fn check_decode_claim(_claim: usize) {}

/// Lifetimes are not char literals; char literals may hold quotes.
pub fn decode_first<'a>(src: &'a [u8], marker: char) -> Option<&'a u8> {
    let _ = (marker == '\'', marker == 'u');
    src.first()
}

/// Fixed-size buffers are not decoded claims (literal repeat length).
pub fn read_header(src: &[u8]) -> [u8; 4] {
    let mut hdr = vec![0u8; 4];
    hdr.copy_from_slice(&src[..4]);
    [hdr[0], hdr[1], hdr[2], hdr[3]]
}

/// The `.take(n)` iterator adaptor is not the parsers' cursor helper, so
/// this widening cast next to it must not fire the wire-cast rule.
pub fn clamp_names(names: &[String]) -> usize {
    names.iter().take(u16::MAX as usize).count()
}

/// A raw string may contain anything at all.
pub fn raw() -> &'static str {
    r#"let x = src.first().unwrap(); panic!("{x}"); vec![0u8; n]"#
}

/// Waived reservation: the claim is bounded, and the waiver says why.
pub fn decode_waived(src: &[u8]) -> Vec<u8> {
    let n = usize::from(src[0]);
    // lint: claim-checked(n is u8-bounded, at most 255)
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&src[1..1 + n]);
    out
}

/* Block comments can nest in Rust: /* .unwrap() inside */ still a comment. */

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v: Vec<u8> = Vec::new();
        assert!(v.first().is_none());
        let w = [1u8];
        let _ = w.first().unwrap();
        let _ = w.first().expect("present");
        let n = u32::from_le_bytes([1, 0, 0, 0]) as usize;
        let _ = Vec::<u8>::with_capacity(n);
    }
}

//! Fixture: every rule fires, at pinned lines. Not compiled — parsed by
//! `tests/lint_fixtures.rs`, which asserts the exact (rule, line) pairs.

pub fn decode_payload(src: &[u8]) -> Vec<u8> {
    let n = u32::from_le_bytes([src[0], src[1], src[2], src[3]]) as usize; // line 5: R003
    let mut out = Vec::with_capacity(n); // line 6: R002
    out.push(src.first().copied().unwrap()); // line 7: R001
    out
}

pub fn helper(src: &[u8]) -> u8 {
    let v = src.first().expect("nonempty"); // line 12: R001
    if *v > 250 {
        panic!("out of range"); // line 14: R001
    }
    match v {
        0..=250 => *v,
        _ => unreachable!(), // line 18: R001
    }
}

pub fn read_sizes(src: &[u8]) -> Vec<u8> {
    let mut sizes = vec![0u8; src.len()]; // line 23: R002 (repeat form, expression length)
    sizes.copy_from_slice(src);
    sizes
}

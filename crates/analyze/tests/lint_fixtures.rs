//! The lint rules against pinned fixtures: exact rule IDs at exact lines
//! for the violations file, and zero findings for the false-positive
//! gauntlet.

use fcbench_analyze::lexer;
use fcbench_analyze::lint::{lint_file, Finding};

/// Lint a fixture as if it lived at `rel` inside the repo.
fn lint_fixture(rel: &str, fixture: &str) -> Vec<Finding> {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(fixture),
    )
    .expect("fixture file");
    let scrubbed = lexer::scrub(&src);
    assert!(!scrubbed.skip_file, "fixtures are not test-only files");
    let mut findings = Vec::new();
    lint_file(rel, &scrubbed, &mut findings);
    findings
}

#[test]
fn violations_fixture_fires_every_rule_at_the_pinned_lines() {
    // protocol.rs in the serve crate is watched by R001 (panic-free
    // crate), R002 (claim-gate file), and R003 (wire-cast file) at once.
    let findings = lint_fixture("crates/serve/src/protocol.rs", "violations.rs");
    let got: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    let want = vec![
        ("R003", 5),  // `as usize` on a from_le_bytes line
        ("R002", 6),  // ungated Vec::with_capacity in decode_payload
        ("R001", 7),  // .unwrap()
        ("R001", 12), // .expect(
        ("R001", 14), // panic!
        ("R001", 18), // unreachable!
        ("R002", 23), // vec![0u8; src.len()] repeat form in read_sizes
    ];
    let mut got_sorted = got.clone();
    got_sorted.sort();
    let mut want_sorted = want.clone();
    want_sorted.sort();
    assert_eq!(
        got_sorted, want_sorted,
        "findings (rule, line) mismatch: {findings:#?}"
    );
}

#[test]
fn violations_only_fire_for_watched_locations() {
    // The same source in a crate outside the panic-free set, with a
    // basename no wire rule watches: only the claim-gate rule is scoped
    // by... nothing here, so nothing fires at all.
    let findings = lint_fixture("crates/stats/src/friedman.rs", "violations.rs");
    assert_eq!(findings, vec![], "unwatched location must be silent");

    // In a panic-free crate but not a wire/claim file: only R001.
    let findings = lint_fixture("crates/core/src/metrics.rs", "violations.rs");
    assert!(findings.iter().all(|f| f.rule == "R001"), "{findings:#?}");
    assert_eq!(findings.len(), 4);
}

#[test]
fn clean_fixture_is_silent() {
    let findings = lint_fixture("crates/serve/src/protocol.rs", "clean.rs");
    assert_eq!(findings, vec![], "false positive: {findings:#?}");
}

#[test]
fn scrubber_reports_waivers_and_test_scopes() {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/clean.rs"),
    )
    .expect("fixture file");
    let s = lexer::scrub(&src);
    assert!(
        s.waivers
            .iter()
            .any(|w| w.kind == "claim-checked" && w.reason.contains("u8-bounded")),
        "waiver comment must be harvested: {:?}",
        s.waivers
    );
    // The `mod tests` block at the bottom must be an ignored range.
    let at = src
        .find("fn panics_are_fine_in_tests")
        .expect("fixture shape");
    assert!(s.is_ignored(at), "test module must be ignored");
    // Code before it must not be.
    let at = src.find("pub fn decode_with_gate").expect("fixture shape");
    assert!(!s.is_ignored(at));
}

#[test]
fn model_check_only_files_are_skipped_entirely() {
    let s = lexer::scrub("#![cfg(feature = \"model-check\")]\npub fn f() { x.unwrap() }\n");
    assert!(s.skip_file);
}

//! Armed fail-point coverage: each named seam fails with a typed error
//! exactly on its armed schedule, the subsystem around it survives, and
//! the registry's `hits`/`fired` accounting is exact. The fail-point
//! registry is process-global, so every test serializes on one gate and
//! leaves the registry disarmed.

use fcbench_bench::codecs::paper_registry;
use fcbench_chaos::{failpoints, note_seed, FaultPlan};
use fcbench_codecs_cpu::Gorilla;
use fcbench_core::fault::Rng;
use fcbench_core::pool::{PoolConfig, WorkerPool};
use fcbench_core::stream::FrameWriter;
use fcbench_core::{Compressor, Domain, Error, FloatData, Precision};
use fcbench_dbsim::{parse_container, ChunkExec, ColumnData, ContainerWriter, RecoveryOutcome};
use fcbench_serve::{Client, ServeConfig, Server};
use std::sync::{Arc, Mutex, MutexGuard};

/// One armed registry per process: serialize every test through this gate
/// and start each from a disarmed state.
fn armed_registry_gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();
    guard
}

fn sample_data(n: usize) -> FloatData {
    let vals: Vec<f64> = (0..n).map(|i| 20.0 + (i as f64 * 0.01).sin()).collect();
    FloatData::from_f64(&vals, vec![n], Domain::TimeSeries).expect("data")
}

fn column(name: &str, n: usize) -> ColumnData {
    let vals: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin()).collect();
    ColumnData::from_f32(name, &vals)
}

/// `pool.submit` fires a typed error on its schedule; the pool keeps
/// dispatching afterwards.
#[test]
fn pool_submit_failpoint_is_typed_and_survivable() {
    let _gate = armed_registry_gate();
    let pool = WorkerPool::new(PoolConfig::with_threads(1));
    let codec: Arc<dyn Compressor> = Arc::new(Gorilla::new());
    let data = sample_data(256);

    failpoints::arm("pool.submit", 0, 1);
    let err = match pool.submit_compress(&codec, data.desc(), data.bytes()) {
        Ok(_) => panic!("armed point must fail the submit"),
        Err(e) => e,
    };
    assert!(matches!(err, Error::Io(_)), "typed: {err}");
    assert!(err.to_string().contains("pool.submit"), "names its seam");
    assert_eq!(failpoints::hits("pool.submit"), 1);
    assert_eq!(failpoints::fired("pool.submit"), 1);

    // The schedule is spent: the pool dispatches and completes normally.
    let ticket = pool
        .submit_compress(&codec, data.desc(), data.bytes())
        .expect("pool survives the injected fault");
    let len = ticket.collect(|b| b.len()).expect("job completes");
    assert!(len > 0);
    assert_eq!(failpoints::hits("pool.submit"), 2);
    assert_eq!(failpoints::fired("pool.submit"), 1);
    failpoints::disarm_all();
}

/// `frame.write` fails one write with a typed error without corrupting the
/// writer's inflight accounting; a fresh stream then round-trips.
#[test]
fn frame_write_failpoint_is_typed_and_survivable() {
    let _gate = armed_registry_gate();
    let codec: Arc<dyn Compressor> = Arc::new(Gorilla::new());
    let data = sample_data(512);

    failpoints::arm("frame.write", 0, 1);
    let mut w = FrameWriter::new(
        Vec::new(),
        Arc::clone(&codec),
        data.desc().clone(),
        64,
        None,
    )
    .expect("prologue write is not the armed seam");
    let err = w
        .write(data.bytes())
        .expect_err("armed point must fail the frame write");
    assert!(matches!(err, Error::Io(_)), "typed: {err}");
    assert_eq!(failpoints::fired("frame.write"), 1);
    drop(w);

    // Fresh stream, schedule spent: the full write-finish cycle works.
    let mut w = FrameWriter::new(
        Vec::new(),
        Arc::clone(&codec),
        data.desc().clone(),
        64,
        None,
    )
    .expect("prologue");
    w.write(data.bytes()).expect("stream survives");
    let bytes = w.finish().expect("finish");
    assert!(!bytes.is_empty());
    failpoints::disarm_all();
}

/// `container.commit` refuses the commit with a typed error **before**
/// any commit framing lands in the sink: what was written recovers as
/// uncommitted records, never a torn commit.
#[test]
fn container_commit_failpoint_recovers_to_uncommitted() {
    let _gate = armed_registry_gate();
    let codec = Gorilla::new();
    let mut sink = Vec::new();

    failpoints::arm("container.commit", 0, u64::MAX);
    {
        let mut w = ContainerWriter::new(&mut sink, ChunkExec::Inline(&codec)).expect("prologue");
        let col = column("sensor", 200);
        w.begin_column(&col.name, Precision::Single, 64)
            .expect("column");
        w.write(&col.bytes).expect("write");
        let err = w.commit().expect_err("armed point must fail the commit");
        assert!(matches!(err, Error::Io(_)), "typed: {err}");
    }
    failpoints::disarm_all();

    // Every record is on disk but none are committed: recovery drops them
    // all and hands back the empty (pre-commit) table.
    let read = parse_container(&sink).expect("recovery never errors here");
    assert!(
        matches!(read.outcome, RecoveryOutcome::Recovered { dropped_records } if dropped_records > 0),
        "uncommitted records are counted: {:?}",
        read.outcome
    );
    assert!(read.table.columns.is_empty(), "nothing was committed");
}

/// `serve.reply_write` kills one OK reply mid-connection: the client sees
/// a typed error, the server keeps accepting and serving.
#[test]
fn serve_reply_write_failpoint_is_typed_and_survivable() {
    let _gate = armed_registry_gate();
    let registry = Arc::new(paper_registry());
    let pool = Arc::new(WorkerPool::new(PoolConfig::with_threads(1)));
    let running = Server::bind("127.0.0.1:0", registry, pool, ServeConfig::default())
        .expect("bind")
        .spawn();
    let addr = running.addr();

    // Skip the handshake's hello reply; fail the next OK reply once.
    failpoints::arm("serve.reply_write", 1, 1);
    let mut client = Client::connect(addr).expect("handshake passes the skip");
    let err = client
        .list_codecs()
        .expect_err("the injected reply failure surfaces typed");
    assert!(
        matches!(err, Error::Io(_) | Error::Corrupt(_)),
        "typed: {err}"
    );
    assert!(failpoints::hits("serve.reply_write") >= 2);
    assert_eq!(failpoints::fired("serve.reply_write"), 1);
    failpoints::disarm_all();

    // The server shrugged it off.
    let mut fresh = Client::connect(addr).expect("server keeps accepting");
    let data = sample_data(128);
    let compressed = fresh
        .compress("gorilla", &data, 64)
        .expect("server keeps serving");
    let restored = fresh.decompress(&compressed).expect("roundtrip");
    assert_eq!(restored.bytes(), data.bytes());
    drop(client);
    drop(fresh);
    running.shutdown().expect("shutdown");
}

/// Seeded random schedules over the commit seam: whatever skip/fail
/// pattern a plan derives, the writer either completes or fails typed,
/// and the sink always recovers to its last commit.
#[test]
fn seeded_commit_schedules_always_recover() {
    let _gate = armed_registry_gate();
    let codec = Gorilla::new();
    for seed in 0..32u64 {
        let plan = FaultPlan::from_seed(seed);
        note_seed(&plan);
        let mut rng = Rng::new(plan.seed());
        let skip = rng.below(4);
        let fail = 1 + rng.below(3);
        failpoints::arm("container.commit", skip, fail);

        let mut sink = Vec::new();
        let mut committed = 0u64;
        {
            let mut w =
                ContainerWriter::new(&mut sink, ChunkExec::Inline(&codec)).expect("prologue");
            let result = (|| {
                for i in 0..4 {
                    let col = column(&format!("c{i}"), 120 + 30 * i);
                    w.begin_column(&col.name, Precision::Single, 64)?;
                    w.write(&col.bytes)?;
                    w.commit()?;
                    committed += 1;
                }
                Ok::<(), Error>(())
            })();
            if let Err(e) = result {
                assert!(matches!(e, Error::Io(_)), "{plan}: typed: {e}");
            }
        }
        failpoints::disarm_all();

        let read = parse_container(&sink)
            .unwrap_or_else(|e| panic!("{plan}: recovery must not error: {e}"));
        assert_eq!(
            read.table.columns.len() as u64,
            committed,
            "{plan}: exactly the committed columns survive"
        );
        if skip >= 4 {
            assert_eq!(
                read.outcome,
                RecoveryOutcome::Clean,
                "{plan}: untouched run"
            );
        }
    }
}

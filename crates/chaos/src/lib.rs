//! # fcbench-chaos
//!
//! The fault-injection harness: the one workspace member that compiles
//! `fcbench-core` with the non-default `fault-inject` feature, arming the
//! named fail-points threaded through the engine seams —
//!
//! | fail-point            | seam                                        |
//! |-----------------------|---------------------------------------------|
//! | `pool.submit`         | every [`WorkerPool`] submit entry point     |
//! | `frame.write`         | [`FrameWriter::write`], per call            |
//! | `container.commit`    | [`ContainerWriter::commit`], before framing |
//! | `serve.reply_write`   | every `FCS1` OK reply                       |
//!
//! The integration tests in `tests/` drive each point and prove the
//! blast-radius contract: an injected fault is a **typed error** at the
//! seam it was injected into, the surrounding subsystem keeps working
//! (the pool keeps dispatching, the server keeps serving, the container
//! recovers to its last commit), and the `hits`/`fired` accounting on the
//! registry matches the armed schedule exactly.
//!
//! Seeded [`FaultPlan`]s (`fp1:` strings) drive the randomized schedules;
//! a failing seed is written to `$FCBENCH_CHAOS_SEED_OUT` for CI to
//! upload, and replays byte-for-byte.
//!
//! This crate is intentionally **not** in the workspace's
//! `default-members`: nothing in a shipping build can reach the fail-point
//! registry, and CI asserts `fault-inject` never unifies into the default
//! feature graph.
//!
//! [`WorkerPool`]: fcbench_core::pool::WorkerPool
//! [`FrameWriter::write`]: fcbench_core::stream::FrameWriter::write
//! [`ContainerWriter::commit`]: fcbench_dbsim::ContainerWriter::commit
//! [`FaultPlan`]: fcbench_core::fault::FaultPlan

#![forbid(unsafe_code)]

pub use fcbench_core::fault::{self, failpoints, FaultPlan, FaultyIo};

/// Surface `plan`'s replayable seed for CI artifact upload: written to the
/// path in `$FCBENCH_CHAOS_SEED_OUT` (when set) before the risky work, so
/// the seed of a crashed or failed case survives the process.
pub fn note_seed(plan: &FaultPlan) {
    if let Ok(path) = std::env::var("FCBENCH_CHAOS_SEED_OUT") {
        if !path.is_empty() {
            let _ = std::fs::write(path, plan.seed_string());
        }
    }
}
